//! Multiple-sequence alignments.
//!
//! An [`Alignment`] is a set of equal-length sequences; it is the `D` term of
//! the paper. Besides storage it provides the empirical base frequencies used
//! as the stationary distribution π of the F81 model (Eq. 20–21) and
//! column access used by the site-pattern compressor and likelihood engine.

use crate::error::PhyloError;
use crate::model::BaseFrequencies;
use crate::nucleotide::Nucleotide;
use crate::sequence::Sequence;

/// An alignment of equal-length DNA sequences.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Alignment {
    sequences: Vec<Sequence>,
    length: usize,
}

impl Alignment {
    /// Build an alignment, validating that at least one sequence is present
    /// and that all sequences have the same length.
    pub fn new(sequences: Vec<Sequence>) -> Result<Self, PhyloError> {
        let first = sequences.first().ok_or(PhyloError::Empty { what: "alignment" })?;
        let length = first.len();
        if length == 0 {
            return Err(PhyloError::Empty { what: "alignment sequence" });
        }
        for seq in &sequences {
            if seq.len() != length {
                return Err(PhyloError::UnequalSequenceLengths {
                    expected: length,
                    found: seq.len(),
                    name: seq.name().to_string(),
                });
            }
        }
        Ok(Alignment { sequences, length })
    }

    /// Convenience constructor from `(name, letters)` pairs.
    pub fn from_letters(pairs: &[(&str, &str)]) -> Result<Self, PhyloError> {
        let sequences = pairs
            .iter()
            .map(|(name, text)| Sequence::parse(*name, text))
            .collect::<Result<Vec<_>, _>>()?;
        Alignment::new(sequences)
    }

    /// The sequences.
    pub fn sequences(&self) -> &[Sequence] {
        &self.sequences
    }

    /// Number of sequences (the tip count of genealogies over this data).
    pub fn n_sequences(&self) -> usize {
        self.sequences.len()
    }

    /// Number of sites (base-pair positions).
    pub fn n_sites(&self) -> usize {
        self.length
    }

    /// The sequence at `index`.
    ///
    /// # Panics
    /// Panics if `index` is out of range.
    pub fn sequence(&self, index: usize) -> &Sequence {
        &self.sequences[index]
    }

    /// Look a sequence up by name.
    pub fn by_name(&self, name: &str) -> Option<&Sequence> {
        self.sequences.iter().find(|s| s.name() == name)
    }

    /// The base of sequence `seq` at site `site`.
    pub fn base(&self, seq: usize, site: usize) -> Nucleotide {
        self.sequences[seq].base(site)
    }

    /// The alignment column at `site`, one base per sequence.
    pub fn column(&self, site: usize) -> Vec<Nucleotide> {
        self.sequences.iter().map(|s| s.base(site)).collect()
    }

    /// Empirical relative frequency of each nucleotide across all sequences
    /// and sites (the prior π of Eq. 21). Frequencies of unobserved bases are
    /// floored at a small pseudo-count so no base has probability zero.
    pub fn base_frequencies(&self) -> BaseFrequencies {
        let mut counts = [0usize; 4];
        for seq in &self.sequences {
            for &b in seq.bases() {
                counts[b.index()] += 1;
            }
        }
        BaseFrequencies::from_counts(counts)
    }

    /// Number of sites at which not all sequences carry the same base.
    pub fn variable_sites(&self) -> usize {
        (0..self.length)
            .filter(|&site| {
                let first = self.sequences[0].base(site);
                self.sequences.iter().any(|s| s.base(site) != first)
            })
            .count()
    }

    /// Names of all sequences in order.
    pub fn names(&self) -> Vec<&str> {
        self.sequences.iter().map(|s| s.name()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> Alignment {
        Alignment::from_letters(&[("s1", "ACGTACGT"), ("s2", "ACGTACGA"), ("s3", "ACGTTCGA")])
            .unwrap()
    }

    #[test]
    fn construction_and_accessors() {
        let a = toy();
        assert_eq!(a.n_sequences(), 3);
        assert_eq!(a.n_sites(), 8);
        assert_eq!(a.sequence(0).name(), "s1");
        assert_eq!(a.by_name("s3").unwrap().to_letters(), "ACGTTCGA");
        assert!(a.by_name("nope").is_none());
        assert_eq!(a.base(1, 7), Nucleotide::A);
        assert_eq!(a.names(), vec!["s1", "s2", "s3"]);
        assert_eq!(a.sequences().len(), 3);
    }

    #[test]
    fn rejects_empty_and_ragged_input() {
        assert!(matches!(Alignment::new(vec![]), Err(PhyloError::Empty { what: "alignment" })));
        assert!(matches!(Alignment::from_letters(&[("a", "")]), Err(PhyloError::Empty { .. })));
        let err = Alignment::from_letters(&[("a", "ACGT"), ("b", "ACG")]).unwrap_err();
        assert!(matches!(err, PhyloError::UnequalSequenceLengths { expected: 4, found: 3, .. }));
    }

    #[test]
    fn columns_are_per_site_slices() {
        let a = toy();
        assert_eq!(a.column(4), vec![Nucleotide::A, Nucleotide::A, Nucleotide::T]);
        assert_eq!(a.column(0), vec![Nucleotide::A; 3]);
    }

    #[test]
    fn base_frequencies_sum_to_one_and_reflect_composition() {
        let a = Alignment::from_letters(&[("x", "AAAA"), ("y", "AAAT")]).unwrap();
        let f = a.base_frequencies();
        let total: f64 = Nucleotide::ALL.iter().map(|&n| f.freq(n)).sum();
        assert!((total - 1.0).abs() < 1e-12);
        assert!(f.freq(Nucleotide::A) > 0.6);
        // Unseen bases still get a non-zero floor.
        assert!(f.freq(Nucleotide::G) > 0.0);
    }

    #[test]
    fn variable_sites_counts_polymorphic_columns() {
        let a = toy();
        // Columns 4 (A/A/T) and 7 (T/A/A) vary.
        assert_eq!(a.variable_sites(), 2);
        let mono = Alignment::from_letters(&[("a", "AC"), ("b", "AC")]).unwrap();
        assert_eq!(mono.variable_sites(), 0);
    }
}
