//! Generic Markov chain Monte Carlo machinery used by the coalescent
//! genealogy samplers in this workspace.
//!
//! The crate provides the statistical substrate described in Sections 2.2,
//! 2.3 and 4.1 of the paper:
//!
//! * [`rng`] — a from-scratch MT19937 Mersenne Twister (the host PRNG used by
//!   the original implementation), a [`rng::StreamBank`] of decorrelated
//!   per-thread streams standing in for the device-side MTGP32 generator, and
//!   hand-rolled samplers for the distributions the samplers need
//!   (exponential, categorical, binomial, normal).
//! * [`logdomain`] — log-domain probability arithmetic ([`LogProb`],
//!   [`log_sum_exp`]) implementing the underflow-avoidance scheme of
//!   Section 5.3.
//! * [`metropolis`] — a generic single-proposal Metropolis–Hastings driver.
//! * [`generalized`] — a generic Generalized Metropolis–Hastings
//!   (Calderhead 2014) driver: multiple proposals per transition, an index
//!   chain sampled from the stationary distribution over the proposal set.
//! * [`chain`] — chain schedules (burn-in, thinning) and trace storage.
//! * [`diagnostics`] — effective sample size, autocorrelation, Gelman–Rubin
//!   R̂ and summary statistics.
//!
//! # Example
//!
//! Sampling a unit normal with both drivers and checking they agree:
//!
//! ```
//! use mcmc::rng::Mt19937;
//! use mcmc::metropolis::{LogTarget, ProposalKernel, MetropolisHastings};
//! use rand::Rng;
//!
//! struct StdNormal;
//! impl LogTarget<f64> for StdNormal {
//!     fn log_density(&self, x: &f64) -> f64 { -0.5 * x * x }
//! }
//! struct Walk(f64);
//! impl<R: Rng> ProposalKernel<f64, R> for Walk {
//!     fn propose(&self, x: &f64, rng: &mut R) -> (f64, f64) {
//!         (x + self.0 * (rng.gen::<f64>() - 0.5), 0.0)
//!     }
//! }
//!
//! let mut rng = Mt19937::new(42);
//! let mh = MetropolisHastings::new(StdNormal, Walk(2.0));
//! let run = mh.run(0.0, 2_000, 500, 1, &mut rng);
//! let mean: f64 = run.samples.iter().sum::<f64>() / run.samples.len() as f64;
//! assert!(mean.abs() < 0.3);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chain;
pub mod diagnostics;
pub mod error;
pub mod generalized;
pub mod logdomain;
pub mod metropolis;
pub mod rng;

pub use chain::{ChainSchedule, Trace};
pub use error::McmcError;
pub use generalized::{GeneralizedMetropolisHastings, GmhRun, MultiProposal, ProposalSetWeight};
pub use logdomain::{log_sum_exp, normalize_log_weights, LogProb};
pub use metropolis::{LogTarget, MetropolisHastings, MhRun, ProposalKernel};
pub use rng::{Mt19937, SplitMix64, StreamBank};
