//! SplitMix64: a tiny, statistically solid generator used purely for seeding.
//!
//! Each call advances a 64-bit counter by the golden-ratio increment and
//! scrambles it; successive outputs are decorrelated enough to seed
//! independent [`super::Mt19937`] streams (this is the standard technique
//! recommended by the xoshiro authors for seeding larger generators).

use rand::{Error, RngCore, SeedableRng};

/// The SplitMix64 generator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Create a new generator from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next 64-bit output.
    #[inline]
    #[allow(clippy::should_implement_trait)] // canonical SplitMix64 step, not an Iterator
    pub fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Derive a fresh 32-bit seed suitable for an MT19937 stream.
    #[inline]
    pub fn next_seed32(&mut self) -> u32 {
        (self.next() >> 32) as u32
    }
}

impl RngCore for SplitMix64 {
    #[inline]
    fn next_u32(&mut self) -> u32 {
        (self.next() >> 32) as u32
    }

    #[inline]
    fn next_u64(&mut self) -> u64 {
        self.next()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }

    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

impl SeedableRng for SplitMix64 {
    type Seed = [u8; 8];

    fn from_seed(seed: Self::Seed) -> Self {
        SplitMix64::new(u64::from_le_bytes(seed))
    }

    fn seed_from_u64(state: u64) -> Self {
        SplitMix64::new(state)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_values_for_seed_zero() {
        // Published reference outputs of splitmix64 with state 0.
        let mut sm = SplitMix64::new(0);
        assert_eq!(sm.next(), 0xE220_A839_7B1D_CDAF);
        assert_eq!(sm.next(), 0x6E78_9E6A_A1B9_65F4);
        assert_eq!(sm.next(), 0x06C4_5D18_8009_454F);
    }

    #[test]
    fn deterministic() {
        let mut a = SplitMix64::new(123);
        let mut b = SplitMix64::new(123);
        for _ in 0..100 {
            assert_eq!(a.next(), b.next());
        }
    }

    #[test]
    fn successive_seeds_distinct() {
        let mut sm = SplitMix64::new(42);
        let seeds: Vec<u32> = (0..256).map(|_| sm.next_seed32()).collect();
        let mut dedup = seeds.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), seeds.len(), "derived seeds must be unique");
    }

    #[test]
    fn fill_bytes_partial() {
        let mut sm = SplitMix64::new(9);
        let mut buf = [0u8; 11];
        sm.fill_bytes(&mut buf);
        let mut sm2 = SplitMix64::new(9);
        let w0 = sm2.next().to_le_bytes();
        let w1 = sm2.next().to_le_bytes();
        assert_eq!(&buf[..8], &w0);
        assert_eq!(&buf[8..], &w1[..3]);
    }
}
