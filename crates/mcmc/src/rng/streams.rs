//! A bank of decorrelated per-thread random number streams.
//!
//! The CUDA implementation uses MTGP32, which keeps independent Mersenne
//! Twister state for up to 256 device threads so that concurrent threads can
//! draw random numbers without correlation (Section 5.1.2). This module
//! reproduces that *role* on the host: a [`StreamBank`] owns one [`Mt19937`]
//! per logical stream, each seeded from a [`SplitMix64`] seed sequence so the
//! streams are decorrelated, and hands out independent mutable generators
//! that parallel workers (e.g. one per proposal slot) can consume.

use super::{Mt19937, SplitMix64};

/// A bank of independently seeded MT19937 streams, one per logical thread.
#[derive(Debug, Clone)]
pub struct StreamBank {
    streams: Vec<Mt19937>,
    /// The 32-bit seed each stream was created from, retained so that
    /// [`StreamBank::seek`] can rewind a stream in place and replay to any
    /// recorded position — including streams appended later by
    /// [`StreamBank::ensure_len`], whose seeds are not derivable from
    /// `(master_seed, index)` alone.
    seeds: Vec<u32>,
    master_seed: u64,
}

impl StreamBank {
    /// The stream count used by the reference MTGP32 deployment.
    pub const MTGP32_DEFAULT_STREAMS: usize = 256;

    /// Create a bank of `n` streams derived from `master_seed`.
    pub fn new(master_seed: u64, n: usize) -> Self {
        let mut seeder = SplitMix64::new(master_seed);
        let seeds: Vec<u32> = (0..n).map(|_| seeder.next_seed32()).collect();
        let streams = seeds.iter().map(|&seed| Mt19937::new(seed)).collect();
        StreamBank { streams, seeds, master_seed }
    }

    /// Number of streams in the bank.
    pub fn len(&self) -> usize {
        self.streams.len()
    }

    /// Whether the bank is empty.
    pub fn is_empty(&self) -> bool {
        self.streams.is_empty()
    }

    /// The master seed the bank was derived from.
    pub fn master_seed(&self) -> u64 {
        self.master_seed
    }

    /// Borrow stream `i` mutably.
    ///
    /// # Panics
    /// Panics if `i >= len()`.
    pub fn stream_mut(&mut self, i: usize) -> &mut Mt19937 {
        &mut self.streams[i]
    }

    /// Split the bank into independently owned generators, consuming it.
    ///
    /// This is the form consumed by `rayon` workers: each parallel task takes
    /// ownership of exactly one generator, so no locking is needed.
    pub fn into_streams(self) -> Vec<Mt19937> {
        self.streams
    }

    /// Produce a fresh detached generator for slot `i` without touching the
    /// bank state. Detached generators are seeded from
    /// `(master_seed, epoch, i)` so that the same `(epoch, i)` always yields
    /// the same stream — this is how per-iteration device kernels obtain
    /// reproducible but decorrelated randomness.
    pub fn detached(&self, epoch: u64, i: usize) -> Mt19937 {
        let mut seeder = SplitMix64::new(
            self.master_seed ^ epoch.rotate_left(17) ^ (i as u64).wrapping_mul(0x9E37_79B9),
        );
        // Burn one output so trivially related inputs decorrelate further.
        seeder.next();
        Mt19937::new(seeder.next_seed32())
    }

    /// Grow the bank to at least `n` streams, preserving existing streams.
    pub fn ensure_len(&mut self, n: usize) {
        if n <= self.streams.len() {
            return;
        }
        let mut seeder = SplitMix64::new(self.master_seed ^ 0xA5A5_5A5A_DEAD_BEEF);
        for _ in 0..self.streams.len() {
            seeder.next(); // advance past seeds that conceptually belong to existing streams
        }
        while self.streams.len() < n {
            let seed = seeder.next_seed32();
            self.seeds.push(seed);
            self.streams.push(Mt19937::new(seed));
        }
    }

    /// The exact stream position (raw 32-bit outputs emitted) of every
    /// stream, in bank order. Together with the master seed and the stream
    /// count this is a complete serialisation of the bank's consumable
    /// state: feed the vector back through [`StreamBank::seek`] to restore.
    pub fn positions(&self) -> Vec<u64> {
        self.streams.iter().map(Mt19937::position).collect()
    }

    /// Rewind every stream to its seed and replay it to the recorded
    /// position, so each restored stream emits the exact suffix the original
    /// would have emitted next.
    ///
    /// Errors (with the mismatching shape) when `positions.len()` differs
    /// from the bank's stream count — the caller is resuming a checkpoint
    /// against a bank of a different shape.
    pub fn seek(&mut self, positions: &[u64]) -> Result<(), String> {
        if positions.len() != self.streams.len() {
            return Err(format!(
                "stream position mismatch: checkpoint recorded {} stream position(s) but this \
                 bank has {} stream(s)",
                positions.len(),
                self.streams.len()
            ));
        }
        for ((stream, &seed), &position) in self.streams.iter_mut().zip(&self.seeds).zip(positions)
        {
            stream.reseed(seed);
            stream.discard(position);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::RngCore;

    #[test]
    fn streams_are_deterministic() {
        let mut a = StreamBank::new(7, 8);
        let mut b = StreamBank::new(7, 8);
        for i in 0..8 {
            assert_eq!(a.stream_mut(i).next_u32(), b.stream_mut(i).next_u32());
        }
    }

    #[test]
    fn streams_are_pairwise_decorrelated() {
        let mut bank = StreamBank::new(99, 4);
        let outputs: Vec<Vec<u32>> = (0..4)
            .map(|i| {
                let s = bank.stream_mut(i);
                (0..64).map(|_| s.next_u32()).collect()
            })
            .collect();
        for i in 0..4 {
            for j in (i + 1)..4 {
                let same = outputs[i].iter().zip(&outputs[j]).filter(|(a, b)| a == b).count();
                assert!(same < 3, "streams {i} and {j} share {same} of 64 outputs");
            }
        }
    }

    #[test]
    fn detached_is_reproducible_and_epoch_dependent() {
        let bank = StreamBank::new(1234, 2);
        let mut a = bank.detached(5, 0);
        let mut b = bank.detached(5, 0);
        let mut c = bank.detached(6, 0);
        assert_eq!(a.next_u32(), b.next_u32());
        // Different epoch should (overwhelmingly) differ.
        let mut a2 = bank.detached(5, 0);
        a2.next_u32();
        assert_ne!(a2.next_u32(), c.next_u32());
    }

    #[test]
    fn ensure_len_preserves_existing_streams() {
        let mut bank = StreamBank::new(55, 2);
        let first_before = bank.stream_mut(0).clone().next_u32();
        bank.ensure_len(10);
        assert_eq!(bank.len(), 10);
        let first_after = bank.stream_mut(0).clone().next_u32();
        assert_eq!(first_before, first_after);
        // Growing to a smaller size is a no-op.
        bank.ensure_len(3);
        assert_eq!(bank.len(), 10);
    }

    #[test]
    fn seek_restores_the_exact_suffix_of_every_stream() {
        let mut bank = StreamBank::new(0xC0FF_EE00, 4);
        // Advance each stream by a different amount, crossing the MT19937
        // block boundary on stream 3.
        for (i, n) in [3usize, 0, 17, 700].iter().enumerate() {
            for _ in 0..*n {
                bank.stream_mut(i).next_u32();
            }
        }
        let positions = bank.positions();
        assert_eq!(positions, vec![3, 0, 17, 700]);
        // The expected suffixes, drawn from the live bank.
        let expected: Vec<Vec<u32>> =
            (0..4).map(|i| (0..64).map(|_| bank.stream_mut(i).next_u32()).collect()).collect();
        // Restore a fresh bank to the recorded positions.
        let mut restored = StreamBank::new(0xC0FF_EE00, 4);
        restored.seek(&positions).unwrap();
        assert_eq!(restored.positions(), positions);
        for (i, suffix) in expected.iter().enumerate() {
            let emitted: Vec<u32> = (0..64).map(|_| restored.stream_mut(i).next_u32()).collect();
            assert_eq!(&emitted, suffix, "stream {i} diverged after seek");
        }
    }

    #[test]
    fn seek_covers_streams_grown_by_ensure_len() {
        let mut bank = StreamBank::new(9, 2);
        bank.ensure_len(5);
        for _ in 0..11 {
            bank.stream_mut(4).next_u32();
        }
        let positions = bank.positions();
        let expected = bank.stream_mut(4).next_u32();
        let mut restored = StreamBank::new(9, 2);
        restored.ensure_len(5);
        restored.seek(&positions).unwrap();
        assert_eq!(restored.stream_mut(4).next_u32(), expected);
    }

    #[test]
    fn seek_rejects_a_shape_mismatch() {
        let mut bank = StreamBank::new(1, 3);
        let err = bank.seek(&[0, 0]).unwrap_err();
        assert!(err.contains("2 stream position(s)") && err.contains("3 stream(s)"), "{err}");
    }

    #[test]
    fn into_streams_yields_len_generators() {
        let bank = StreamBank::new(3, 16);
        assert_eq!(bank.len(), 16);
        assert!(!bank.is_empty());
        assert_eq!(bank.master_seed(), 3);
        let streams = bank.into_streams();
        assert_eq!(streams.len(), 16);
    }
}
