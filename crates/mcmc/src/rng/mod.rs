//! Pseudo-random number generation.
//!
//! The original implementation (Section 5.1.2) uses two generators: MT19937
//! on the host and MTGP32 on the CUDA device, the latter maintaining
//! independent state for up to 256 threads. This module provides:
//!
//! * [`Mt19937`] — a from-scratch 32-bit Mersenne Twister implementing the
//!   `rand` traits, used as the host generator.
//! * [`SplitMix64`] — a tiny splittable generator used only to derive
//!   decorrelated seeds.
//! * [`StreamBank`] — a bank of independently seeded [`Mt19937`] streams, one
//!   per logical device thread, standing in for MTGP32.
//! * [`dist`] — hand-rolled samplers (exponential, categorical from log
//!   weights, binomial, normal) so the workspace does not need `rand_distr`.

mod mt19937;
mod splitmix;
mod streams;

pub mod dist;

pub use mt19937::Mt19937;
pub use splitmix::SplitMix64;
pub use streams::StreamBank;

/// The sanctioned root host-RNG constructor.
///
/// Every random stream in a run must be accounted for by the checkpoint
/// codec: chain and swap streams come from a [`StreamBank`] (whose positions
/// are serialized), and the one host-level driving RNG comes from here, so
/// its `(seed, position)` pair can be frozen and replayed. Constructing
/// `Mt19937` ad hoc anywhere else creates a stream checkpoints cannot
/// restore — `mpcgs-analyze` rule `d6` enforces that this function, the
/// bank, tests, and the harness are the only construction sites.
pub fn host_rng(seed: u32) -> Mt19937 {
    Mt19937::new(seed)
}
