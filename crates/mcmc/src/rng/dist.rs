//! Hand-rolled samplers for the distributions the samplers need.
//!
//! Only `rand`'s uniform primitives are used; everything else (exponential,
//! truncated exponential, categorical from log weights, binomial, normal,
//! gamma-free Poisson) is implemented here so the workspace does not pull in
//! `rand_distr`. Each sampler is documented with the inversion / rejection
//! scheme it uses and is covered by statistical unit tests.

use rand::Rng;

use crate::logdomain::log_sum_exp;

/// Sample an exponential random variable with the given `rate` (λ > 0) by
/// inversion: `-ln(1-U)/λ`.
///
/// # Panics
/// Panics if `rate` is not strictly positive and finite.
pub fn exponential<R: Rng + ?Sized>(rng: &mut R, rate: f64) -> f64 {
    assert!(rate > 0.0 && rate.is_finite(), "exponential rate must be positive, got {rate}");
    let u: f64 = rng.gen();
    // 1 - u is in (0, 1]; ln of it is finite.
    -(1.0 - u).ln() / rate
}

/// Sample an exponential with rate λ conditioned on the value being less than
/// `bound`, by inversion of the truncated CDF.
///
/// Used when placing a coalescent event inside a feasible interval of known
/// length (Section 4.2): the waiting time is exponential but must fall inside
/// the interval.
///
/// # Panics
/// Panics if `rate <= 0` or `bound <= 0`.
pub fn truncated_exponential<R: Rng + ?Sized>(rng: &mut R, rate: f64, bound: f64) -> f64 {
    assert!(rate > 0.0 && rate.is_finite(), "rate must be positive, got {rate}");
    assert!(bound > 0.0, "bound must be positive, got {bound}");
    let u: f64 = rng.gen();
    // CDF on [0, bound]: F(t) = (1 - exp(-rate t)) / (1 - exp(-rate bound)).
    let z = 1.0 - (-rate * bound).exp();
    if z <= f64::EPSILON {
        // Rate * bound so small the distribution is effectively uniform.
        return u * bound;
    }
    let t = -(1.0 - u * z).ln() / rate;
    t.min(bound)
}

/// Sample an index from a categorical distribution given unnormalised
/// probabilities (linear domain).
///
/// Returns `None` if the weights are empty or sum to zero / are not finite.
pub fn categorical<R: Rng + ?Sized>(rng: &mut R, weights: &[f64]) -> Option<usize> {
    let total: f64 = weights.iter().copied().filter(|w| w.is_finite() && *w > 0.0).sum();
    if weights.is_empty() || total <= 0.0 || !total.is_finite() {
        return None;
    }
    let mut x = rng.gen::<f64>() * total;
    let mut last_valid = None;
    for (i, &w) in weights.iter().enumerate() {
        if !(w.is_finite() && w > 0.0) {
            continue;
        }
        last_valid = Some(i);
        if x < w {
            return Some(i);
        }
        x -= w;
    }
    // Floating point slack: fall back to the last positive-weight index.
    last_valid
}

/// Sample an index from a categorical distribution given **log** weights.
///
/// This is the sampling step of the Generalized Metropolis–Hastings index
/// chain (Section 4.3): the weights are `log P(D|G̃_i)` values which may be
/// hundreds of log-units below zero, so normalisation must happen in log
/// space (Section 5.3).
///
/// Returns `None` if no weight is finite.
pub fn log_categorical<R: Rng + ?Sized>(rng: &mut R, log_weights: &[f64]) -> Option<usize> {
    if log_weights.is_empty() {
        return None;
    }
    let norm = log_sum_exp(log_weights);
    if !norm.is_finite() {
        return None;
    }
    let u: f64 = rng.gen();
    let mut cum = 0.0f64;
    let mut last_valid = None;
    for (i, &lw) in log_weights.iter().enumerate() {
        let p = (lw - norm).exp();
        if p > 0.0 {
            last_valid = Some(i);
        }
        cum += p;
        if u < cum {
            return Some(i);
        }
    }
    last_valid
}

/// Sample a binomial(n, p) by direct Bernoulli summation for small n and by
/// the normal approximation with continuity correction (clamped to [0, n])
/// for large n.
///
/// Wright–Fisher generations (Section 2.4) draw `2N` allele copies per
/// generation; population sizes in the tests and examples are modest so the
/// exact path dominates, but the approximation keeps large-population
/// simulations tractable.
///
/// # Panics
/// Panics if `p` is outside `[0, 1]`.
pub fn binomial<R: Rng + ?Sized>(rng: &mut R, n: u64, p: f64) -> u64 {
    assert!((0.0..=1.0).contains(&p), "binomial p must lie in [0,1], got {p}");
    // mpcgs-analyze: allow(d5, reason = "degenerate-distribution guard: p = 0 and p = 1 are exact caller-provided constants where the sampler must not consume RNG draws")
    if p == 0.0 || n == 0 {
        return 0;
    }
    // mpcgs-analyze: allow(d5, reason = "degenerate-distribution guard: p = 0 and p = 1 are exact caller-provided constants where the sampler must not consume RNG draws")
    if p == 1.0 {
        return n;
    }
    const EXACT_LIMIT: u64 = 4096;
    if n <= EXACT_LIMIT {
        let mut k = 0u64;
        for _ in 0..n {
            if rng.gen::<f64>() < p {
                k += 1;
            }
        }
        k
    } else {
        let mean = n as f64 * p;
        let sd = (n as f64 * p * (1.0 - p)).sqrt();
        let z = standard_normal(rng);
        let x = (mean + sd * z + 0.5).floor();
        x.clamp(0.0, n as f64) as u64
    }
}

/// Sample a standard normal via the Box–Muller transform.
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    // Avoid u1 == 0 which would make ln(0) = -inf.
    let u1: f64 = loop {
        let u: f64 = rng.gen();
        if u > 0.0 {
            break u;
        }
    };
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Sample a normal with the given mean and standard deviation.
///
/// # Panics
/// Panics if `sd` is negative.
pub fn normal<R: Rng + ?Sized>(rng: &mut R, mean: f64, sd: f64) -> f64 {
    assert!(sd >= 0.0, "standard deviation must be non-negative, got {sd}");
    mean + sd * standard_normal(rng)
}

/// Sample a uniform integer in `[0, n)`. Convenience wrapper matching the
/// auxiliary-variable draw of Section 4.3 (`phi ~ Uniform(1..N)`).
///
/// # Panics
/// Panics if `n == 0`.
pub fn uniform_index<R: Rng + ?Sized>(rng: &mut R, n: usize) -> usize {
    assert!(n > 0, "cannot draw a uniform index from an empty range");
    rng.gen_range(0..n)
}

/// Sample from a discrete uniform over the provided slice, returning a
/// reference to the chosen element.
///
/// # Panics
/// Panics if the slice is empty.
pub fn choose<'a, T, R: Rng + ?Sized>(rng: &mut R, items: &'a [T]) -> &'a T {
    &items[uniform_index(rng, items.len())]
}

/// Sample `k` distinct indices from `[0, n)` by partial Fisher–Yates.
///
/// # Panics
/// Panics if `k > n`.
pub fn sample_without_replacement<R: Rng + ?Sized>(rng: &mut R, n: usize, k: usize) -> Vec<usize> {
    assert!(k <= n, "cannot sample {k} distinct items from {n}");
    let mut idx: Vec<usize> = (0..n).collect();
    for i in 0..k {
        let j = rng.gen_range(i..n);
        idx.swap(i, j);
    }
    idx.truncate(k);
    idx
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Mt19937;

    fn rng() -> Mt19937 {
        Mt19937::new(20_240_101)
    }

    #[test]
    fn exponential_mean_matches_rate() {
        let mut r = rng();
        let rate = 2.5;
        let n = 50_000;
        let mean: f64 = (0..n).map(|_| exponential(&mut r, rate)).sum::<f64>() / n as f64;
        assert!((mean - 1.0 / rate).abs() < 0.01, "mean {mean}");
    }

    #[test]
    #[should_panic(expected = "rate must be positive")]
    fn exponential_rejects_bad_rate() {
        let mut r = rng();
        exponential(&mut r, 0.0);
    }

    #[test]
    fn truncated_exponential_stays_in_bound() {
        let mut r = rng();
        for _ in 0..10_000 {
            let t = truncated_exponential(&mut r, 0.7, 3.0);
            assert!((0.0..=3.0).contains(&t), "{t}");
        }
    }

    #[test]
    fn truncated_exponential_tiny_rate_is_uniform_like() {
        let mut r = rng();
        let n = 20_000;
        let mean: f64 =
            (0..n).map(|_| truncated_exponential(&mut r, 1e-14, 2.0)).sum::<f64>() / n as f64;
        assert!((mean - 1.0).abs() < 0.05, "mean {mean} should be ~1.0 (uniform on [0,2])");
    }

    #[test]
    fn truncated_exponential_matches_conditional_mean() {
        // E[T | T < b] = 1/λ - b·e^{-λb}/(1 - e^{-λb})
        let mut r = rng();
        let (rate, bound) = (1.5, 2.0);
        let n = 100_000;
        let mean: f64 =
            (0..n).map(|_| truncated_exponential(&mut r, rate, bound)).sum::<f64>() / n as f64;
        let expect = 1.0 / rate - bound * (-rate * bound).exp() / (1.0 - (-rate * bound).exp());
        assert!((mean - expect).abs() < 0.01, "mean {mean} vs expected {expect}");
    }

    #[test]
    fn categorical_respects_weights() {
        let mut r = rng();
        let w = [1.0, 2.0, 7.0];
        let n = 60_000;
        let mut counts = [0usize; 3];
        for _ in 0..n {
            counts[categorical(&mut r, &w).unwrap()] += 1;
        }
        let p2 = counts[2] as f64 / n as f64;
        assert!((p2 - 0.7).abs() < 0.02, "p2 {p2}");
        let p0 = counts[0] as f64 / n as f64;
        assert!((p0 - 0.1).abs() < 0.02, "p0 {p0}");
    }

    #[test]
    fn categorical_handles_degenerate_inputs() {
        let mut r = rng();
        assert_eq!(categorical(&mut r, &[]), None);
        assert_eq!(categorical(&mut r, &[0.0, 0.0]), None);
        assert_eq!(categorical(&mut r, &[f64::NAN, 0.0]), None);
        // A single positive weight amid zeros always wins.
        for _ in 0..100 {
            assert_eq!(categorical(&mut r, &[0.0, 3.0, 0.0]), Some(1));
        }
    }

    #[test]
    fn log_categorical_matches_linear_categorical() {
        let mut r1 = rng();
        let mut r2 = rng();
        let w = [0.5f64, 1.5, 3.0, 0.25];
        let lw: Vec<f64> = w.iter().map(|x| x.ln()).collect();
        let n = 40_000;
        let mut lin = [0usize; 4];
        let mut log = [0usize; 4];
        for _ in 0..n {
            lin[categorical(&mut r1, &w).unwrap()] += 1;
            log[log_categorical(&mut r2, &lw).unwrap()] += 1;
        }
        for i in 0..4 {
            let a = lin[i] as f64 / n as f64;
            let b = log[i] as f64 / n as f64;
            assert!((a - b).abs() < 0.02, "bucket {i}: linear {a} vs log {b}");
        }
    }

    #[test]
    fn log_categorical_handles_extreme_magnitudes() {
        let mut r = rng();
        // Weights far below exp-able range must still normalise correctly.
        let lw = [-100_000.0, -100_000.0 + (2.0f64).ln()];
        let n = 30_000;
        let ones = (0..n).filter(|_| log_categorical(&mut r, &lw) == Some(1)).count();
        let p1 = ones as f64 / n as f64;
        assert!((p1 - 2.0 / 3.0).abs() < 0.02, "p1 {p1}");
    }

    #[test]
    fn log_categorical_rejects_all_infinite() {
        let mut r = rng();
        assert_eq!(log_categorical(&mut r, &[f64::NEG_INFINITY, f64::NEG_INFINITY]), None);
        assert_eq!(log_categorical(&mut r, &[]), None);
    }

    #[test]
    fn binomial_exact_path_mean_and_bounds() {
        let mut r = rng();
        let (n_trials, p) = (100u64, 0.3);
        let reps = 20_000;
        let mut sum = 0u64;
        for _ in 0..reps {
            let k = binomial(&mut r, n_trials, p);
            assert!(k <= n_trials);
            sum += k;
        }
        let mean = sum as f64 / reps as f64;
        assert!((mean - 30.0).abs() < 0.3, "mean {mean}");
    }

    #[test]
    fn binomial_normal_approximation_path() {
        let mut r = rng();
        let (n_trials, p) = (1_000_000u64, 0.5);
        let reps = 2_000;
        let mut sum = 0.0;
        for _ in 0..reps {
            let k = binomial(&mut r, n_trials, p);
            assert!(k <= n_trials);
            sum += k as f64;
        }
        let mean = sum / reps as f64;
        assert!((mean / 500_000.0 - 1.0).abs() < 0.001, "mean {mean}");
    }

    #[test]
    fn binomial_edge_cases() {
        let mut r = rng();
        assert_eq!(binomial(&mut r, 0, 0.5), 0);
        assert_eq!(binomial(&mut r, 10, 0.0), 0);
        assert_eq!(binomial(&mut r, 10, 1.0), 10);
    }

    #[test]
    fn normal_moments() {
        let mut r = rng();
        let n = 100_000;
        let xs: Vec<f64> = (0..n).map(|_| normal(&mut r, 3.0, 2.0)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 3.0).abs() < 0.05, "mean {mean}");
        assert!((var - 4.0).abs() < 0.15, "var {var}");
    }

    #[test]
    fn uniform_index_and_choose_cover_range() {
        let mut r = rng();
        let items = [10, 20, 30];
        let mut seen = [false; 3];
        for _ in 0..200 {
            let i = uniform_index(&mut r, 3);
            assert!(i < 3);
            seen[i] = true;
            let _ = choose(&mut r, &items);
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn sample_without_replacement_is_distinct_and_complete() {
        let mut r = rng();
        for _ in 0..100 {
            let s = sample_without_replacement(&mut r, 10, 4);
            assert_eq!(s.len(), 4);
            let mut d = s.clone();
            d.sort_unstable();
            d.dedup();
            assert_eq!(d.len(), 4);
            assert!(s.iter().all(|&i| i < 10));
        }
        let all = sample_without_replacement(&mut r, 5, 5);
        let mut sorted = all.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 1, 2, 3, 4]);
    }
}
