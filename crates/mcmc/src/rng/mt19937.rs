//! MT19937 Mersenne Twister (Matsumoto & Nishimura 1998).
//!
//! This is the standard 32-bit variant with the canonical parameters
//! (n = 624, m = 397, r = 31, a = 0x9908B0DF and the usual tempering
//! constants). The reference initialisation-by-seed routine (`init_genrand`)
//! and initialisation-by-array routine (`init_by_array`) are both provided so
//! that the generator is bit-compatible with the reference C implementation;
//! the unit tests below check the first outputs against the published
//! reference sequence for the standard test seed array.

use rand::{Error, RngCore, SeedableRng};

const N: usize = 624;
const M: usize = 397;
const MATRIX_A: u32 = 0x9908_b0df;
const UPPER_MASK: u32 = 0x8000_0000;
const LOWER_MASK: u32 = 0x7fff_ffff;

/// The MT19937 Mersenne Twister pseudo-random number generator.
#[derive(Clone)]
pub struct Mt19937 {
    state: [u32; N],
    index: usize,
    /// Raw 32-bit outputs emitted since the last (re)seed. Every consumer
    /// path (`next_f64`, `next_u64`, `fill_bytes`, …) funnels through
    /// [`Mt19937::next_u32_raw`], so this single counter is an exact stream
    /// position: reseeding an identically seeded generator and discarding
    /// `position()` outputs reproduces the generator bit for bit.
    emitted: u64,
}

impl std::fmt::Debug for Mt19937 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Mt19937")
            .field("index", &self.index)
            .field("emitted", &self.emitted)
            .finish_non_exhaustive()
    }
}

impl Mt19937 {
    /// Create a generator from a 32-bit seed using the reference
    /// `init_genrand` routine.
    pub fn new(seed: u32) -> Self {
        let mut mt = Mt19937 { state: [0u32; N], index: N + 1, emitted: 0 };
        mt.reseed(seed);
        mt
    }

    /// Create a generator from a seed array using the reference
    /// `init_by_array` routine.
    pub fn from_seed_array(key: &[u32]) -> Self {
        let mut mt = Mt19937::new(19_650_218);
        let mut i: usize = 1;
        let mut j: usize = 0;
        let mut k = N.max(key.len());
        while k > 0 {
            let prev = mt.state[i - 1];
            mt.state[i] = (mt.state[i] ^ ((prev ^ (prev >> 30)).wrapping_mul(1_664_525)))
                .wrapping_add(key[j])
                .wrapping_add(j as u32);
            i += 1;
            j += 1;
            if i >= N {
                mt.state[0] = mt.state[N - 1];
                i = 1;
            }
            if j >= key.len() {
                j = 0;
            }
            k -= 1;
        }
        k = N - 1;
        while k > 0 {
            let prev = mt.state[i - 1];
            mt.state[i] = (mt.state[i] ^ ((prev ^ (prev >> 30)).wrapping_mul(1_566_083_941)))
                .wrapping_sub(i as u32);
            i += 1;
            if i >= N {
                mt.state[0] = mt.state[N - 1];
                i = 1;
            }
            k -= 1;
        }
        mt.state[0] = 0x8000_0000;
        mt.index = N;
        mt.emitted = 0;
        mt
    }

    /// Re-seed the generator in place from a 32-bit seed.
    pub fn reseed(&mut self, seed: u32) {
        self.state[0] = seed;
        for i in 1..N {
            // mpcgs-analyze: allow(r1, reason = "i ranges over 1..N, so i-1 is in bounds by loop construction (the MT19937 seeding recurrence)")
            let prev = self.state[i - 1];
            self.state[i] =
                (1_812_433_253u32.wrapping_mul(prev ^ (prev >> 30))).wrapping_add(i as u32);
        }
        self.index = N;
        self.emitted = 0;
    }

    /// Number of raw 32-bit outputs emitted since the last (re)seed — the
    /// generator's exact stream position. Together with the original seed
    /// this is a complete, portable serialisation of the generator:
    /// `reseed`/reconstruct then [`Mt19937::discard`] by this amount.
    pub fn position(&self) -> u64 {
        self.emitted
    }

    /// Advance the generator by `n` raw 32-bit outputs, discarding them.
    pub fn discard(&mut self, n: u64) {
        for _ in 0..n {
            self.next_u32_raw();
        }
    }

    fn generate_block(&mut self) {
        for i in 0..N {
            let y = (self.state[i] & UPPER_MASK) | (self.state[(i + 1) % N] & LOWER_MASK);
            let mut next = self.state[(i + M) % N] ^ (y >> 1);
            if y & 1 != 0 {
                next ^= MATRIX_A;
            }
            self.state[i] = next;
        }
        self.index = 0;
    }

    /// Generate the next raw 32-bit output (`genrand_int32`).
    #[inline]
    pub fn next_u32_raw(&mut self) -> u32 {
        if self.index >= N {
            self.generate_block();
        }
        let mut y = self.state[self.index];
        self.index += 1;
        self.emitted += 1;
        // Tempering.
        y ^= y >> 11;
        y ^= (y << 7) & 0x9d2c_5680;
        y ^= (y << 15) & 0xefc6_0000;
        y ^= y >> 18;
        y
    }

    /// A double in `[0, 1)` with 53-bit resolution (`genrand_res53`).
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        let a = (self.next_u32_raw() >> 5) as f64; // 27 bits
        let b = (self.next_u32_raw() >> 6) as f64; // 26 bits
        (a * 67_108_864.0 + b) * (1.0 / 9_007_199_254_740_992.0)
    }
}

impl RngCore for Mt19937 {
    #[inline]
    fn next_u32(&mut self) -> u32 {
        self.next_u32_raw()
    }

    #[inline]
    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32_raw() as u64;
        let hi = self.next_u32_raw() as u64;
        (hi << 32) | lo
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(4);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u32_raw().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u32_raw().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }

    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

impl SeedableRng for Mt19937 {
    type Seed = [u8; 4];

    fn from_seed(seed: Self::Seed) -> Self {
        Mt19937::new(u32::from_le_bytes(seed))
    }

    fn seed_from_u64(state: u64) -> Self {
        // Mix the 64-bit seed into a 2-word key so that both halves matter.
        Mt19937::from_seed_array(&[state as u32, (state >> 32) as u32])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    /// First outputs of the reference C implementation for
    /// `init_by_array({0x123, 0x234, 0x345, 0x456})` (the published
    /// mt19937ar.out test vector).
    const REFERENCE_PREFIX: [u32; 3] = [1067595299, 955945823, 477289528];

    #[test]
    fn matches_reference_sequence() {
        let mut mt = Mt19937::from_seed_array(&[0x123, 0x234, 0x345, 0x456]);
        for &expect in &REFERENCE_PREFIX {
            assert_eq!(mt.next_u32_raw(), expect);
        }
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = Mt19937::new(5489);
        let mut b = Mt19937::new(5489);
        for _ in 0..1000 {
            assert_eq!(a.next_u32_raw(), b.next_u32_raw());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Mt19937::new(1);
        let mut b = Mt19937::new(2);
        let same = (0..100).filter(|_| a.next_u32_raw() == b.next_u32_raw()).count();
        assert!(same < 5, "seeds 1 and 2 produced {same} identical outputs of 100");
    }

    #[test]
    fn next_f64_is_in_unit_interval() {
        let mut mt = Mt19937::new(7);
        for _ in 0..10_000 {
            let x = mt.next_f64();
            assert!((0.0..1.0).contains(&x), "{x} outside [0,1)");
        }
    }

    #[test]
    fn next_f64_mean_is_near_half() {
        let mut mt = Mt19937::new(11);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| mt.next_f64()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut mt = Mt19937::new(3);
        let mut buf = [0u8; 7];
        mt.fill_bytes(&mut buf);
        // Compare with manual extraction from an identical generator.
        let mut mt2 = Mt19937::new(3);
        let w0 = mt2.next_u32_raw().to_le_bytes();
        let w1 = mt2.next_u32_raw().to_le_bytes();
        assert_eq!(&buf[..4], &w0);
        assert_eq!(&buf[4..], &w1[..3]);
    }

    #[test]
    fn rand_trait_integration() {
        let mut mt = Mt19937::seed_from_u64(0xDEAD_BEEF_CAFE_F00D);
        let x: f64 = mt.gen();
        assert!((0.0..1.0).contains(&x));
        let y: u64 = mt.gen_range(0..100);
        assert!(y < 100);
    }

    #[test]
    fn reseed_restarts_sequence() {
        let mut a = Mt19937::new(99);
        let first: Vec<u32> = (0..5).map(|_| a.next_u32_raw()).collect();
        a.reseed(99);
        let second: Vec<u32> = (0..5).map(|_| a.next_u32_raw()).collect();
        assert_eq!(first, second);
    }

    #[test]
    fn position_counts_every_output_path() {
        let mut mt = Mt19937::new(42);
        assert_eq!(mt.position(), 0);
        mt.next_u32_raw();
        assert_eq!(mt.position(), 1);
        mt.next_f64(); // two raw outputs
        assert_eq!(mt.position(), 3);
        mt.next_u64(); // two raw outputs
        assert_eq!(mt.position(), 5);
        let mut buf = [0u8; 7]; // two raw outputs (one full word + remainder)
        mt.fill_bytes(&mut buf);
        assert_eq!(mt.position(), 7);
        mt.reseed(42);
        assert_eq!(mt.position(), 0);
    }

    #[test]
    fn reseed_and_discard_restores_the_exact_suffix() {
        let mut original = Mt19937::new(20_160_401);
        for _ in 0..1_000 {
            original.next_f64();
        }
        let position = original.position();
        let mut restored = Mt19937::new(20_160_401);
        restored.discard(position);
        assert_eq!(restored.position(), position);
        // The restored generator emits the exact suffix — including across
        // a block-regeneration boundary (1000 doubles = 2000 raws > 624).
        for _ in 0..2_000 {
            assert_eq!(restored.next_u32_raw(), original.next_u32_raw());
        }
    }

    #[test]
    fn seed_array_construction_starts_at_position_zero() {
        let mt = Mt19937::from_seed_array(&[0x123, 0x234, 0x345, 0x456]);
        assert_eq!(mt.position(), 0);
        let mut a = Mt19937::seed_from_u64(0xDEAD_BEEF);
        a.discard(3);
        let mut b = Mt19937::seed_from_u64(0xDEAD_BEEF);
        b.next_u32_raw();
        b.next_u32_raw();
        b.next_u32_raw();
        assert_eq!(a.next_u32_raw(), b.next_u32_raw());
    }

    #[test]
    fn chi_square_uniformity_of_low_bits() {
        // 16 buckets over the low 4 bits; very loose bound on the chi-square
        // statistic (df = 15, 99.9th percentile ~ 37.7).
        let mut mt = Mt19937::new(20_160_401);
        let n = 64_000usize;
        let mut buckets = [0usize; 16];
        for _ in 0..n {
            buckets[(mt.next_u32_raw() & 0xF) as usize] += 1;
        }
        let expected = n as f64 / 16.0;
        let chi2: f64 = buckets.iter().map(|&o| (o as f64 - expected).powi(2) / expected).sum();
        assert!(chi2 < 40.0, "chi-square statistic too large: {chi2}");
    }
}
