//! Log-domain probability arithmetic (underflow avoidance, Section 5.3).
//!
//! Likelihoods of genealogies are products over hundreds of sites of numbers
//! much smaller than one; stored naively they underflow even in double
//! precision. Following Section 5.3 every probability in this workspace is
//! carried as its natural logarithm, additions use the max-shifted
//! log-sum-exp identity (Eq. 32 of the paper), and [`LogProb`] gives the
//! pattern a small newtype so intent is visible in signatures.

use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, MulAssign, Sub};

/// Numerically stable `ln(Σ exp(x_i))`.
///
/// Implements Eq. 32: the maximum is factored out so at least one term of the
/// inner sum is exactly 1 and none can overflow. Empty input and all-`-inf`
/// input return `-inf` (the log of zero mass); any `+inf` input returns
/// `+inf`; a `NaN` input propagates.
pub fn log_sum_exp(xs: &[f64]) -> f64 {
    let mut max = f64::NEG_INFINITY;
    for &x in xs {
        if x.is_nan() {
            return f64::NAN;
        }
        if x > max {
            max = x;
        }
    }
    // mpcgs-analyze: allow(d5, reason = "±infinity are exact IEEE sentinels: log-domain zero and overflow have no representation drift")
    if max == f64::NEG_INFINITY {
        return f64::NEG_INFINITY;
    }
    // mpcgs-analyze: allow(d5, reason = "±infinity are exact IEEE sentinels: log-domain zero and overflow have no representation drift")
    if max == f64::INFINITY {
        return f64::INFINITY;
    }
    let sum: f64 = xs.iter().map(|&x| (x - max).exp()).sum();
    max + sum.ln()
}

/// Numerically stable `ln(exp(a) + exp(b))` for two values.
pub fn log_add_exp(a: f64, b: f64) -> f64 {
    if a.is_nan() || b.is_nan() {
        return f64::NAN;
    }
    let (hi, lo) = if a >= b { (a, b) } else { (b, a) };
    // mpcgs-analyze: allow(d5, reason = "-infinity is the exact IEEE sentinel for log-domain zero; the guard avoids inf - inf = NaN below")
    if hi == f64::NEG_INFINITY {
        return f64::NEG_INFINITY;
    }
    hi + (lo - hi).exp().ln_1p()
}

/// Normalise log weights into linear-domain probabilities that sum to one.
///
/// Returns an empty vector if the input has no finite mass.
pub fn normalize_log_weights(log_weights: &[f64]) -> Vec<f64> {
    let norm = log_sum_exp(log_weights);
    if !norm.is_finite() {
        return Vec::new();
    }
    log_weights.iter().map(|&lw| (lw - norm).exp()).collect()
}

/// The mean of linear-domain values supplied as logs, returned as a log:
/// `ln((1/n) Σ exp(x_i))`.
///
/// This is the form of the relative-likelihood estimator of Eq. 26.
pub fn log_mean_exp(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return f64::NEG_INFINITY;
    }
    log_sum_exp(xs) - (xs.len() as f64).ln()
}

/// A probability (or likelihood) stored as its natural logarithm.
///
/// Multiplication of probabilities is addition of `LogProb`s; addition of
/// probabilities uses [`log_add_exp`]. The type is a transparent `f64`
/// wrapper: `value()` returns the stored log, [`LogProb::linear`] exponentiates.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd)]
pub struct LogProb(f64);

impl LogProb {
    /// The log-probability of an impossible event (probability zero).
    pub const ZERO: LogProb = LogProb(f64::NEG_INFINITY);
    /// The log-probability of a certain event (probability one).
    pub const ONE: LogProb = LogProb(0.0);

    /// Wrap an already-log-domain value.
    pub fn new(log_value: f64) -> Self {
        LogProb(log_value)
    }

    /// Convert a linear-domain probability into log domain.
    ///
    /// # Panics
    /// Panics if `p` is negative or NaN.
    pub fn from_linear(p: f64) -> Self {
        assert!(p >= 0.0 && !p.is_nan(), "probabilities must be non-negative, got {p}");
        LogProb(p.ln())
    }

    /// The stored log value.
    pub fn value(self) -> f64 {
        self.0
    }

    /// Exponentiate back to linear domain (may underflow to 0.0, which is the
    /// entire reason this type exists).
    pub fn linear(self) -> f64 {
        self.0.exp()
    }

    /// Whether this represents exactly zero probability.
    pub fn is_zero(self) -> bool {
        // mpcgs-analyze: allow(d5, reason = "-infinity is the exact IEEE sentinel LogProb::ZERO stores; no computed value is compared")
        self.0 == f64::NEG_INFINITY
    }

    /// Whether the stored log value is finite or `-inf` (i.e. not NaN/`+inf`).
    pub fn is_valid(self) -> bool {
        // mpcgs-analyze: allow(d5, reason = "+infinity is an exact IEEE sentinel (overflowed log-probability), not a computed value")
        !self.0.is_nan() && self.0 != f64::INFINITY
    }
}

impl Default for LogProb {
    fn default() -> Self {
        LogProb::ONE
    }
}

/// Product of probabilities: addition in log space.
impl Mul for LogProb {
    type Output = LogProb;
    #[allow(clippy::suspicious_arithmetic_impl)] // log domain: product == sum of logs
    fn mul(self, rhs: LogProb) -> LogProb {
        LogProb(self.0 + rhs.0)
    }
}

impl MulAssign for LogProb {
    #[allow(clippy::suspicious_op_assign_impl)] // log domain: product == sum of logs
    fn mul_assign(&mut self, rhs: LogProb) {
        self.0 += rhs.0;
    }
}

/// Ratio of probabilities: subtraction in log space.
impl Div for LogProb {
    type Output = LogProb;
    #[allow(clippy::suspicious_arithmetic_impl)] // log domain: ratio == difference of logs
    fn div(self, rhs: LogProb) -> LogProb {
        LogProb(self.0 - rhs.0)
    }
}

/// Sum of probabilities: log-add-exp.
impl Add for LogProb {
    type Output = LogProb;
    fn add(self, rhs: LogProb) -> LogProb {
        LogProb(log_add_exp(self.0, rhs.0))
    }
}

impl AddAssign for LogProb {
    fn add_assign(&mut self, rhs: LogProb) {
        self.0 = log_add_exp(self.0, rhs.0);
    }
}

/// `p - q` in linear domain, valid only when `p >= q`; result stays in log
/// domain. Useful for complementary probabilities.
impl Sub for LogProb {
    type Output = LogProb;
    fn sub(self, rhs: LogProb) -> LogProb {
        if rhs.is_zero() {
            return self;
        }
        debug_assert!(
            rhs.0 <= self.0 + 1e-12,
            "LogProb subtraction would be negative: {} - {}",
            self.0,
            rhs.0
        );
        let d = rhs.0 - self.0;
        // ln(e^a - e^b) = a + ln(1 - e^{b-a})
        LogProb(self.0 + (-(d.exp())).ln_1p())
    }
}

impl Sum for LogProb {
    fn sum<I: Iterator<Item = LogProb>>(iter: I) -> LogProb {
        let logs: Vec<f64> = iter.map(|p| p.0).collect();
        LogProb(log_sum_exp(&logs))
    }
}

impl From<f64> for LogProb {
    /// Interprets the `f64` as an already-log-domain value.
    fn from(log_value: f64) -> Self {
        LogProb(log_value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, tol: f64) -> bool {
        (a - b).abs() < tol
    }

    #[test]
    fn log_sum_exp_matches_direct_sum_for_moderate_values() {
        let xs = [0.1f64, -1.2, 2.3, 0.0];
        let direct: f64 = xs.iter().map(|x| x.exp()).sum::<f64>().ln();
        assert!(close(log_sum_exp(&xs), direct, 1e-12));
    }

    #[test]
    fn log_sum_exp_survives_extreme_magnitudes() {
        let xs = [-1e6, -1e6 + 1.0];
        let got = log_sum_exp(&xs);
        let expect = -1e6 + (1.0 + 1f64.exp()).ln();
        assert!(close(got, expect, 1e-9), "{got} vs {expect}");
    }

    #[test]
    fn log_sum_exp_edge_cases() {
        assert_eq!(log_sum_exp(&[]), f64::NEG_INFINITY);
        assert_eq!(log_sum_exp(&[f64::NEG_INFINITY, f64::NEG_INFINITY]), f64::NEG_INFINITY);
        assert_eq!(log_sum_exp(&[f64::INFINITY, 0.0]), f64::INFINITY);
        assert!(log_sum_exp(&[f64::NAN, 0.0]).is_nan());
        // Singleton is identity.
        assert!(close(log_sum_exp(&[-3.25]), -3.25, 1e-15));
    }

    #[test]
    fn log_add_exp_agrees_with_log_sum_exp() {
        for &(a, b) in &[(0.0, 0.0), (-700.0, -701.0), (5.0, -5.0), (f64::NEG_INFINITY, -2.0)] {
            assert!(close(log_add_exp(a, b), log_sum_exp(&[a, b]), 1e-12), "({a},{b})");
        }
        assert_eq!(log_add_exp(f64::NEG_INFINITY, f64::NEG_INFINITY), f64::NEG_INFINITY);
        assert!(log_add_exp(f64::NAN, 1.0).is_nan());
    }

    #[test]
    fn normalize_log_weights_sums_to_one() {
        let lw = [-500.0, -501.0, -499.5];
        let p = normalize_log_weights(&lw);
        assert_eq!(p.len(), 3);
        assert!(close(p.iter().sum::<f64>(), 1.0, 1e-12));
        assert!(p[2] > p[0] && p[0] > p[1]);
        assert!(normalize_log_weights(&[f64::NEG_INFINITY]).is_empty());
        assert!(normalize_log_weights(&[]).is_empty());
    }

    #[test]
    fn log_mean_exp_is_mean_in_linear_domain() {
        let xs = [0.0f64, (2.0f64).ln()];
        // mean of 1 and 2 = 1.5
        assert!(close(log_mean_exp(&xs), 1.5f64.ln(), 1e-12));
        assert_eq!(log_mean_exp(&[]), f64::NEG_INFINITY);
    }

    #[test]
    fn logprob_multiplication_is_addition_of_logs() {
        let a = LogProb::from_linear(0.5);
        let b = LogProb::from_linear(0.25);
        assert!(close((a * b).linear(), 0.125, 1e-12));
        let mut c = a;
        c *= b;
        assert!(close(c.linear(), 0.125, 1e-12));
    }

    #[test]
    fn logprob_addition_is_linear_sum() {
        let a = LogProb::from_linear(0.5);
        let b = LogProb::from_linear(0.25);
        assert!(close((a + b).linear(), 0.75, 1e-12));
        let mut c = a;
        c += b;
        assert!(close(c.linear(), 0.75, 1e-12));
    }

    #[test]
    fn logprob_subtraction_and_division() {
        let a = LogProb::from_linear(0.75);
        let b = LogProb::from_linear(0.25);
        assert!(close((a - b).linear(), 0.5, 1e-12));
        assert!(close((a / b).linear(), 3.0, 1e-12));
        // Subtracting zero is identity.
        assert_eq!((a - LogProb::ZERO).value(), a.value());
    }

    #[test]
    fn logprob_constants_and_predicates() {
        assert!(LogProb::ZERO.is_zero());
        assert!(!LogProb::ONE.is_zero());
        assert!(LogProb::ONE.is_valid());
        assert!(LogProb::ZERO.is_valid());
        assert!(!LogProb::new(f64::NAN).is_valid());
        assert!(!LogProb::new(f64::INFINITY).is_valid());
        assert_eq!(LogProb::default(), LogProb::ONE);
        assert_eq!(LogProb::ONE.linear(), 1.0);
        assert_eq!(LogProb::ZERO.linear(), 0.0);
    }

    #[test]
    fn logprob_sum_over_iterator() {
        let parts =
            vec![LogProb::from_linear(0.1), LogProb::from_linear(0.2), LogProb::from_linear(0.3)];
        let total: LogProb = parts.into_iter().sum();
        assert!(close(total.linear(), 0.6, 1e-12));
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn logprob_from_linear_rejects_negative() {
        let _ = LogProb::from_linear(-0.1);
    }

    #[test]
    fn logprob_ordering_matches_linear_ordering() {
        let a = LogProb::from_linear(0.1);
        let b = LogProb::from_linear(0.9);
        assert!(a < b);
        assert!(LogProb::ZERO < a);
    }
}

// Property-style tests over randomly drawn inputs. Hand-rolled case driver:
// the build environment cannot fetch `proptest`, so each property loops over
// random draws from the same ranges the original strategies described.
#[cfg(test)]
mod proptests {
    use super::*;
    use rand::{Rng, RngCore};

    /// Minimal xorshift so this crate's tests do not depend on `crate::rng`
    /// internals under test elsewhere.
    struct CaseRng(u64);

    impl RngCore for CaseRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let mut x = self.0;
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            self.0 = x;
            x
        }

        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let bytes = self.next_u64().to_le_bytes();
                let n = chunk.len();
                chunk.copy_from_slice(&bytes[..n]);
            }
        }
    }

    fn vec_in(rng: &mut CaseRng, lo: f64, hi: f64, max_len: usize) -> Vec<f64> {
        let len = rng.gen_range(1..max_len);
        (0..len).map(|_| lo + rng.gen::<f64>() * (hi - lo)).collect()
    }

    const CASES: usize = 64;

    #[test]
    fn log_sum_exp_ge_max() {
        let mut rng = CaseRng(0x1157_5E1F);
        for _ in 0..CASES {
            let xs = vec_in(&mut rng, -500.0, 500.0, 50);
            let max = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            let lse = log_sum_exp(&xs);
            assert!(lse >= max - 1e-9, "lse {lse} < max {max} for {xs:?}");
            assert!(lse <= max + (xs.len() as f64).ln() + 1e-9, "lse {lse} too large for {xs:?}");
        }
    }

    #[test]
    fn normalize_is_a_distribution() {
        let mut rng = CaseRng(0x0D15_7217);
        for _ in 0..CASES {
            let xs = vec_in(&mut rng, -2000.0, 0.0, 40);
            let p = normalize_log_weights(&xs);
            assert_eq!(p.len(), xs.len());
            let sum: f64 = p.iter().sum();
            assert!((sum - 1.0).abs() < 1e-9, "sum {sum} for {xs:?}");
            assert!(p.iter().all(|&x| (0.0..=1.0 + 1e-12).contains(&x)), "{p:?}");
        }
    }

    #[test]
    fn logprob_mul_commutes() {
        let mut rng = CaseRng(0xC0_77E5);
        for _ in 0..CASES {
            let a = -700.0 * rng.gen::<f64>();
            let b = -700.0 * rng.gen::<f64>();
            let x = LogProb::new(a) * LogProb::new(b);
            let y = LogProb::new(b) * LogProb::new(a);
            assert!((x.value() - y.value()).abs() < 1e-12, "a={a} b={b}");
        }
    }

    #[test]
    fn logprob_add_commutes_and_dominates() {
        let mut rng = CaseRng(0xADD_C0DE);
        for _ in 0..CASES {
            let a = -700.0 * rng.gen::<f64>();
            let b = -700.0 * rng.gen::<f64>();
            let x = LogProb::new(a) + LogProb::new(b);
            let y = LogProb::new(b) + LogProb::new(a);
            assert!((x.value() - y.value()).abs() < 1e-12, "a={a} b={b}");
            assert!(x.value() >= a.max(b) - 1e-12, "a={a} b={b}");
        }
    }
}
