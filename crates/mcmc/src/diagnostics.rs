//! Chain diagnostics: summary statistics, autocorrelation, effective sample
//! size, and the Gelman–Rubin potential scale reduction factor.
//!
//! Section 2.3 of the paper discusses the difficulty of judging burn-in and
//! convergence; these are the standard tools used to do so in practice (and
//! the tools the integration tests use to demonstrate that the multi-proposal
//! sampler converges to the same distribution as the baseline).

use crate::error::McmcError;

/// Summary statistics of a scalar sample.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Number of values.
    pub n: usize,
    /// Sample mean.
    pub mean: f64,
    /// Unbiased sample variance.
    pub variance: f64,
    /// Standard deviation (sqrt of variance).
    pub std_dev: f64,
    /// Minimum value.
    pub min: f64,
    /// Maximum value.
    pub max: f64,
    /// Median (by sorting).
    pub median: f64,
}

impl Summary {
    /// Compute a summary of the values.
    pub fn of(values: &[f64]) -> Result<Summary, McmcError> {
        if values.is_empty() {
            return Err(McmcError::InsufficientSamples { available: 0, required: 1 });
        }
        let n = values.len();
        let mean = values.iter().sum::<f64>() / n as f64;
        let variance = if n > 1 {
            values.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1) as f64
        } else {
            0.0
        };
        let mut sorted = values.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        let median =
            if n % 2 == 1 { sorted[n / 2] } else { 0.5 * (sorted[n / 2 - 1] + sorted[n / 2]) };
        Ok(Summary {
            n,
            mean,
            variance,
            std_dev: variance.sqrt(),
            min: sorted[0],
            max: sorted[n - 1],
            median,
        })
    }

    /// The Monte-Carlo standard error `sd / sqrt(n)` (the 1/√N convergence
    /// rate quoted in Section 2.2).
    pub fn standard_error(&self) -> f64 {
        self.std_dev / (self.n as f64).sqrt()
    }
}

/// Sample autocorrelation at the given lag.
///
/// Returns `None` when the lag is not smaller than the series length or the
/// series has no variance.
pub fn autocorrelation(values: &[f64], lag: usize) -> Option<f64> {
    let n = values.len();
    if lag >= n || n < 2 {
        return None;
    }
    let mean = values.iter().sum::<f64>() / n as f64;
    let denom: f64 = values.iter().map(|x| (x - mean).powi(2)).sum();
    if denom <= 0.0 {
        return None;
    }
    let num: f64 = (0..n - lag).map(|i| (values[i] - mean) * (values[i + lag] - mean)).sum();
    Some(num / denom)
}

/// Effective sample size using the initial positive sequence estimator
/// (Geyer 1992): sum autocorrelations in pairs and truncate at the first pair
/// whose sum is non-positive.
///
/// Returns `n` for an i.i.d. (or anti-correlated) series and a value well
/// below `n` for a sticky chain.
pub fn effective_sample_size(values: &[f64]) -> Result<f64, McmcError> {
    let n = values.len();
    if n < 4 {
        return Err(McmcError::InsufficientSamples { available: n, required: 4 });
    }
    let mut sum_rho = 0.0f64;
    let max_lag = n - 2;
    let mut lag = 1usize;
    while lag < max_lag {
        let rho_a = autocorrelation(values, lag).unwrap_or(0.0);
        let rho_b = autocorrelation(values, lag + 1).unwrap_or(0.0);
        let pair = rho_a + rho_b;
        if pair <= 0.0 {
            break;
        }
        sum_rho += pair;
        lag += 2;
        // Don't scan absurdly far for long series; the tail contributes noise.
        if lag > 1_000 {
            break;
        }
    }
    let ess = n as f64 / (1.0 + 2.0 * sum_rho);
    Ok(ess.clamp(1.0, n as f64))
}

/// Gelman–Rubin potential scale reduction factor R̂ across multiple chains.
///
/// Values close to 1.0 indicate the chains are sampling the same
/// distribution; values substantially above 1.1 indicate non-convergence
/// (insufficient burn-in — exactly the multi-chain check described at the end
/// of Section 2.3).
pub fn gelman_rubin(chains: &[Vec<f64>]) -> Result<f64, McmcError> {
    let m = chains.len();
    if m < 2 {
        return Err(McmcError::InsufficientSamples { available: m, required: 2 });
    }
    let n = chains.iter().map(|c| c.len()).min().unwrap_or(0);
    if n < 4 {
        return Err(McmcError::InsufficientSamples { available: n, required: 4 });
    }
    // Truncate all chains to the common length n.
    let means: Vec<f64> = chains.iter().map(|c| c[..n].iter().sum::<f64>() / n as f64).collect();
    let grand_mean = means.iter().sum::<f64>() / m as f64;
    // Between-chain variance.
    let b =
        n as f64 / (m as f64 - 1.0) * means.iter().map(|mu| (mu - grand_mean).powi(2)).sum::<f64>();
    // Within-chain variance.
    let w = chains
        .iter()
        .zip(&means)
        .map(|(c, mu)| c[..n].iter().map(|x| (x - mu).powi(2)).sum::<f64>() / (n as f64 - 1.0))
        .sum::<f64>()
        / m as f64;
    if w <= 0.0 {
        // All chains constant: perfectly converged by definition.
        return Ok(1.0);
    }
    let var_plus = (n as f64 - 1.0) / n as f64 * w + b / n as f64;
    Ok((var_plus / w).sqrt())
}

/// A crude automatic burn-in detector: the first index after which the
/// running mean of the series stays within `tol` standard deviations of the
/// final mean. Used by the burn-in trace harness (Figure 2) to annotate where
/// convergence visually happens; it is deliberately conservative.
pub fn detect_burn_in(values: &[f64], tol: f64) -> usize {
    let n = values.len();
    if n < 10 {
        return 0;
    }
    let tail = &values[n / 2..];
    let tail_mean = tail.iter().sum::<f64>() / tail.len() as f64;
    let tail_sd = (tail.iter().map(|x| (x - tail_mean).powi(2)).sum::<f64>() / tail.len() as f64)
        .sqrt()
        .max(f64::MIN_POSITIVE);
    for (i, &v) in values.iter().enumerate() {
        if (v - tail_mean).abs() <= tol * tail_sd {
            return i;
        }
    }
    n
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::dist::standard_normal;
    use crate::rng::Mt19937;

    #[test]
    fn summary_basic_statistics() {
        let s = Summary::of(&[1.0, 2.0, 3.0, 4.0, 5.0]).unwrap();
        assert_eq!(s.n, 5);
        assert_eq!(s.mean, 3.0);
        assert_eq!(s.median, 3.0);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 5.0);
        assert!((s.variance - 2.5).abs() < 1e-12);
        assert!((s.standard_error() - (2.5f64).sqrt() / 5f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn summary_even_length_median_and_single_value() {
        let s = Summary::of(&[4.0, 1.0, 3.0, 2.0]).unwrap();
        assert_eq!(s.median, 2.5);
        let s1 = Summary::of(&[7.0]).unwrap();
        assert_eq!(s1.variance, 0.0);
        assert_eq!(s1.median, 7.0);
        assert!(Summary::of(&[]).is_err());
    }

    #[test]
    fn autocorrelation_of_iid_series_is_small() {
        let mut rng = Mt19937::new(44);
        let xs: Vec<f64> = (0..20_000).map(|_| standard_normal(&mut rng)).collect();
        let r1 = autocorrelation(&xs, 1).unwrap();
        let r5 = autocorrelation(&xs, 5).unwrap();
        assert!(r1.abs() < 0.03, "lag-1 autocorrelation {r1}");
        assert!(r5.abs() < 0.03, "lag-5 autocorrelation {r5}");
        assert!((autocorrelation(&xs, 0).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn autocorrelation_of_ar1_series_matches_phi() {
        let mut rng = Mt19937::new(45);
        let phi = 0.8;
        let mut x = 0.0;
        let xs: Vec<f64> = (0..50_000)
            .map(|_| {
                x = phi * x + standard_normal(&mut rng);
                x
            })
            .collect();
        let r1 = autocorrelation(&xs, 1).unwrap();
        assert!((r1 - phi).abs() < 0.03, "lag-1 {r1} should be near {phi}");
    }

    #[test]
    fn autocorrelation_edge_cases() {
        assert_eq!(autocorrelation(&[1.0], 0), None);
        assert_eq!(autocorrelation(&[1.0, 2.0], 5), None);
        assert_eq!(autocorrelation(&[2.0, 2.0, 2.0], 1), None);
    }

    #[test]
    fn ess_iid_is_close_to_n_and_correlated_is_smaller() {
        let mut rng = Mt19937::new(46);
        let iid: Vec<f64> = (0..5_000).map(|_| standard_normal(&mut rng)).collect();
        let ess_iid = effective_sample_size(&iid).unwrap();
        assert!(ess_iid > 3_000.0, "iid ESS {ess_iid}");

        let phi = 0.95;
        let mut x = 0.0;
        let ar: Vec<f64> = (0..5_000)
            .map(|_| {
                x = phi * x + standard_normal(&mut rng);
                x
            })
            .collect();
        let ess_ar = effective_sample_size(&ar).unwrap();
        assert!(ess_ar < 1_000.0, "AR(1) ESS {ess_ar} should be far below n");
        assert!(ess_ar >= 1.0);

        assert!(effective_sample_size(&[1.0, 2.0]).is_err());
    }

    #[test]
    fn gelman_rubin_converged_chains_near_one() {
        let mut rng = Mt19937::new(47);
        let chains: Vec<Vec<f64>> =
            (0..4).map(|_| (0..2_000).map(|_| standard_normal(&mut rng)).collect()).collect();
        let r = gelman_rubin(&chains).unwrap();
        assert!((r - 1.0).abs() < 0.02, "R-hat {r}");
    }

    #[test]
    fn gelman_rubin_detects_divergent_chains() {
        let mut rng = Mt19937::new(48);
        let a: Vec<f64> = (0..1_000).map(|_| standard_normal(&mut rng)).collect();
        let b: Vec<f64> = (0..1_000).map(|_| 10.0 + standard_normal(&mut rng)).collect();
        let r = gelman_rubin(&[a, b]).unwrap();
        assert!(r > 3.0, "R-hat {r} should flag the 10-sigma offset");
    }

    #[test]
    fn gelman_rubin_edge_cases() {
        assert!(gelman_rubin(&[vec![1.0, 2.0, 3.0, 4.0]]).is_err());
        assert!(gelman_rubin(&[vec![1.0], vec![2.0]]).is_err());
        // Constant chains are converged by definition.
        let r = gelman_rubin(&[vec![2.0; 10], vec![2.0; 10]]).unwrap();
        assert_eq!(r, 1.0);
    }

    #[test]
    fn detect_burn_in_finds_transient() {
        // A series that starts at 100 and decays to noise around zero.
        let mut rng = Mt19937::new(49);
        let values: Vec<f64> = (0..500)
            .map(|i| 100.0 * (-(i as f64) / 30.0).exp() + 0.1 * standard_normal(&mut rng))
            .collect();
        let b = detect_burn_in(&values, 3.0);
        assert!(b > 10 && b < 400, "burn-in estimate {b}");
        // Already-converged series needs no burn-in.
        let flat: Vec<f64> = (0..100).map(|_| standard_normal(&mut rng)).collect();
        assert!(detect_burn_in(&flat, 3.0) <= 2);
        // Tiny series returns zero.
        assert_eq!(detect_burn_in(&[1.0, 2.0], 3.0), 0);
    }
}
