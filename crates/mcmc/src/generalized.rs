//! Generalized Metropolis–Hastings (Calderhead 2014), Section 4.1.
//!
//! At every iteration the sampler generates `N` candidate states from the
//! current *generator* state, forms the proposal set of `N + 1` states (the
//! candidates plus the generator), computes the stationary distribution of
//! the auxiliary index variable `I` over that set, draws `M` index samples
//! from it, emits the indexed states as output samples, and uses the last
//! drawn state as the generator for the next iteration. With `N = 1` and
//! `M = 1` the method reduces to standard Metropolis–Hastings (checked by a
//! unit test below).
//!
//! The driver is generic: the problem supplies a [`MultiProposal`] that can
//! generate candidates (this is where the application parallelises the work)
//! and a [`ProposalSetWeight`] that returns the log stationary weight of each
//! member of the set. For the coalescent sampler the weight reduces to the
//! data likelihood `ln P(D | G̃_i)` (Eq. 29–31).

use rand::Rng;

use crate::chain::Trace;
use crate::logdomain::log_sum_exp;
use crate::rng::dist::log_categorical;

/// Generates a set of candidate states from the current generator state.
pub trait MultiProposal<S, R: Rng + ?Sized> {
    /// Produce `n` candidates from `generator`.
    ///
    /// Implementations are free to generate candidates in parallel; the
    /// signature only requires that the result arrive as a `Vec`.
    fn propose_set(&self, generator: &S, n: usize, rng: &mut R) -> Vec<S>;
}

/// Computes the log stationary weight of one member of a proposal set.
pub trait ProposalSetWeight<S> {
    /// Log weight (up to an additive constant shared by the whole set).
    fn log_weight(&self, state: &S) -> f64;
}

/// Blanket impl so a closure can act as a weight function.
impl<S, F> ProposalSetWeight<S> for F
where
    F: Fn(&S) -> f64,
{
    fn log_weight(&self, state: &S) -> f64 {
        self(state)
    }
}

/// Outcome of a Generalized Metropolis–Hastings run.
#[derive(Debug, Clone)]
pub struct GmhRun<S> {
    /// Retained post-burn-in samples.
    pub samples: Vec<S>,
    /// Trace of the log weight of the sampled state at every draw
    /// (burn-in included).
    pub trace: Trace,
    /// Number of iterations (proposal-set constructions) performed.
    pub iterations: usize,
    /// Number of draws in which the sampled index differed from the
    /// generator index (an analogue of the acceptance count).
    pub moved: usize,
    /// Total number of index draws performed.
    pub draws: usize,
    /// Final generator state.
    pub final_state: S,
}

impl<S> GmhRun<S> {
    /// Fraction of index draws that moved away from the generator state.
    pub fn move_rate(&self) -> f64 {
        if self.draws == 0 {
            0.0
        } else {
            self.moved as f64 / self.draws as f64
        }
    }
}

/// Configuration of the Generalized Metropolis–Hastings driver.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GmhConfig {
    /// Number of fresh candidates per iteration (`N`).
    pub proposals_per_iteration: usize,
    /// Number of index draws per iteration (`M`). The paper uses `M = N`.
    pub draws_per_iteration: usize,
    /// Number of *draws* discarded as burn-in.
    pub burn_in_draws: usize,
    /// Number of retained post-burn-in draws.
    pub sample_draws: usize,
}

impl Default for GmhConfig {
    fn default() -> Self {
        GmhConfig {
            proposals_per_iteration: 16,
            draws_per_iteration: 16,
            burn_in_draws: 1_000,
            sample_draws: 10_000,
        }
    }
}

/// The Generalized Metropolis–Hastings driver.
#[derive(Debug, Clone)]
pub struct GeneralizedMetropolisHastings<P, W> {
    proposal: P,
    weight: W,
    config: GmhConfig,
}

impl<P, W> GeneralizedMetropolisHastings<P, W> {
    /// Create a driver.
    pub fn new(proposal: P, weight: W, config: GmhConfig) -> Self {
        GeneralizedMetropolisHastings { proposal, weight, config }
    }

    /// The configuration in use.
    pub fn config(&self) -> &GmhConfig {
        &self.config
    }

    /// Run the sampler (Algorithm 1 of the paper).
    pub fn run<S, R>(&self, initial: S, rng: &mut R) -> GmhRun<S>
    where
        S: Clone,
        P: MultiProposal<S, R>,
        W: ProposalSetWeight<S>,
        R: Rng + ?Sized,
    {
        let n = self.config.proposals_per_iteration.max(1);
        let m = self.config.draws_per_iteration.max(1);
        let total_draws = self.config.burn_in_draws + self.config.sample_draws;

        let mut generator = initial;
        let mut samples = Vec::with_capacity(self.config.sample_draws);
        let mut trace = Trace::with_burn_in(self.config.burn_in_draws);
        let mut moved = 0usize;
        let mut draws_done = 0usize;
        let mut iterations = 0usize;

        while draws_done < total_draws {
            iterations += 1;
            // Step 4 of Algorithm 1: draw N candidates from the proposal kernel.
            let candidates = self.proposal.propose_set(&generator, n, rng);
            // The proposal set is the candidates plus the generator (index n).
            let generator_index = candidates.len();
            // Step 5: stationary distribution of I over the set.
            let mut log_weights: Vec<f64> =
                candidates.iter().map(|c| self.weight.log_weight(c)).collect();
            log_weights.push(self.weight.log_weight(&generator));

            // Guard against a fully degenerate set: stay at the generator.
            let usable = log_sum_exp(&log_weights).is_finite();

            // Steps 6-8: draw M index samples.
            let mut last_index = generator_index;
            for _ in 0..m {
                if draws_done >= total_draws {
                    break;
                }
                let idx = if usable {
                    log_categorical(rng, &log_weights).unwrap_or(generator_index)
                } else {
                    generator_index
                };
                if idx != generator_index {
                    moved += 1;
                }
                let state = if idx == generator_index { &generator } else { &candidates[idx] };
                trace.push(log_weights[idx]);
                if draws_done >= self.config.burn_in_draws {
                    samples.push(state.clone());
                }
                last_index = idx;
                draws_done += 1;
            }

            // The last sample becomes the generator of the next proposal set.
            if last_index != generator_index {
                generator = candidates[last_index].clone();
            }
        }

        GmhRun { samples, trace, iterations, moved, draws: total_draws, final_state: generator }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metropolis::{LogTarget, MetropolisHastings, ProposalKernel};
    use crate::rng::Mt19937;

    /// Target: unit normal. Proposal kernel: independent draws from a wide
    /// uniform window around the generator. For an independence-style kernel
    /// proposing from density q(x) and target pi(x), the GMH stationary
    /// weight of a member is pi(x)/q(x); with q locally uniform this is just
    /// pi(x), matching the paper's simplification (Eq. 31).
    struct WindowProposal {
        half_width: f64,
    }

    impl<R: Rng + ?Sized> MultiProposal<f64, R> for WindowProposal {
        fn propose_set(&self, generator: &f64, n: usize, rng: &mut R) -> Vec<f64> {
            (0..n).map(|_| generator + self.half_width * (2.0 * rng.gen::<f64>() - 1.0)).collect()
        }
    }

    fn normal_log_weight(x: &f64) -> f64 {
        -0.5 * x * x
    }

    #[test]
    fn gmh_recovers_normal_moments() {
        let config = GmhConfig {
            proposals_per_iteration: 8,
            draws_per_iteration: 8,
            burn_in_draws: 2_000,
            sample_draws: 40_000,
        };
        let gmh = GeneralizedMetropolisHastings::new(
            WindowProposal { half_width: 3.0 },
            normal_log_weight,
            config,
        );
        let mut rng = Mt19937::new(101);
        let run = gmh.run(8.0, &mut rng);
        assert_eq!(run.samples.len(), 40_000);
        let mean: f64 = run.samples.iter().sum::<f64>() / run.samples.len() as f64;
        let var: f64 =
            run.samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / run.samples.len() as f64;
        assert!(mean.abs() < 0.1, "mean {mean}");
        assert!((var - 1.0).abs() < 0.15, "var {var}");
        assert!(run.move_rate() > 0.2);
        assert!(run.iterations > 0);
    }

    #[test]
    fn gmh_with_one_proposal_matches_metropolis_hastings_statistically() {
        // With N = 1, M = 1, GMH over {candidate, current} with weights
        // proportional to the target is the Barker variant of MH; both target
        // the same distribution, so their moments must agree.
        struct Walk(f64);
        impl<R: Rng + ?Sized> ProposalKernel<f64, R> for Walk {
            fn propose(&self, x: &f64, rng: &mut R) -> (f64, f64) {
                (x + self.0 * (2.0 * rng.gen::<f64>() - 1.0), 0.0)
            }
        }
        struct Normal;
        impl LogTarget<f64> for Normal {
            fn log_density(&self, x: &f64) -> f64 {
                -0.5 * x * x
            }
        }

        let config = GmhConfig {
            proposals_per_iteration: 1,
            draws_per_iteration: 1,
            burn_in_draws: 2_000,
            sample_draws: 40_000,
        };
        let gmh = GeneralizedMetropolisHastings::new(
            WindowProposal { half_width: 2.0 },
            normal_log_weight,
            config,
        );
        let mut rng = Mt19937::new(7);
        let grun = gmh.run(0.0, &mut rng);

        let mh = MetropolisHastings::new(Normal, Walk(2.0));
        let mut rng = Mt19937::new(7);
        let mrun = mh.run(0.0, 40_000, 2_000, 1, &mut rng);

        let gmean: f64 = grun.samples.iter().sum::<f64>() / grun.samples.len() as f64;
        let mmean: f64 = mrun.samples.iter().sum::<f64>() / mrun.samples.len() as f64;
        let gvar: f64 = grun.samples.iter().map(|x| (x - gmean).powi(2)).sum::<f64>()
            / grun.samples.len() as f64;
        let mvar: f64 = mrun.samples.iter().map(|x| (x - mmean).powi(2)).sum::<f64>()
            / mrun.samples.len() as f64;
        assert!((gmean - mmean).abs() < 0.1, "means differ: {gmean} vs {mmean}");
        assert!((gvar - mvar).abs() < 0.2, "variances differ: {gvar} vs {mvar}");
    }

    #[test]
    fn degenerate_weights_keep_the_generator() {
        struct Stuck;
        impl<R: Rng + ?Sized> MultiProposal<f64, R> for Stuck {
            fn propose_set(&self, g: &f64, n: usize, _rng: &mut R) -> Vec<f64> {
                vec![*g + 1.0; n]
            }
        }
        // All weights -inf: the chain must not move or panic.
        let config = GmhConfig {
            proposals_per_iteration: 4,
            draws_per_iteration: 4,
            burn_in_draws: 0,
            sample_draws: 20,
        };
        let gmh = GeneralizedMetropolisHastings::new(Stuck, |_: &f64| f64::NEG_INFINITY, config);
        let mut rng = Mt19937::new(3);
        let run = gmh.run(5.0, &mut rng);
        assert_eq!(run.samples.len(), 20);
        assert!(run.samples.iter().all(|&x| x == 5.0));
        assert_eq!(run.move_rate(), 0.0);
        assert_eq!(run.final_state, 5.0);
    }

    #[test]
    fn burn_in_draws_are_excluded_from_samples() {
        let config = GmhConfig {
            proposals_per_iteration: 4,
            draws_per_iteration: 4,
            burn_in_draws: 100,
            sample_draws: 60,
        };
        let gmh = GeneralizedMetropolisHastings::new(
            WindowProposal { half_width: 1.0 },
            normal_log_weight,
            config,
        );
        let mut rng = Mt19937::new(5);
        let run = gmh.run(0.0, &mut rng);
        assert_eq!(run.samples.len(), 60);
        assert_eq!(run.draws, 160);
        assert_eq!(run.trace.len(), 160);
        assert_eq!(run.trace.burn_in(), 100);
        assert_eq!(run.config_check(), 160);
    }

    impl<S> GmhRun<S> {
        fn config_check(&self) -> usize {
            self.draws
        }
    }

    #[test]
    fn empty_draws_move_rate_is_zero() {
        let run: GmhRun<f64> = GmhRun {
            samples: vec![],
            trace: Trace::default(),
            iterations: 0,
            moved: 0,
            draws: 0,
            final_state: 1.0,
        };
        assert_eq!(run.move_rate(), 0.0);
    }

    #[test]
    fn config_accessor_returns_configuration() {
        let config = GmhConfig::default();
        let gmh = GeneralizedMetropolisHastings::new(
            WindowProposal { half_width: 1.0 },
            normal_log_weight,
            config,
        );
        assert_eq!(gmh.config().proposals_per_iteration, 16);
    }
}
