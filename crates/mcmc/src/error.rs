//! Error type shared by the MCMC drivers.

use std::fmt;

/// Errors produced by the MCMC drivers and diagnostics.
#[derive(Debug, Clone, PartialEq)]
pub enum McmcError {
    /// A weight vector was empty or summed to zero (all `-inf` in log space).
    DegenerateWeights {
        /// Number of weights supplied.
        len: usize,
    },
    /// A chain was asked to run with an invalid schedule (e.g. zero samples).
    InvalidSchedule {
        /// Human-readable description of what was wrong.
        reason: String,
    },
    /// A diagnostic was requested on a trace that is too short to support it.
    InsufficientSamples {
        /// Samples available.
        available: usize,
        /// Samples required.
        required: usize,
    },
    /// A numeric argument was out of its valid domain.
    InvalidParameter {
        /// Parameter name.
        name: &'static str,
        /// Offending value.
        value: f64,
        /// Human-readable constraint.
        constraint: &'static str,
    },
}

impl fmt::Display for McmcError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            McmcError::DegenerateWeights { len } => {
                write!(f, "degenerate weight vector of length {len}: no finite mass")
            }
            McmcError::InvalidSchedule { reason } => write!(f, "invalid chain schedule: {reason}"),
            McmcError::InsufficientSamples { available, required } => write!(
                f,
                "insufficient samples for diagnostic: have {available}, need at least {required}"
            ),
            McmcError::InvalidParameter { name, value, constraint } => {
                write!(f, "invalid parameter {name}={value}: must satisfy {constraint}")
            }
        }
    }
}

impl std::error::Error for McmcError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats_are_informative() {
        let e = McmcError::DegenerateWeights { len: 3 };
        assert!(e.to_string().contains("length 3"));
        let e = McmcError::InvalidSchedule { reason: "zero samples".into() };
        assert!(e.to_string().contains("zero samples"));
        let e = McmcError::InsufficientSamples { available: 1, required: 10 };
        assert!(e.to_string().contains("have 1"));
        let e = McmcError::InvalidParameter { name: "theta", value: -1.0, constraint: "theta > 0" };
        assert!(e.to_string().contains("theta"));
    }

    #[test]
    fn error_is_std_error() {
        fn assert_err<E: std::error::Error>(_: &E) {}
        assert_err(&McmcError::DegenerateWeights { len: 0 });
    }
}
