//! Chain schedules and traces.
//!
//! A [`ChainSchedule`] describes how long a chain runs, how many of its first
//! transitions are discarded as burn-in (Section 2.3), and how aggressively
//! the post-burn-in states are thinned. A [`Trace`] stores scalar summaries
//! of the visited states for diagnostics and plotting (the burn-in trace of
//! Figure 2 is produced from one).

use crate::error::McmcError;

/// How a Markov chain run is scheduled: burn-in, retained samples, thinning.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChainSchedule {
    /// Number of initial transitions discarded (the burn-in period `B`).
    pub burn_in: usize,
    /// Number of samples retained after burn-in (`N`).
    pub samples: usize,
    /// Keep every `thinning`-th post-burn-in state (1 = keep all).
    pub thinning: usize,
}

impl ChainSchedule {
    /// Create a schedule, validating that it will produce at least one sample.
    pub fn new(burn_in: usize, samples: usize, thinning: usize) -> Result<Self, McmcError> {
        if samples == 0 {
            return Err(McmcError::InvalidSchedule { reason: "samples must be > 0".into() });
        }
        if thinning == 0 {
            return Err(McmcError::InvalidSchedule { reason: "thinning must be >= 1".into() });
        }
        Ok(ChainSchedule { burn_in, samples, thinning })
    }

    /// Total number of Markov transitions the schedule requires
    /// (`B + N * thinning`).
    pub fn total_transitions(&self) -> usize {
        self.burn_in + self.samples * self.thinning
    }

    /// The idealised parallel cost `B + N/P` of Section 3 / Figure 6 for the
    /// multi-chain work-around: each of `p` chains pays the full burn-in but
    /// only `N/P` of the sampling work.
    pub fn multichain_cost(&self, p: usize) -> f64 {
        assert!(p > 0, "processor count must be positive");
        self.burn_in as f64 + (self.samples * self.thinning) as f64 / p as f64
    }

    /// The idealised cost when the burn-in itself is parallelised, i.e. the
    /// generalized-MH scheme: `(B + N)/P`.
    pub fn parallel_burnin_cost(&self, p: usize) -> f64 {
        assert!(p > 0, "processor count must be positive");
        self.total_transitions() as f64 / p as f64
    }
}

impl Default for ChainSchedule {
    fn default() -> Self {
        ChainSchedule { burn_in: 1_000, samples: 10_000, thinning: 1 }
    }
}

/// A recorded trace of scalar chain statistics.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Trace {
    values: Vec<f64>,
    burn_in: usize,
}

impl Trace {
    /// Create an empty trace whose first `burn_in` recorded values belong to
    /// the burn-in period.
    pub fn with_burn_in(burn_in: usize) -> Self {
        Trace { values: Vec::new(), burn_in }
    }

    /// Create a trace directly from values (all treated as post-burn-in).
    pub fn from_values(values: Vec<f64>) -> Self {
        Trace { values, burn_in: 0 }
    }

    /// Record one value.
    pub fn push(&mut self, value: f64) {
        self.values.push(value);
    }

    /// All recorded values including burn-in.
    pub fn all(&self) -> &[f64] {
        &self.values
    }

    /// Values recorded after the burn-in boundary.
    pub fn post_burn_in(&self) -> &[f64] {
        if self.burn_in >= self.values.len() {
            &[]
        } else {
            &self.values[self.burn_in..]
        }
    }

    /// Number of recorded values.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether anything was recorded.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// The burn-in boundary.
    pub fn burn_in(&self) -> usize {
        self.burn_in
    }

    /// Re-declare where the burn-in boundary is (useful when it is determined
    /// post hoc from the trace itself).
    pub fn set_burn_in(&mut self, burn_in: usize) {
        self.burn_in = burn_in;
    }

    /// Mean of the post-burn-in values.
    pub fn mean(&self) -> Option<f64> {
        let xs = self.post_burn_in();
        if xs.is_empty() {
            None
        } else {
            Some(xs.iter().sum::<f64>() / xs.len() as f64)
        }
    }

    /// Unbiased sample variance of the post-burn-in values.
    pub fn variance(&self) -> Option<f64> {
        let xs = self.post_burn_in();
        if xs.len() < 2 {
            return None;
        }
        let mean = self.mean()?;
        Some(xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (xs.len() - 1) as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_validation() {
        assert!(ChainSchedule::new(10, 100, 1).is_ok());
        assert!(matches!(ChainSchedule::new(10, 0, 1), Err(McmcError::InvalidSchedule { .. })));
        assert!(matches!(ChainSchedule::new(10, 100, 0), Err(McmcError::InvalidSchedule { .. })));
    }

    #[test]
    fn schedule_transition_counts() {
        let s = ChainSchedule::new(100, 1_000, 2).unwrap();
        assert_eq!(s.total_transitions(), 100 + 2_000);
        let d = ChainSchedule::default();
        assert_eq!(d.total_transitions(), 11_000);
    }

    #[test]
    fn multichain_cost_reproduces_figure6_arithmetic() {
        // Figure 6: B = 4, N = 4. With P chains each pays B + N/P.
        let s = ChainSchedule::new(4, 4, 1).unwrap();
        assert_eq!(s.multichain_cost(1), 8.0);
        assert_eq!(s.multichain_cost(2), 6.0);
        assert_eq!(s.multichain_cost(4), 5.0);
        // Amdahl limit: cost tends to B as P grows.
        assert!((s.multichain_cost(1_000_000) - 4.0).abs() < 1e-3);
        // The generalized scheme keeps dividing.
        assert_eq!(s.parallel_burnin_cost(4), 2.0);
        assert!(s.parallel_burnin_cost(8) < s.multichain_cost(8));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn multichain_cost_rejects_zero_processors() {
        ChainSchedule::default().multichain_cost(0);
    }

    #[test]
    fn trace_burn_in_split() {
        let mut t = Trace::with_burn_in(3);
        for v in [10.0, 11.0, 12.0, 1.0, 2.0, 3.0] {
            t.push(v);
        }
        assert_eq!(t.len(), 6);
        assert!(!t.is_empty());
        assert_eq!(t.burn_in(), 3);
        assert_eq!(t.post_burn_in(), &[1.0, 2.0, 3.0]);
        assert_eq!(t.mean(), Some(2.0));
        assert_eq!(t.variance(), Some(1.0));
        assert_eq!(t.all().len(), 6);
    }

    #[test]
    fn trace_edge_cases() {
        let t = Trace::with_burn_in(5);
        assert!(t.is_empty());
        assert!(t.post_burn_in().is_empty());
        assert_eq!(t.mean(), None);
        assert_eq!(t.variance(), None);

        let mut t = Trace::from_values(vec![4.0]);
        assert_eq!(t.mean(), Some(4.0));
        assert_eq!(t.variance(), None);
        t.set_burn_in(1);
        assert_eq!(t.mean(), None);
    }
}
