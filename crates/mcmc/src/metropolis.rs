//! The standard (single-proposal) Metropolis–Hastings algorithm.
//!
//! This is the sampler at the heart of conventional LAMARC (Section 2.3 and
//! 4.2): a proposal kernel suggests a successor state, and it is accepted
//! with probability `min(1, r)` where `r` is the product of the target
//! density ratio and the Hastings correction for an asymmetric kernel. The
//! driver here is generic over the state type so it is reused both by the
//! toy targets in the unit tests and by the genealogy samplers in the
//! `lamarc` crate.

use rand::Rng;

use crate::chain::Trace;

/// A target distribution known up to a normalising constant, in log domain.
pub trait LogTarget<S> {
    /// Unnormalised log density of `state`.
    fn log_density(&self, state: &S) -> f64;
}

/// A proposal kernel for single-proposal Metropolis–Hastings.
pub trait ProposalKernel<S, R: Rng + ?Sized> {
    /// Propose a successor of `current`.
    ///
    /// Returns the proposal together with the log Hastings correction
    /// `ln q(current | proposal) − ln q(proposal | current)`; symmetric
    /// kernels (and kernels that propose from the prior so the correction
    /// cancels into the density ratio, as in Eq. 28) return `0.0`.
    fn propose(&self, current: &S, rng: &mut R) -> (S, f64);
}

/// Outcome of a Metropolis–Hastings run.
#[derive(Debug, Clone)]
pub struct MhRun<S> {
    /// Post-burn-in, thinned samples.
    pub samples: Vec<S>,
    /// Trace of the log target density at every transition (burn-in
    /// included), for diagnostics such as Figure 2.
    pub trace: Trace,
    /// Number of accepted transitions (burn-in included).
    pub accepted: usize,
    /// Total transitions attempted.
    pub attempted: usize,
    /// The final state of the chain (useful for seeding a follow-up chain).
    pub final_state: S,
}

impl<S> MhRun<S> {
    /// Fraction of proposals accepted.
    pub fn acceptance_rate(&self) -> f64 {
        if self.attempted == 0 {
            0.0
        } else {
            self.accepted as f64 / self.attempted as f64
        }
    }
}

/// The Metropolis–Hastings driver.
#[derive(Debug, Clone)]
pub struct MetropolisHastings<T, K> {
    target: T,
    kernel: K,
}

impl<T, K> MetropolisHastings<T, K> {
    /// Create a driver from a target distribution and a proposal kernel.
    pub fn new(target: T, kernel: K) -> Self {
        MetropolisHastings { target, kernel }
    }

    /// Access the target.
    pub fn target(&self) -> &T {
        &self.target
    }

    /// Access the kernel.
    pub fn kernel(&self) -> &K {
        &self.kernel
    }

    /// Run the chain.
    ///
    /// * `initial` — the starting state (its burn-in bias is what Section 2.3
    ///   is about).
    /// * `samples` — number of retained post-burn-in samples.
    /// * `burn_in` — number of discarded initial transitions.
    /// * `thinning` — keep every `thinning`-th post-burn-in state.
    pub fn run<S, R>(
        &self,
        initial: S,
        samples: usize,
        burn_in: usize,
        thinning: usize,
        rng: &mut R,
    ) -> MhRun<S>
    where
        S: Clone,
        T: LogTarget<S>,
        K: ProposalKernel<S, R>,
        R: Rng + ?Sized,
    {
        let thinning = thinning.max(1);
        let total = burn_in + samples * thinning;
        let mut current = initial;
        let mut current_logp = self.target.log_density(&current);
        let mut out = Vec::with_capacity(samples);
        let mut trace = Trace::with_burn_in(burn_in);
        let mut accepted = 0usize;

        for step in 0..total {
            let (proposal, log_hastings) = self.kernel.propose(&current, rng);
            let prop_logp = self.target.log_density(&proposal);
            let log_ratio = prop_logp - current_logp + log_hastings;
            let accept = log_ratio >= 0.0 || rng.gen::<f64>().ln() < log_ratio;
            if accept {
                current = proposal;
                current_logp = prop_logp;
                accepted += 1;
            }
            trace.push(current_logp);
            if step >= burn_in && (step - burn_in).is_multiple_of(thinning) {
                out.push(current.clone());
            }
        }

        MhRun { samples: out, trace, accepted, attempted: total, final_state: current }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Mt19937;

    /// A unit normal target.
    struct StdNormal;
    impl LogTarget<f64> for StdNormal {
        fn log_density(&self, x: &f64) -> f64 {
            -0.5 * x * x
        }
    }

    /// An exponential(1) target on x >= 0.
    struct Expo;
    impl LogTarget<f64> for Expo {
        fn log_density(&self, x: &f64) -> f64 {
            if *x < 0.0 {
                f64::NEG_INFINITY
            } else {
                -x
            }
        }
    }

    /// Symmetric random-walk kernel with the given half-width.
    struct Walk(f64);
    impl<R: Rng + ?Sized> ProposalKernel<f64, R> for Walk {
        fn propose(&self, current: &f64, rng: &mut R) -> (f64, f64) {
            (current + self.0 * (2.0 * rng.gen::<f64>() - 1.0), 0.0)
        }
    }

    /// An *asymmetric* kernel (multiplicative walk) with a proper Hastings
    /// correction, to exercise the correction path. The proposal is
    /// y = f·x with f ~ U(0.5, 1.5), so q(x→y) = 1/x over [x/2, 3x/2] and
    /// q(y→x) = 1/y when x is reachable from y (f ≥ 2/3), giving
    /// correction ln(x/y) = −ln f, and −∞ when the reverse move is impossible.
    struct MultWalk;
    impl<R: Rng + ?Sized> ProposalKernel<f64, R> for MultWalk {
        fn propose(&self, current: &f64, rng: &mut R) -> (f64, f64) {
            let factor = (0.5 + rng.gen::<f64>()).max(1e-9);
            let proposal = current.abs().max(1e-12) * factor;
            let correction = if factor >= 2.0 / 3.0 { -factor.ln() } else { f64::NEG_INFINITY };
            (proposal, correction)
        }
    }

    #[test]
    fn normal_target_moments_are_recovered() {
        let mut rng = Mt19937::new(17);
        let mh = MetropolisHastings::new(StdNormal, Walk(2.5));
        let run = mh.run(10.0, 20_000, 2_000, 1, &mut rng);
        let mean: f64 = run.samples.iter().sum::<f64>() / run.samples.len() as f64;
        let var: f64 =
            run.samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / run.samples.len() as f64;
        assert!(mean.abs() < 0.08, "mean {mean}");
        assert!((var - 1.0).abs() < 0.12, "variance {var}");
        assert!(run.acceptance_rate() > 0.1 && run.acceptance_rate() < 0.9);
        assert_eq!(run.attempted, 22_000);
        assert_eq!(run.trace.len(), 22_000);
    }

    #[test]
    fn exponential_target_mean_is_one() {
        let mut rng = Mt19937::new(23);
        let mh = MetropolisHastings::new(Expo, Walk(2.0));
        let run = mh.run(5.0, 30_000, 2_000, 1, &mut rng);
        let mean: f64 = run.samples.iter().sum::<f64>() / run.samples.len() as f64;
        assert!((mean - 1.0).abs() < 0.05, "mean {mean}");
        assert!(run.samples.iter().all(|&x| x >= 0.0));
    }

    #[test]
    fn asymmetric_kernel_with_hastings_correction_targets_exponential() {
        let mut rng = Mt19937::new(29);
        let mh = MetropolisHastings::new(Expo, MultWalk);
        let run = mh.run(1.0, 40_000, 4_000, 1, &mut rng);
        let mean: f64 = run.samples.iter().sum::<f64>() / run.samples.len() as f64;
        // The multiplicative walk mixes slowly in the tail; generous bound.
        assert!((mean - 1.0).abs() < 0.15, "mean {mean}");
    }

    #[test]
    fn thinning_reduces_sample_count_not_transitions() {
        let mut rng = Mt19937::new(31);
        let mh = MetropolisHastings::new(StdNormal, Walk(1.0));
        let run = mh.run(0.0, 100, 50, 5, &mut rng);
        assert_eq!(run.samples.len(), 100);
        assert_eq!(run.attempted, 50 + 500);
    }

    #[test]
    fn burn_in_removes_initialisation_bias() {
        // Start far from the mode; with no burn-in the sample mean is biased
        // toward the start, with burn-in it is not (Figure 2's point).
        let mh = MetropolisHastings::new(StdNormal, Walk(0.8));
        let mut rng = Mt19937::new(37);
        let biased = mh.run(40.0, 3_000, 0, 1, &mut rng);
        let mut rng = Mt19937::new(37);
        let unbiased = mh.run(40.0, 3_000, 2_000, 1, &mut rng);
        let mean_b: f64 = biased.samples.iter().sum::<f64>() / biased.samples.len() as f64;
        let mean_u: f64 = unbiased.samples.iter().sum::<f64>() / unbiased.samples.len() as f64;
        assert!(mean_b.abs() > 0.4, "expected visible bias, got {mean_b}");
        assert!(mean_u.abs() < 0.25, "expected burn-in to remove bias, got {mean_u}");
    }

    #[test]
    fn zero_attempts_acceptance_rate_is_zero() {
        let run: MhRun<f64> = MhRun {
            samples: vec![],
            trace: Trace::default(),
            accepted: 0,
            attempted: 0,
            final_state: 0.0,
        };
        assert_eq!(run.acceptance_rate(), 0.0);
    }

    #[test]
    fn accessors_expose_parts() {
        let mh = MetropolisHastings::new(StdNormal, Walk(1.0));
        let _t: &StdNormal = mh.target();
        let _k: &Walk = mh.kernel();
    }
}
