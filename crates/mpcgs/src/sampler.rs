//! The multi-proposal (Generalized Metropolis–Hastings) genealogy sampler
//! (Sections 4.3, 5.1.4 and 5.2).
//!
//! Each iteration mirrors the paper's kernel structure (Figure 12):
//!
//! 1. The host draws the auxiliary variable φ — a target interior node —
//!    uniformly (Section 4.3), exactly as the original samples it with the
//!    host MT19937.
//! 2. The *proposal kernel*: `N` independent proposals are generated from the
//!    generator genealogy by resimulating the same φ-neighborhood, one
//!    logical thread per proposal, each with its own decorrelated RNG stream
//!    (the MTGP32 substitute). Because every proposal differs from every
//!    other only inside the φ-neighborhood, all members of the set can
//!    mutually propose one another — the property Section 4.3 needs.
//! 3. The *data likelihood kernel*: `ln P(D|G̃_i)` is evaluated for every
//!    member of the set (site-parallel inside the engine, proposal-parallel
//!    across the set).
//! 4. The index chain is sampled `M` times from the stationary weights
//!    `w_i ∝ P(D|G̃_i)` (Eq. 31) using a log-domain categorical draw; each
//!    draw is an output sample, stored as its coalescent-interval summary.
//! 5. The last drawn state becomes the generator for the next iteration.

use exec::Backend;
use mcmc::chain::Trace;
use mcmc::logdomain::log_sum_exp;
use mcmc::rng::dist::log_categorical;
use mcmc::rng::StreamBank;
use rand::Rng;

use lamarc::proposal::GenealogyProposer;
use lamarc::sampler::GenealogySample;
use lamarc::target::GenealogyTarget;
use phylo::likelihood::{LikelihoodEngine, TreeProposal};
use phylo::{GeneTree, NodeId, PhyloError};

use crate::config::MpcgsConfig;

/// Work counters collected during a run (consumed by the performance model
/// and the bench harnesses).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GmhRunStats {
    /// Generalized-MH iterations (proposal-set constructions).
    pub iterations: usize,
    /// Proposals generated.
    pub proposals_generated: usize,
    /// Data-likelihood evaluations performed.
    pub likelihood_evaluations: usize,
    /// Index draws performed.
    pub draws: usize,
    /// Draws whose sampled index differed from the generator.
    pub moved: usize,
    /// Interior nodes recomputed along dirty paths by the batched likelihood
    /// engine (one path per proposal evaluation).
    pub nodes_repruned: usize,
    /// Interior nodes recomputed by full prunes (generator workspace builds
    /// on cache misses).
    pub nodes_full_pruned: usize,
    /// Iterations whose generator workspace was served from the engine's
    /// cache (the generator was unchanged since the previous iteration).
    pub generator_cache_hits: usize,
}

impl GmhRunStats {
    /// Fraction of draws that moved away from the generator state (the
    /// multi-proposal analogue of an acceptance rate).
    pub fn move_rate(&self) -> f64 {
        if self.draws == 0 {
            0.0
        } else {
            self.moved as f64 / self.draws as f64
        }
    }

    /// Interior-node recomputations actually performed per likelihood
    /// evaluation (dirty paths plus amortised generator rebuilds).
    pub fn nodes_pruned_per_evaluation(&self) -> f64 {
        if self.likelihood_evaluations == 0 {
            0.0
        } else {
            (self.nodes_repruned + self.nodes_full_pruned) as f64
                / self.likelihood_evaluations as f64
        }
    }
}

/// The outcome of one multi-proposal chain run.
#[derive(Debug, Clone)]
pub struct MultiProposalSamplerRun {
    /// Retained post-burn-in samples (interval summaries plus data
    /// likelihoods).
    pub samples: Vec<GenealogySample>,
    /// Trace of `ln P(D|G)` of the sampled state at every draw, burn-in
    /// included.
    pub trace: Trace,
    /// Work counters.
    pub stats: GmhRunStats,
    /// The final generator genealogy.
    pub final_tree: GeneTree,
}

/// The multi-proposal sampler bound to a likelihood engine and a driving θ.
#[derive(Debug, Clone)]
pub struct MultiProposalSampler<E> {
    target: GenealogyTarget<E>,
    proposer: GenealogyProposer,
    config: MpcgsConfig,
    streams: StreamBank,
}

impl<E: LikelihoodEngine> MultiProposalSampler<E> {
    /// Create a sampler. The driving θ is taken from `config.initial_theta`
    /// unless overridden with [`MultiProposalSampler::with_theta`].
    pub fn new(engine: E, config: MpcgsConfig) -> Result<Self, PhyloError> {
        config.validate()?;
        Self::build(engine, config, config.initial_theta)
    }

    /// Create a sampler with an explicit driving θ (used by the EM driver on
    /// iterations after the first).
    pub fn with_theta(engine: E, config: MpcgsConfig, theta: f64) -> Result<Self, PhyloError> {
        config.validate()?;
        Self::build(engine, config, theta)
    }

    fn build(engine: E, config: MpcgsConfig, theta: f64) -> Result<Self, PhyloError> {
        let target = GenealogyTarget::new(engine, theta)?;
        let proposer = GenealogyProposer::with_config(theta, config.proposal)?;
        let streams = StreamBank::new(config.stream_seed, config.proposals_per_iteration);
        Ok(MultiProposalSampler { target, proposer, config, streams })
    }

    /// The driving θ.
    pub fn theta(&self) -> f64 {
        self.target.theta()
    }

    /// The configuration.
    pub fn config(&self) -> &MpcgsConfig {
        &self.config
    }

    /// Run the chain from the given starting genealogy. The host RNG drives
    /// the auxiliary variable φ and the index draws; the per-proposal streams
    /// are derived deterministically from the configured stream seed.
    pub fn run<R: Rng + ?Sized>(
        &self,
        initial: GeneTree,
        rng: &mut R,
    ) -> Result<MultiProposalSamplerRun, PhyloError> {
        let n_proposals = self.config.proposals_per_iteration;
        let m_draws = self.config.draws_per_iteration.max(1);
        let total_draws = self.config.total_draws();
        let backend: Backend = self.config.backend;

        let mut generator = initial;
        let mut samples = Vec::with_capacity(self.config.sample_draws);
        let mut trace = Trace::with_burn_in(self.config.burn_in_draws);
        let mut stats = GmhRunStats::default();

        let mut draws_done = 0usize;
        let mut epoch = 0u64;
        while draws_done < total_draws {
            epoch += 1;
            stats.iterations += 1;

            // Step 1: the auxiliary variable φ (host RNG).
            let phi = self.proposer.sample_target(&generator, rng);

            // Step 2: the proposal kernel. One logical thread per proposal;
            // each thread owns a detached RNG stream and reports the edited
            // φ-neighborhood alongside the proposed tree.
            let generator_ref = &generator;
            let proposer = &self.proposer;
            let streams = &self.streams;
            let set: Vec<(GeneTree, Vec<NodeId>)> = backend.map_indexed(n_proposals, move |slot| {
                let mut stream = streams.detached(epoch, slot);
                proposer.propose_with_edit(generator_ref, phi, &mut stream)
            });

            // Step 3: the data-likelihood kernel, batched: the whole proposal
            // set is scored against the generator in one call. The engine
            // reuses the generator's cached partials for everything outside
            // each proposal's dirty path, and the generator workspace itself
            // is memoised across iterations whose generator did not move.
            let proposal_refs: Vec<TreeProposal<'_>> =
                set.iter().map(|(tree, edited)| TreeProposal { tree, edited }).collect();
            let eval =
                self.target.log_data_likelihood_batch(backend, &generator, &proposal_refs)?;
            drop(proposal_refs);
            let generator_loglik = eval.generator_log_likelihood;
            stats.proposals_generated += n_proposals;
            stats.likelihood_evaluations += n_proposals;
            stats.nodes_repruned += eval.nodes_repruned;
            stats.nodes_full_pruned += eval.nodes_full_pruned;
            stats.generator_cache_hits += eval.generator_cache_hit as usize;
            // The generator joins the set with its cached likelihood.
            let generator_index = set.len();
            let mut log_weights: Vec<f64> = eval.log_likelihoods.clone();
            log_weights.push(generator_loglik);
            let usable = log_sum_exp(&log_weights).is_finite();

            // Step 4: sample the index chain M times.
            let mut last_index = generator_index;
            for _ in 0..m_draws {
                if draws_done >= total_draws {
                    break;
                }
                let idx = if usable {
                    log_categorical(rng, &log_weights).unwrap_or(generator_index)
                } else {
                    generator_index
                };
                if idx != generator_index {
                    stats.moved += 1;
                }
                let (tree, loglik) = if idx == generator_index {
                    (&generator, generator_loglik)
                } else {
                    (&set[idx].0, eval.log_likelihoods[idx])
                };
                trace.push(loglik);
                if draws_done >= self.config.burn_in_draws {
                    samples.push(GenealogySample {
                        intervals: tree.intervals(),
                        log_data_likelihood: loglik,
                    });
                }
                stats.draws += 1;
                draws_done += 1;
                last_index = idx;
            }

            // Step 5: the last sample generates the next proposal set.
            if last_index != generator_index {
                let mut set = set;
                generator = set.swap_remove(last_index).0;
            }
        }

        Ok(MultiProposalSamplerRun { samples, trace, stats, final_tree: generator })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use coalescent::{CoalescentSimulator, KingmanPrior, SequenceSimulator};
    use lamarc::sampler::{LamarcSampler, SamplerConfig};
    use mcmc::diagnostics::Summary;
    use mcmc::rng::Mt19937;
    use phylo::model::{Jc69, F81};
    use phylo::{upgma_tree, Alignment, FelsensteinPruner};

    fn simulated_alignment(rng: &mut Mt19937, n: usize, sites: usize, theta: f64) -> Alignment {
        let tree = CoalescentSimulator::constant(theta).unwrap().simulate(rng, n).unwrap();
        SequenceSimulator::new(Jc69::new(), sites, 1.0).unwrap().simulate(rng, &tree).unwrap()
    }

    fn small_config() -> MpcgsConfig {
        MpcgsConfig {
            initial_theta: 1.0,
            proposals_per_iteration: 8,
            draws_per_iteration: 8,
            burn_in_draws: 40,
            sample_draws: 400,
            backend: Backend::Serial,
            ..Default::default()
        }
    }

    #[test]
    fn run_produces_the_requested_draws_and_valid_trees() {
        let mut rng = Mt19937::new(71);
        let alignment = simulated_alignment(&mut rng, 6, 60, 1.0);
        let engine = FelsensteinPruner::new(&alignment, Jc69::new());
        let sampler = MultiProposalSampler::new(engine, small_config()).unwrap();
        let initial = upgma_tree(&alignment, 1.0).unwrap();
        let run = sampler.run(initial, &mut rng).unwrap();
        assert_eq!(run.samples.len(), 400);
        assert_eq!(run.stats.draws, 440);
        assert_eq!(run.trace.len(), 440);
        assert_eq!(run.stats.iterations, 55);
        assert_eq!(run.stats.proposals_generated, 55 * 8);
        assert_eq!(run.stats.likelihood_evaluations, 55 * 8);
        assert!(run.stats.move_rate() > 0.0);
        // Dirty-path caching: every proposal evaluation reprunes only the
        // edited neighborhood's path to the root, never the whole tree, and
        // the average per-evaluation work (including generator rebuilds)
        // stays below a full prune.
        let n_internal = run.final_tree.n_internal();
        assert!(run.stats.nodes_repruned > 0);
        assert!(run.stats.nodes_repruned < run.stats.likelihood_evaluations * n_internal);
        assert!(run.stats.nodes_full_pruned >= n_internal);
        assert!(run.stats.nodes_pruned_per_evaluation() < n_internal as f64);
        run.final_tree.validate().unwrap();
        assert_eq!(sampler.theta(), 1.0);
        assert_eq!(sampler.config().proposals_per_iteration, 8);
    }

    #[test]
    fn rayon_backend_matches_serial_backend_statistically() {
        // The two backends use identical RNG streams for the proposals, so
        // the proposal sets are identical; only the host draws differ in
        // timing. Run both and compare summary statistics of the sampled
        // tree depths.
        let mut rng = Mt19937::new(73);
        let alignment = simulated_alignment(&mut rng, 5, 50, 1.0);
        let engine = FelsensteinPruner::new(&alignment, Jc69::new());
        let initial = upgma_tree(&alignment, 1.0).unwrap();

        let serial_cfg = small_config();
        let rayon_cfg = MpcgsConfig { backend: Backend::Rayon, ..small_config() };

        let mut rng_a = Mt19937::new(1234);
        let run_a = MultiProposalSampler::new(engine.clone(), serial_cfg)
            .unwrap()
            .run(initial.clone(), &mut rng_a)
            .unwrap();
        let mut rng_b = Mt19937::new(1234);
        let run_b =
            MultiProposalSampler::new(engine, rayon_cfg).unwrap().run(initial, &mut rng_b).unwrap();

        // Identical seeds and identical deterministic streams: the outputs
        // must match exactly, which also proves the backend does not change
        // the sampled distribution.
        let depths_a: Vec<f64> = run_a.samples.iter().map(|s| s.intervals.depth()).collect();
        let depths_b: Vec<f64> = run_b.samples.iter().map(|s| s.intervals.depth()).collect();
        assert_eq!(depths_a, depths_b);
    }

    #[test]
    fn flat_data_recovers_the_coalescent_prior() {
        // With a single invariant site the weights are almost flat, so the
        // sampler explores (approximately) the prior; the mean sampled depth
        // must be near the Kingman expectation — the multi-proposal analogue
        // of the baseline sampler's prior-recovery test.
        let mut rng = Mt19937::new(79);
        let alignment =
            Alignment::from_letters(&[("1", "A"), ("2", "A"), ("3", "A"), ("4", "A"), ("5", "A")])
                .unwrap();
        let theta = 1.0;
        let engine = FelsensteinPruner::new(&alignment, Jc69::new());
        let config = MpcgsConfig {
            initial_theta: theta,
            proposals_per_iteration: 8,
            draws_per_iteration: 8,
            burn_in_draws: 400,
            sample_draws: 4_000,
            backend: Backend::Serial,
            ..Default::default()
        };
        let sampler = MultiProposalSampler::new(engine, config).unwrap();
        let initial = CoalescentSimulator::constant(theta)
            .unwrap()
            .simulate_labelled(
                &mut rng,
                &["1", "2", "3", "4", "5"].iter().map(|s| s.to_string()).collect::<Vec<_>>(),
            )
            .unwrap();
        let run = sampler.run(initial, &mut rng).unwrap();
        let depths: Vec<f64> = run.samples.iter().map(|s| s.intervals.depth()).collect();
        let mean_depth = Summary::of(&depths).unwrap().mean;
        let expected = KingmanPrior::new(theta).unwrap().expected_tmrca(5);
        assert!(
            (mean_depth / expected - 1.0).abs() < 0.35,
            "mean sampled depth {mean_depth} vs prior expectation {expected}"
        );
        assert!(run.stats.move_rate() > 0.5, "flat weights should move freely");
    }

    #[test]
    fn gmh_and_baseline_sample_the_same_posterior() {
        // The headline correctness property (Section 6.1): the multi-proposal
        // sampler must target the same posterior as the single-proposal
        // baseline. Compare the mean sampled tree depth of the two samplers
        // on the same data and driving value.
        let mut rng = Mt19937::new(83);
        let alignment = simulated_alignment(&mut rng, 6, 100, 1.0);
        let engine =
            FelsensteinPruner::new(&alignment, F81::normalized(alignment.base_frequencies()));
        let initial = upgma_tree(&alignment, 1.0).unwrap();

        let gmh_config = MpcgsConfig {
            initial_theta: 1.0,
            proposals_per_iteration: 8,
            draws_per_iteration: 8,
            burn_in_draws: 400,
            sample_draws: 3_000,
            backend: Backend::Serial,
            ..Default::default()
        };
        let gmh = MultiProposalSampler::new(engine.clone(), gmh_config).unwrap();
        let gmh_run = gmh.run(initial.clone(), &mut rng).unwrap();

        let baseline_config = SamplerConfig {
            theta: 1.0,
            burn_in: 400,
            samples: 3_000,
            thinning: 1,
            proposal: Default::default(),
        };
        let baseline = LamarcSampler::new(engine, baseline_config).unwrap();
        let baseline_run = baseline.run(initial, &mut rng).unwrap();

        let gmh_depths: Vec<f64> = gmh_run.samples.iter().map(|s| s.intervals.depth()).collect();
        let base_depths: Vec<f64> =
            baseline_run.samples.iter().map(|s| s.intervals.depth()).collect();
        let gmh_mean = Summary::of(&gmh_depths).unwrap().mean;
        let base_mean = Summary::of(&base_depths).unwrap().mean;
        assert!(
            (gmh_mean / base_mean - 1.0).abs() < 0.2,
            "mean depths disagree: GMH {gmh_mean} vs baseline {base_mean}"
        );
    }

    #[test]
    fn invalid_configurations_are_rejected() {
        let mut rng = Mt19937::new(89);
        let alignment = simulated_alignment(&mut rng, 4, 40, 1.0);
        let engine = FelsensteinPruner::new(&alignment, Jc69::new());
        let bad = MpcgsConfig { proposals_per_iteration: 0, ..small_config() };
        assert!(MultiProposalSampler::new(engine.clone(), bad).is_err());
        let bad_theta = MpcgsConfig { initial_theta: -1.0, ..small_config() };
        assert!(MultiProposalSampler::new(engine.clone(), bad_theta).is_err());
        assert!(MultiProposalSampler::with_theta(engine, small_config(), 0.0).is_err());
    }

    #[test]
    fn stats_move_rate_handles_zero_draws() {
        assert_eq!(GmhRunStats::default().move_rate(), 0.0);
    }
}
