//! The multi-proposal (Generalized Metropolis–Hastings) genealogy sampler
//! (Sections 4.3, 5.1.4 and 5.2).
//!
//! Each iteration mirrors the paper's kernel structure (Figure 12):
//!
//! 1. The host draws the auxiliary variable φ — a target interior node —
//!    uniformly (Section 4.3), exactly as the original samples it with the
//!    host MT19937.
//! 2. The *proposal kernel*: `N` independent proposals are generated from the
//!    generator genealogy by resimulating the same φ-neighborhood, one
//!    logical thread per proposal, each with its own decorrelated RNG stream
//!    (the MTGP32 substitute). Because every proposal differs from every
//!    other only inside the φ-neighborhood, all members of the set can
//!    mutually propose one another — the property Section 4.3 needs.
//! 3. The *data likelihood kernel*: `ln P(D|G̃_i)` is evaluated for every
//!    member of the set (site-parallel inside the engine, proposal-parallel
//!    across the set).
//! 4. The index chain is sampled `M` times from the stationary weights
//!    `w_i ∝ P(D|G̃_i)` (Eq. 31) using a log-domain categorical draw; each
//!    draw is an output sample, stored as its coalescent-interval summary.
//! 5. The last drawn state becomes the generator for the next iteration —
//!    and is *committed* into the likelihood engine's cached workspace along
//!    its dirty path, so a moved generator costs O(path) instead of a full
//!    re-prune at the next iteration.
//!
//! The sampler is the second [`GenealogySampler`] strategy: one
//! [`GenealogySampler::step`] is one whole proposal-set iteration, and a full
//! run produces the same unified [`RunReport`] as the baseline.

use exec::Backend;
use mcmc::chain::Trace;
use mcmc::logdomain::log_sum_exp;
use mcmc::rng::dist::log_categorical;
use mcmc::rng::StreamBank;
use rand::RngCore;

use lamarc::proposal::GenealogyProposer;
use lamarc::run::{
    no_active_chain, ChainInfo, ChainSnapshot, GenealogySampler, RunCounters, RunReport, StepReport,
};
use lamarc::sampler::GenealogySample;
use lamarc::target::GenealogyTarget;
use phylo::likelihood::{LikelihoodEngine, TreeProposal};
use phylo::{GeneTree, NodeId, PhyloError};

use crate::config::MpcgsConfig;

/// In-flight chain state between `begin()` and `finish()`.
#[derive(Debug, Clone)]
struct GmhChain {
    generator: GeneTree,
    trace: Trace,
    samples: Vec<GenealogySample>,
    counters: RunCounters,
    draws_done: usize,
    /// `ln P(D|G)` of a generator installed by `replace_state` (replica
    /// exchange), reported by the read-back surface until the next
    /// iteration recomputes the likelihood itself.
    swapped_loglik: Option<f64>,
}

/// The multi-proposal sampler bound to a likelihood engine and a driving θ.
#[derive(Debug, Clone)]
pub struct MultiProposalSampler<E> {
    target: GenealogyTarget<E>,
    proposer: GenealogyProposer,
    config: MpcgsConfig,
    streams: StreamBank,
    /// Monotone epoch for the detached per-proposal streams. Deliberately
    /// *not* reset by `begin()`: a sampler reused across chains must keep
    /// drawing fresh stream epochs, or the chains would replay identical
    /// proposal sets and be silently correlated.
    epoch: u64,
    chain: Option<GmhChain>,
}

impl<E: LikelihoodEngine> MultiProposalSampler<E> {
    /// Create a sampler. The driving θ is taken from `config.initial_theta`
    /// unless overridden with [`MultiProposalSampler::with_theta`].
    pub fn new(engine: E, config: MpcgsConfig) -> Result<Self, PhyloError> {
        config.validate()?;
        Self::build(engine, config, config.initial_theta)
    }

    /// Create a sampler with an explicit driving θ (used by the EM driver on
    /// iterations after the first).
    pub fn with_theta(engine: E, config: MpcgsConfig, theta: f64) -> Result<Self, PhyloError> {
        config.validate()?;
        Self::build(engine, config, theta)
    }

    fn build(engine: E, config: MpcgsConfig, theta: f64) -> Result<Self, PhyloError> {
        let target = GenealogyTarget::new(engine, theta)?;
        let proposer = GenealogyProposer::with_config(theta, config.proposal)?;
        let streams = StreamBank::new(config.stream_seed, config.proposals_per_iteration);
        Ok(MultiProposalSampler { target, proposer, config, streams, epoch: 0, chain: None })
    }

    /// The driving θ.
    pub fn theta(&self) -> f64 {
        self.target.theta()
    }

    /// Temper the sampler's target with inverse temperature `beta` (β = 1/T):
    /// the index chain's stationary weights become `w_i ∝ P(D|G̃_i)^β` — the
    /// heated-rung target of a replica-exchange ensemble. β = 1 is
    /// bit-identical to the untempered sampler.
    pub fn with_inverse_temperature(mut self, beta: f64) -> Result<Self, PhyloError> {
        self.target = self.target.with_inverse_temperature(beta)?;
        Ok(self)
    }

    /// The configuration.
    pub fn config(&self) -> &MpcgsConfig {
        &self.config
    }

    /// One Generalized-MH iteration: build a proposal set, batch-score it,
    /// sample the index chain `M` times, and commit the last drawn state.
    fn gmh_iteration(&mut self, rng: &mut dyn RngCore) -> Result<StepReport, PhyloError> {
        let n_proposals = self.config.proposals_per_iteration;
        let m_draws = self.config.draws_per_iteration.max(1);
        let total_draws = self.config.total_draws();
        let backend: Backend = self.config.backend;
        if self.chain.is_none() {
            return Err(no_active_chain());
        }
        self.epoch += 1;
        let epoch = self.epoch;
        let chain = self.chain.as_mut().expect("checked above");
        chain.counters.iterations += 1;
        // A swapped-in generator's likelihood is recomputed below (the
        // engine cache misses on the new tree), so the override expires
        // here.
        chain.swapped_loglik = None;

        // Step 1: the auxiliary variable φ (host RNG).
        let phi = self.proposer.sample_target(&chain.generator, rng);

        // Step 2: the proposal kernel. One logical thread per proposal; each
        // thread owns a detached RNG stream and reports the edited
        // φ-neighborhood alongside the proposed tree.
        let set: Vec<(GeneTree, Vec<NodeId>)> = {
            let generator_ref = &chain.generator;
            let proposer = &self.proposer;
            let streams = &self.streams;
            backend.map_indexed(n_proposals, move |slot| {
                let mut stream = streams.detached(epoch, slot);
                proposer.propose_with_edit(generator_ref, phi, &mut stream)
            })
        };

        // Step 3: the data-likelihood kernel, batched: the whole proposal set
        // is scored against the generator in one call. The engine reuses the
        // generator's cached partials for everything outside each proposal's
        // dirty path, and the generator workspace itself is memoised across
        // iterations (unchanged generators hit the cache; moved generators
        // are committed in step 5).
        let proposal_refs: Vec<TreeProposal<'_>> =
            set.iter().map(|(tree, edited)| TreeProposal { tree, edited }).collect();
        let eval =
            self.target.log_data_likelihood_batch(backend, &chain.generator, &proposal_refs)?;
        drop(proposal_refs);
        let generator_loglik = eval.generator_log_likelihood;
        chain.counters.proposals_generated += n_proposals;
        chain.counters.likelihood_evaluations += n_proposals;
        chain.counters.nodes_repruned += eval.nodes_repruned;
        chain.counters.nodes_full_pruned += eval.nodes_full_pruned;
        chain.counters.generator_cache_hits += eval.generator_cache_hit as usize;
        chain.counters.matrix_cache_hits += eval.matrix_cache_hits;
        chain.counters.matrix_cache_misses += eval.matrix_cache_misses;
        // The generator joins the set with its cached likelihood. Selection
        // runs under the (possibly tempered) target — `w_i ∝ P(D|G̃_i)^β`,
        // i.e. log weights scaled by β — while traces and samples record the
        // untempered ln P(D|G̃_i). β = 1 multiplies by 1.0, which is
        // bit-identical to the untempered sampler.
        let beta = self.target.beta();
        let generator_index = set.len();
        let mut log_weights: Vec<f64> =
            eval.log_likelihoods.iter().map(|&loglik| beta * loglik).collect();
        log_weights.push(beta * generator_loglik);
        let usable = log_sum_exp(&log_weights).is_finite();

        // Step 4: sample the index chain M times.
        let mut last_index = generator_index;
        let mut last_loglik = generator_loglik;
        for _ in 0..m_draws {
            if chain.draws_done >= total_draws {
                break;
            }
            let idx = if usable {
                log_categorical(rng, &log_weights).unwrap_or(generator_index)
            } else {
                generator_index
            };
            if idx != generator_index {
                chain.counters.accepted += 1;
            }
            let (tree, loglik) = if idx == generator_index {
                (&chain.generator, generator_loglik)
            } else {
                (&set[idx].0, eval.log_likelihoods[idx])
            };
            chain.trace.push(loglik);
            if chain.draws_done >= self.config.burn_in_draws {
                chain.samples.push(GenealogySample {
                    intervals: tree.intervals(),
                    log_data_likelihood: loglik,
                });
            }
            chain.counters.draws += 1;
            chain.draws_done += 1;
            last_index = idx;
            last_loglik = loglik;
        }

        // Step 5: the last sample generates the next proposal set. Commit it
        // into the engine's cached workspace so the move costs one dirty path
        // rather than a full generator rebuild next iteration.
        if last_index != generator_index {
            let (accepted, edited) = &set[last_index];
            if let Some(nodes) =
                self.target.engine().commit_accepted(&chain.generator, accepted, edited)?
            {
                chain.counters.workspace_commits += 1;
                chain.counters.nodes_committed += nodes;
            }
            let mut set = set;
            chain.generator = set.swap_remove(last_index).0;
        }

        Ok(StepReport {
            draws_done: chain.draws_done,
            total_draws,
            burn_in_draws: self.config.burn_in_draws,
            log_likelihood: last_loglik,
        })
    }
}

impl<E: LikelihoodEngine> GenealogySampler for MultiProposalSampler<E> {
    fn strategy(&self) -> &'static str {
        "gmh"
    }

    fn chain_info(&self) -> ChainInfo {
        ChainInfo {
            strategy: self.strategy(),
            theta: self.theta(),
            burn_in_draws: self.config.burn_in_draws,
            total_draws: self.config.total_draws(),
            chain_index: 0,
        }
    }

    fn begin(&mut self, initial: GeneTree) -> Result<(), PhyloError> {
        // Note: `self.epoch` carries over, so chains run back to back on one
        // sampler draw from disjoint stream epochs.
        self.chain = Some(GmhChain {
            generator: initial,
            trace: Trace::with_burn_in(self.config.burn_in_draws),
            samples: Vec::with_capacity(self.config.sample_draws),
            counters: RunCounters::default(),
            draws_done: 0,
            swapped_loglik: None,
        });
        Ok(())
    }

    fn is_done(&self) -> bool {
        self.chain.as_ref().is_none_or(|chain| chain.draws_done >= self.config.total_draws())
    }

    fn step(&mut self, rng: &mut dyn RngCore) -> Result<StepReport, PhyloError> {
        self.gmh_iteration(rng)
    }

    fn current_state(&self) -> Option<(GeneTree, f64)> {
        let chain = self.chain.as_ref()?;
        // A freshly swapped-in generator carries its own likelihood;
        // otherwise the generator is the last drawn state and the last trace
        // entry is its ln P(D|G) (before the first iteration there is
        // nothing to report).
        let loglik = chain.swapped_loglik.or_else(|| chain.trace.all().last().copied())?;
        Some((chain.generator.clone(), loglik))
    }

    fn current_log_likelihood(&self) -> Option<f64> {
        let chain = self.chain.as_ref()?;
        chain.swapped_loglik.or_else(|| chain.trace.all().last().copied())
    }

    fn replace_state(&mut self, tree: GeneTree, log_likelihood: f64) -> Result<(), PhyloError> {
        let chain = self.chain.as_mut().ok_or_else(no_active_chain)?;
        // The engine's memoised generator workspace now describes the old
        // generator; the next iteration's batch detects the mismatch and
        // repays one full prune.
        chain.generator = tree;
        chain.swapped_loglik = Some(log_likelihood);
        Ok(())
    }

    fn export_chain(&self) -> Option<ChainSnapshot> {
        let chain = self.chain.as_ref()?;
        Some(ChainSnapshot {
            tree: chain.generator.clone(),
            trace_values: chain.trace.all().to_vec(),
            trace_burn_in: chain.trace.burn_in(),
            samples: chain.samples.clone(),
            counters: chain.counters,
            draws_done: chain.draws_done,
            swapped_loglik: chain.swapped_loglik,
            stream_epoch: self.epoch,
            engine_cache_tree: self.target.engine().cached_generator(),
        })
    }

    fn import_chain(&mut self, snapshot: ChainSnapshot) -> Result<(), PhyloError> {
        // Prime the engine with the tree its workspace was keyed to at
        // snapshot time (possibly not `snapshot.tree` after a replica
        // exchange), so cache-hit/miss counters replay identically.
        self.target.engine().prime_cache(snapshot.engine_cache_tree.as_ref())?;
        self.epoch = snapshot.stream_epoch;
        let mut trace = Trace::from_values(snapshot.trace_values);
        trace.set_burn_in(snapshot.trace_burn_in);
        self.chain = Some(GmhChain {
            generator: snapshot.tree,
            trace,
            samples: snapshot.samples,
            counters: snapshot.counters,
            draws_done: snapshot.draws_done,
            swapped_loglik: snapshot.swapped_loglik,
        });
        Ok(())
    }

    fn finish(&mut self) -> Result<RunReport, PhyloError> {
        let chain = self.chain.take().ok_or_else(no_active_chain)?;
        Ok(RunReport {
            samples: chain.samples,
            trace: chain.trace,
            counters: chain.counters,
            final_tree: chain.generator,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use coalescent::{CoalescentSimulator, KingmanPrior, SequenceSimulator};
    use lamarc::run::NullObserver;
    use lamarc::sampler::{LamarcSampler, SamplerConfig};
    use mcmc::diagnostics::Summary;
    use mcmc::rng::Mt19937;
    use phylo::model::{Jc69, F81};
    use phylo::{upgma_tree, Alignment, FelsensteinPruner};

    fn simulated_alignment(rng: &mut Mt19937, n: usize, sites: usize, theta: f64) -> Alignment {
        let tree = CoalescentSimulator::constant(theta).unwrap().simulate(rng, n).unwrap();
        SequenceSimulator::new(Jc69::new(), sites, 1.0).unwrap().simulate(rng, &tree).unwrap()
    }

    fn small_config() -> MpcgsConfig {
        MpcgsConfig {
            initial_theta: 1.0,
            proposals_per_iteration: 8,
            draws_per_iteration: 8,
            burn_in_draws: 40,
            sample_draws: 400,
            backend: Backend::Serial,
            ..Default::default()
        }
    }

    #[test]
    fn run_produces_the_requested_draws_and_valid_trees() {
        let mut rng = Mt19937::new(71);
        let alignment = simulated_alignment(&mut rng, 6, 60, 1.0);
        let engine = FelsensteinPruner::new(&alignment, Jc69::new());
        let mut sampler = MultiProposalSampler::new(engine, small_config()).unwrap();
        let initial = upgma_tree(&alignment, 1.0).unwrap();
        let run = sampler.run(initial, &mut rng, &mut NullObserver).unwrap();
        assert_eq!(run.samples.len(), 400);
        assert_eq!(run.counters.draws, 440);
        assert_eq!(run.trace.len(), 440);
        assert_eq!(run.counters.iterations, 55);
        assert_eq!(run.counters.proposals_generated, 55 * 8);
        assert_eq!(run.counters.likelihood_evaluations, 55 * 8);
        assert!(run.acceptance_rate() > 0.0);
        // Dirty-path caching plus commit-on-accept: every proposal evaluation
        // reprunes only the edited neighborhood's path to the root, the
        // generator workspace is built in full exactly once, and every moved
        // generator is promoted along its dirty path.
        let n_internal = run.final_tree.n_internal();
        assert!(run.counters.nodes_repruned > 0);
        assert!(run.counters.nodes_repruned < run.counters.likelihood_evaluations * n_internal);
        assert_eq!(run.counters.nodes_full_pruned, n_internal);
        assert_eq!(run.counters.generator_cache_hits, run.counters.iterations - 1);
        assert!(run.counters.workspace_commits > 0);
        assert!(run.counters.nodes_committed > 0);
        assert!(run.counters.nodes_pruned_per_evaluation() < n_internal as f64);
        // Edge transition-matrix memoisation: edges whose effective lengths
        // survive a proposal hit the cache, while the cold initial build and
        // every resimulated neighborhood edge pay a recomputation. (Tiny
        // 6-taxon trees keep the rate low; the >80% steady-state regime is
        // exercised by the perf-trajectory benchmark's deep trees.)
        assert!(run.counters.matrix_cache_hits > 0);
        assert!(run.counters.matrix_cache_misses >= run.final_tree.n_nodes() - 1);
        let rate = run.counters.matrix_cache_hit_rate();
        assert!(rate > 0.0 && rate < 1.0, "matrix cache hit rate {rate}");
        run.final_tree.validate().unwrap();
        assert_eq!(sampler.theta(), 1.0);
        assert_eq!(sampler.config().proposals_per_iteration, 8);
        assert_eq!(sampler.strategy(), "gmh");
        assert_eq!(sampler.chain_info().total_draws, 440);
    }

    #[test]
    fn stepping_matches_a_whole_run_exactly() {
        let mut rng = Mt19937::new(4_711);
        let alignment = simulated_alignment(&mut rng, 5, 40, 1.0);
        let engine = FelsensteinPruner::new(&alignment, Jc69::new());
        let initial = upgma_tree(&alignment, 1.0).unwrap();
        let config = small_config();

        let mut whole = MultiProposalSampler::new(engine.clone(), config).unwrap();
        let mut rng_a = Mt19937::new(11);
        let run_a = whole.run(initial.clone(), &mut rng_a, &mut NullObserver).unwrap();

        let mut stepped = MultiProposalSampler::new(engine, config).unwrap();
        assert!(stepped.is_done(), "no chain is active before begin()");
        assert!(stepped.step(&mut Mt19937::new(0)).is_err());
        assert!(stepped.finish().is_err());
        let mut rng_b = Mt19937::new(11);
        stepped.begin(initial).unwrap();
        while !stepped.is_done() {
            stepped.step(&mut rng_b).unwrap();
        }
        let run_b = stepped.finish().unwrap();
        assert_eq!(run_a.trace.all(), run_b.trace.all());
        assert_eq!(run_a.counters, run_b.counters);
    }

    #[test]
    fn export_import_resumes_the_chain_bit_identically() {
        // Checkpoint/resume contract for the multi-proposal strategy: the
        // snapshot must carry the detached-stream epoch as well as the chain
        // accumulators, so the resumed sampler draws the same proposal sets
        // and finishes bit-for-bit equal to the uninterrupted run.
        let mut rng = Mt19937::new(101);
        let alignment = simulated_alignment(&mut rng, 5, 40, 1.0);
        let engine = FelsensteinPruner::new(&alignment, Jc69::new());
        let initial = upgma_tree(&alignment, 1.0).unwrap();
        let config = small_config();

        let mut uninterrupted = MultiProposalSampler::new(engine.clone(), config).unwrap();
        let mut rng_a = Mt19937::new(23);
        let run_a = uninterrupted.run(initial.clone(), &mut rng_a, &mut NullObserver).unwrap();

        let mut first_half = MultiProposalSampler::new(engine.clone(), config).unwrap();
        assert!(first_half.export_chain().is_none(), "no chain active before begin()");
        let mut rng_b = Mt19937::new(23);
        first_half.begin(initial).unwrap();
        for _ in 0..21 {
            first_half.step(&mut rng_b).unwrap();
        }
        let snapshot = first_half.export_chain().unwrap();
        assert_eq!(snapshot.stream_epoch, 21);
        drop(first_half);

        let mut resumed = MultiProposalSampler::new(engine, config).unwrap();
        resumed.import_chain(snapshot).unwrap();
        let mut rng_c = Mt19937::new(23);
        rng_c.discard(rng_b.position());
        while !resumed.is_done() {
            resumed.step(&mut rng_c).unwrap();
        }
        let run_b = resumed.finish().unwrap();
        assert_eq!(run_a, run_b);
    }

    #[test]
    fn reused_samplers_keep_advancing_the_proposal_streams() {
        // begin() must not rewind the stream epochs: two chains run back to
        // back on one sampler — even with an identical host RNG — have to
        // draw distinct proposal sets, or pooled diagnostics over the chains
        // would be silently correlated.
        let mut rng = Mt19937::new(313);
        let alignment = simulated_alignment(&mut rng, 5, 40, 1.0);
        let engine = FelsensteinPruner::new(&alignment, Jc69::new());
        let initial = upgma_tree(&alignment, 1.0).unwrap();
        let config = MpcgsConfig { burn_in_draws: 0, sample_draws: 64, ..small_config() };
        let mut sampler = MultiProposalSampler::new(engine, config).unwrap();
        let first = sampler.run(initial.clone(), &mut Mt19937::new(9), &mut NullObserver).unwrap();
        let second = sampler.run(initial, &mut Mt19937::new(9), &mut NullObserver).unwrap();
        assert_ne!(
            first.trace.all(),
            second.trace.all(),
            "a reused sampler must not replay the previous chain's proposal streams"
        );
    }

    #[test]
    fn rayon_backend_matches_serial_backend_statistically() {
        // The two backends use identical RNG streams for the proposals, so
        // the proposal sets are identical; only the host draws differ in
        // timing. Run both and compare summary statistics of the sampled
        // tree depths.
        let mut rng = Mt19937::new(73);
        let alignment = simulated_alignment(&mut rng, 5, 50, 1.0);
        let engine = FelsensteinPruner::new(&alignment, Jc69::new());
        let initial = upgma_tree(&alignment, 1.0).unwrap();

        let serial_cfg = small_config();
        let rayon_cfg = MpcgsConfig { backend: Backend::Rayon, ..small_config() };

        let mut rng_a = Mt19937::new(1234);
        let run_a = MultiProposalSampler::new(engine.clone(), serial_cfg)
            .unwrap()
            .run(initial.clone(), &mut rng_a, &mut NullObserver)
            .unwrap();
        let mut rng_b = Mt19937::new(1234);
        let run_b = MultiProposalSampler::new(engine, rayon_cfg)
            .unwrap()
            .run(initial, &mut rng_b, &mut NullObserver)
            .unwrap();

        // Identical seeds and identical deterministic streams: the outputs
        // must match exactly, which also proves the backend does not change
        // the sampled distribution.
        let depths_a: Vec<f64> = run_a.samples.iter().map(|s| s.intervals.depth()).collect();
        let depths_b: Vec<f64> = run_b.samples.iter().map(|s| s.intervals.depth()).collect();
        assert_eq!(depths_a, depths_b);
    }

    #[test]
    fn flat_data_recovers_the_coalescent_prior() {
        // With a single invariant site the weights are almost flat, so the
        // sampler explores (approximately) the prior; the mean sampled depth
        // must be near the Kingman expectation — the multi-proposal analogue
        // of the baseline sampler's prior-recovery test.
        let mut rng = Mt19937::new(79);
        let alignment =
            Alignment::from_letters(&[("1", "A"), ("2", "A"), ("3", "A"), ("4", "A"), ("5", "A")])
                .unwrap();
        let theta = 1.0;
        let engine = FelsensteinPruner::new(&alignment, Jc69::new());
        let config = MpcgsConfig {
            initial_theta: theta,
            proposals_per_iteration: 8,
            draws_per_iteration: 8,
            burn_in_draws: 400,
            sample_draws: 4_000,
            backend: Backend::Serial,
            ..Default::default()
        };
        let mut sampler = MultiProposalSampler::new(engine, config).unwrap();
        let initial = CoalescentSimulator::constant(theta)
            .unwrap()
            .simulate_labelled(
                &mut rng,
                &["1", "2", "3", "4", "5"].iter().map(|s| s.to_string()).collect::<Vec<_>>(),
            )
            .unwrap();
        let run = sampler.run(initial, &mut rng, &mut NullObserver).unwrap();
        let depths: Vec<f64> = run.samples.iter().map(|s| s.intervals.depth()).collect();
        let mean_depth = Summary::of(&depths).unwrap().mean;
        let expected = KingmanPrior::new(theta).unwrap().expected_tmrca(5);
        assert!(
            (mean_depth / expected - 1.0).abs() < 0.35,
            "mean sampled depth {mean_depth} vs prior expectation {expected}"
        );
        assert!(run.acceptance_rate() > 0.5, "flat weights should move freely");
    }

    #[test]
    fn gmh_and_baseline_sample_the_same_posterior() {
        // The headline correctness property (Section 6.1): the multi-proposal
        // sampler must target the same posterior as the single-proposal
        // baseline. Compare the mean sampled tree depth of the two samplers
        // on the same data and driving value — through the shared
        // GenealogySampler trait, since the two are interchangeable.
        let mut rng = Mt19937::new(83);
        let alignment = simulated_alignment(&mut rng, 6, 100, 1.0);
        let engine =
            FelsensteinPruner::new(&alignment, F81::normalized(alignment.base_frequencies()));
        let initial = upgma_tree(&alignment, 1.0).unwrap();

        let gmh_config = MpcgsConfig {
            initial_theta: 1.0,
            proposals_per_iteration: 8,
            draws_per_iteration: 8,
            burn_in_draws: 400,
            sample_draws: 3_000,
            backend: Backend::Serial,
            ..Default::default()
        };
        let baseline_config = SamplerConfig {
            theta: 1.0,
            burn_in: 400,
            samples: 3_000,
            thinning: 1,
            proposal: Default::default(),
        };
        let mut strategies: Vec<Box<dyn GenealogySampler>> = vec![
            Box::new(MultiProposalSampler::new(engine.clone(), gmh_config).unwrap()),
            Box::new(LamarcSampler::new(engine, baseline_config).unwrap()),
        ];
        let mut means = Vec::new();
        for sampler in &mut strategies {
            let run = sampler.run(initial.clone(), &mut rng, &mut NullObserver).unwrap();
            let depths: Vec<f64> = run.samples.iter().map(|s| s.intervals.depth()).collect();
            means.push(Summary::of(&depths).unwrap().mean);
        }
        let (gmh_mean, base_mean) = (means[0], means[1]);
        assert!(
            (gmh_mean / base_mean - 1.0).abs() < 0.2,
            "mean depths disagree: GMH {gmh_mean} vs baseline {base_mean}"
        );
    }

    #[test]
    fn invalid_configurations_are_rejected() {
        let mut rng = Mt19937::new(89);
        let alignment = simulated_alignment(&mut rng, 4, 40, 1.0);
        let engine = FelsensteinPruner::new(&alignment, Jc69::new());
        let bad = MpcgsConfig { proposals_per_iteration: 0, ..small_config() };
        assert!(MultiProposalSampler::new(engine.clone(), bad).is_err());
        let bad_theta = MpcgsConfig { initial_theta: -1.0, ..small_config() };
        assert!(MultiProposalSampler::new(engine.clone(), bad_theta).is_err());
        assert!(MultiProposalSampler::with_theta(engine, small_config(), 0.0).is_err());
    }
}
