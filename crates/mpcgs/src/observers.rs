//! Ready-made [`RunObserver`] implementations.
//!
//! These replace the ad-hoc printing the CLI, examples and bench harnesses
//! used to hand-roll around their driver loops: attach them through
//! [`SessionBuilder::observe`](crate::SessionBuilder::observe) and the
//! session streams the events.

use lamarc::run::{ChainInfo, EmUpdate, RunObserver, RunReport};

/// Prints one table row per EM round (the CLI's per-iteration history),
/// emitting the header lazily before the first row.
#[derive(Debug, Clone, Copy, Default)]
pub struct EmProgressPrinter {
    printed_header: bool,
}

impl EmProgressPrinter {
    /// A fresh printer (header not yet emitted).
    pub fn new() -> Self {
        EmProgressPrinter::default()
    }
}

impl RunObserver for EmProgressPrinter {
    fn on_em_update(&mut self, update: &EmUpdate) {
        if !self.printed_header {
            println!("\n  iter   driving-theta      estimate   accept-rate   mean ln P(D|G)");
            self.printed_header = true;
        }
        println!(
            "  {:>4}   {:>13.6}   {:>11.6}   {:>11.3}   {:>14.3}",
            update.iteration + 1,
            update.driving_theta,
            update.estimate,
            update.acceptance_rate,
            update.mean_log_data_likelihood
        );
    }
}

/// Prints a one-line banner when each chain starts and a diagnostics line
/// when it ends (acceptance rate plus the caching counters).
#[derive(Debug, Clone, Copy, Default)]
pub struct ChainSummaryPrinter;

impl ChainSummaryPrinter {
    /// A chain-summary printer.
    pub fn new() -> Self {
        ChainSummaryPrinter
    }
}

impl RunObserver for ChainSummaryPrinter {
    fn on_chain_start(&mut self, info: &ChainInfo) {
        println!(
            "chain {} [{}]: {} draws ({} burn-in) at driving theta {:.6}",
            info.chain_index, info.strategy, info.total_draws, info.burn_in_draws, info.theta
        );
    }

    fn on_chain_end(&mut self, report: &RunReport) {
        let c = &report.counters;
        println!(
            "chain done: acceptance {:.3}, {:.2} nodes pruned/evaluation, \
             {} cache hits, {} commits",
            report.acceptance_rate(),
            c.nodes_pruned_per_evaluation(),
            c.generator_cache_hits,
            c.workspace_commits
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn printers_consume_events_without_panicking() {
        let mut em = EmProgressPrinter::new();
        let update = EmUpdate {
            iteration: 0,
            driving_theta: 1.0,
            estimate: 1.2,
            acceptance_rate: 0.4,
            mean_log_data_likelihood: -120.0,
        };
        em.on_em_update(&update);
        em.on_em_update(&update);
        assert!(em.printed_header);

        let mut chain = ChainSummaryPrinter::new();
        chain.on_chain_start(&ChainInfo {
            strategy: "gmh",
            theta: 1.0,
            burn_in_draws: 10,
            total_draws: 100,
            chain_index: 0,
        });
    }
}
