//! The `Session` facade: one entry point for every θ-estimation workload.
//!
//! A [`Session`] owns the full Figure 11 loop — propose → batch-score →
//! select → maximise — over any [`Dataset`] (single- or multi-locus), any
//! substitution [`ModelSpec`], either sampler strategy behind the
//! [`GenealogySampler`] trait, either execution [`Backend`], and any number
//! of streaming [`RunObserver`]s. It replaces the per-crate driver loops the
//! workspace used to carry (`lamarc::em`, `mpcgs::em`, ad-hoc example/bench
//! loops): the CLI, the examples and the figure/table harnesses all build a
//! [`SessionBuilder`] and differ only in configuration.
//!
//! ```text
//! SessionBuilder: dataset → model → sampler strategy → backend → observers
//! ```
//!
//! The facade is also the seam later backends plug into: a GPU or SIMD
//! engine only has to stand behind [`GenealogySampler`] (or the likelihood
//! engine it wraps) to become a selectable strategy — the likelihood
//! combine kernel (scalar, explicit four-lane SIMD, or runtime-dispatched
//! `auto`) is already surfaced here as [`SessionBuilder::kernel`].
//!
//! # Quick start
//!
//! A deliberately tiny end-to-end estimation (real runs use the defaults in
//! [`MpcgsConfig`]):
//!
//! ```
//! use exec::Backend;
//! use mcmc::rng::Mt19937;
//! use phylo::{Alignment, Kernel};
//! use mpcgs::{MpcgsConfig, SamplerStrategy, Session};
//!
//! let alignment = Alignment::from_letters(&[
//!     ("a", "ACGTACGTAACCGGTT"),
//!     ("b", "ACGTACGAAACCGGTA"),
//!     ("c", "ACGAACGTAACCGGTT"),
//!     ("d", "TCGTACGTAACCGGTT"),
//! ])
//! .unwrap();
//!
//! let config = MpcgsConfig {
//!     initial_theta: 0.5,
//!     em_iterations: 1,
//!     burn_in_draws: 16,
//!     sample_draws: 64,
//!     proposals_per_iteration: 4,
//!     draws_per_iteration: 4,
//!     ..MpcgsConfig::default()
//! };
//! let mut session = Session::builder()
//!     .alignment(alignment)
//!     .strategy(SamplerStrategy::MultiProposal)
//!     .config(config)
//!     .backend(Backend::Serial)
//!     .kernel(Kernel::Simd) // falls back to scalar without `--features simd`
//!     .build()
//!     .unwrap();
//!
//! let mut rng = Mt19937::new(7);
//! let estimate = session.run(&mut rng).unwrap();
//! assert!(estimate.theta > 0.0 && estimate.theta.is_finite());
//! assert_eq!(estimate.iterations.len(), 1);
//! ```

use exec::Backend;
use mcmc::rng::Mt19937;
use rand::{Rng, RngCore};

use lamarc::mle::{maximize_relative_likelihood, RelativeLikelihood};
use lamarc::run::{
    ChainInfo, EmUpdate, GenealogySampler, RunCounters, RunObserver, RunReport, StepReport,
};
use lamarc::sampler::{LamarcSampler, SamplerConfig};
use phylo::likelihood::{ExecutionMode, Kernel, MultiLocusEngine};
use phylo::model::{Jc69, SubstitutionModel, F81};
use phylo::{upgma_tree, Alignment, Dataset, GeneTree, PhyloError};

use crate::checkpoint::{CheckpointState, SessionCheckpoint};
use crate::config::MpcgsConfig;
use crate::ensemble::{EnsembleReport, EnsembleSpec, ShardedSampler};
use crate::sampler::MultiProposalSampler;

/// Which transition kernel drives the chain. Both strategies target the same
/// posterior (Section 6.1); they differ in how the work is shaped.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SamplerStrategy {
    /// The single-proposal Metropolis–Hastings baseline (LAMARC, Section
    /// 4.2).
    Baseline,
    /// The multi-proposal Generalized Metropolis–Hastings sampler (the
    /// paper's contribution, Section 4.3).
    #[default]
    MultiProposal,
}

impl SamplerStrategy {
    /// The short name the strategy reports through
    /// [`GenealogySampler::strategy`].
    pub fn name(&self) -> &'static str {
        match self {
            SamplerStrategy::Baseline => "baseline",
            SamplerStrategy::MultiProposal => "gmh",
        }
    }
}

/// Substitution model selection. Models taking empirical inputs estimate
/// them per locus, so every locus is scored under its own base composition.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ModelSpec {
    /// Jukes–Cantor 1969: uniform frequencies, one rate.
    Jc69,
    /// Felsenstein 1981 with base frequencies estimated from each locus (the
    /// model the paper's Eq. 20 uses, with π "approximated by the relative
    /// frequency of each nucleotide in all the sampling data").
    #[default]
    F81Empirical,
}

/// One expectation–maximisation round's record.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EmIterationReport {
    /// The driving θ used for this chain.
    pub driving_theta: f64,
    /// The maximiser of the relative likelihood (next driving value).
    pub estimate: f64,
    /// Acceptance/move rate of the chain.
    pub acceptance_rate: f64,
    /// Mean `ln P(D|G)` over the retained samples.
    pub mean_log_data_likelihood: f64,
    /// Unified work counters of the chain.
    pub counters: RunCounters,
}

impl EmIterationReport {
    /// Record the observer-facing [`EmUpdate`] plus the chain's counters, so
    /// the two views of a round cannot drift apart.
    fn from_update(update: &EmUpdate, counters: RunCounters) -> Self {
        EmIterationReport {
            driving_theta: update.driving_theta,
            estimate: update.estimate,
            acceptance_rate: update.acceptance_rate,
            mean_log_data_likelihood: update.mean_log_data_likelihood,
            counters,
        }
    }
}

/// This thread's cumulative device-queue accounting: the real queue snapshot
/// when the `device` feature is compiled in, an empty (always-zero) snapshot
/// otherwise — so report plumbing needs no feature gates at its call sites.
pub(crate) fn device_queue_stats() -> exec::DeviceStats {
    #[cfg(feature = "device")]
    {
        exec::Queue::stats()
    }
    #[cfg(not(feature = "device"))]
    {
        exec::DeviceStats::default()
    }
}

/// The outcome of a full session run (the EM loop of Figure 11).
#[derive(Debug, Clone, PartialEq)]
pub struct SessionReport {
    /// The final θ̂.
    pub theta: f64,
    /// Per-iteration records.
    pub iterations: Vec<EmIterationReport>,
    /// The measured host-vs-device cost breakdown of the whole run, when the
    /// session backend was `Backend::Device` (`device` feature; `None`
    /// otherwise).
    pub device: Option<exec::DeviceReport>,
}

impl SessionReport {
    /// Whether the estimate stabilised (relative change between the last two
    /// EM iterations below `tolerance`).
    pub fn converged(&self, tolerance: f64) -> bool {
        if self.iterations.len() < 2 {
            return false;
        }
        let last = self.iterations[self.iterations.len() - 1].estimate;
        let prev = self.iterations[self.iterations.len() - 2].estimate;
        ((last - prev) / prev.max(f64::MIN_POSITIVE)).abs() < tolerance
    }

    /// Total likelihood evaluations across all EM iterations.
    pub fn total_likelihood_evaluations(&self) -> usize {
        self.iterations.iter().map(|i| i.counters.likelihood_evaluations).sum()
    }
}

/// Broadcasts every event to a set of boxed observers.
struct FanOut<'a>(&'a mut [Box<dyn RunObserver>]);

impl RunObserver for FanOut<'_> {
    fn on_chain_start(&mut self, info: &ChainInfo) {
        for observer in self.0.iter_mut() {
            observer.on_chain_start(info);
        }
    }

    fn on_burn_in_progress(&mut self, draws_done: usize, burn_in_total: usize) {
        for observer in self.0.iter_mut() {
            observer.on_burn_in_progress(draws_done, burn_in_total);
        }
    }

    fn on_iteration(&mut self, step: &StepReport) {
        for observer in self.0.iter_mut() {
            observer.on_iteration(step);
        }
    }

    fn on_em_update(&mut self, update: &EmUpdate) {
        for observer in self.0.iter_mut() {
            observer.on_em_update(update);
        }
    }

    fn on_chain_end(&mut self, report: &RunReport) {
        for observer in self.0.iter_mut() {
            observer.on_chain_end(report);
        }
    }
}

/// Staged construction of a [`Session`]:
/// dataset → model → sampler strategy → backend → observers.
///
/// Every stage has a sensible default except the dataset; `build()` validates
/// the combination up front.
#[derive(Default)]
pub struct SessionBuilder {
    dataset: Option<Dataset>,
    model: ModelSpec,
    strategy: SamplerStrategy,
    config: MpcgsConfig,
    execution: ExecutionMode,
    initial_tree: Option<GeneTree>,
    observers: Vec<Box<dyn RunObserver>>,
    ensemble: Option<EnsembleSpec>,
}

impl SessionBuilder {
    /// An empty builder (equivalent to `Session::builder()`).
    pub fn new() -> Self {
        SessionBuilder::default()
    }

    /// The (possibly multi-locus) dataset to analyse. Required.
    pub fn dataset(mut self, dataset: Dataset) -> Self {
        self.dataset = Some(dataset);
        self
    }

    /// Single-locus convenience: wrap one alignment as the dataset.
    pub fn alignment(self, alignment: Alignment) -> Self {
        self.dataset(Dataset::single(alignment))
    }

    /// The substitution model (default [`ModelSpec::F81Empirical`]).
    pub fn model(mut self, model: ModelSpec) -> Self {
        self.model = model;
        self
    }

    /// The sampler strategy (default [`SamplerStrategy::MultiProposal`]).
    pub fn strategy(mut self, strategy: SamplerStrategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// Chain sizing, θ₀, EM rounds and stream seeding. Note this replaces
    /// the whole configuration, including the backend — call
    /// [`SessionBuilder::backend`] afterwards to override it.
    pub fn config(mut self, config: MpcgsConfig) -> Self {
        self.config = config;
        self
    }

    /// Where the proposal-parallel loops run (overrides `config.backend`).
    pub fn backend(mut self, backend: Backend) -> Self {
        self.config.backend = backend;
        self
    }

    /// Which arithmetic kernel the likelihood engines combine partials with
    /// (overrides `config.kernel`). The default [`Kernel::Auto`] probes the
    /// CPU once at engine construction and selects the AVX2+FMA combine
    /// loop when the host supports it; [`Kernel::Simd`] pins the portable
    /// four-lane kernel. Both require the `phylo/simd` feature and degrade
    /// to the scalar kernel at runtime without it, so the setting is
    /// portable across builds.
    pub fn kernel(mut self, kernel: Kernel) -> Self {
        self.config.kernel = kernel;
        self
    }

    /// How each locus engine executes its per-site work
    /// ([`ExecutionMode::Parallel`] mirrors the per-site threads of the CUDA
    /// data-likelihood kernel).
    pub fn execution(mut self, mode: ExecutionMode) -> Self {
        self.execution = mode;
        self
    }

    /// Override the starting genealogy G₀ (default: the UPGMA tree of the
    /// primary locus, Section 5.1.3).
    pub fn initial_tree(mut self, tree: GeneTree) -> Self {
        self.initial_tree = Some(tree);
        self
    }

    /// Attach a streaming observer; may be called repeatedly, events fan out
    /// to every observer in attachment order.
    pub fn observe(mut self, observer: impl RunObserver + 'static) -> Self {
        self.observers.push(Box::new(observer));
        self
    }

    /// Shard every run of this session across an ensemble of chains (the
    /// paper's "many communicating chains" axis): the configured strategy is
    /// replicated per chain behind one [`ShardedSampler`], stepped in
    /// parallel on the session backend, with pooled samples feeding the
    /// maximisation stage. See [`crate::ensemble`] for the exchange
    /// policies.
    pub fn ensemble(mut self, spec: EnsembleSpec) -> Self {
        self.ensemble = Some(spec);
        self
    }

    /// Validate and assemble the session.
    pub fn build(self) -> Result<Session, PhyloError> {
        let dataset = self.dataset.ok_or(PhyloError::Empty { what: "session dataset" })?;
        self.config.validate()?;
        if let Some(spec) = &self.ensemble {
            spec.validate()?;
        }
        if let Some(tree) = &self.initial_tree {
            tree.validate()?;
            if tree.n_tips() != dataset.n_sequences() {
                return Err(PhyloError::InvalidTree {
                    message: format!(
                        "initial tree has {} tips but the dataset covers {} sequences",
                        tree.n_tips(),
                        dataset.n_sequences()
                    ),
                });
            }
        }
        Ok(Session {
            dataset,
            model: self.model,
            strategy: self.strategy,
            config: self.config,
            execution: self.execution,
            initial_tree: self.initial_tree,
            observers: self.observers,
            ensemble: self.ensemble,
        })
    }
}

/// A configured θ-estimation session: the single facade every driver (CLI,
/// examples, bench harnesses) runs through. See the crate-level quick start.
pub struct Session {
    dataset: Dataset,
    model: ModelSpec,
    strategy: SamplerStrategy,
    config: MpcgsConfig,
    execution: ExecutionMode,
    initial_tree: Option<GeneTree>,
    observers: Vec<Box<dyn RunObserver>>,
    ensemble: Option<EnsembleSpec>,
}

impl Session {
    /// Start building a session.
    pub fn builder() -> SessionBuilder {
        SessionBuilder::new()
    }

    /// The dataset under analysis.
    pub fn dataset(&self) -> &Dataset {
        &self.dataset
    }

    /// The configuration.
    pub fn config(&self) -> &MpcgsConfig {
        &self.config
    }

    /// The selected sampler strategy.
    pub fn strategy(&self) -> SamplerStrategy {
        self.strategy
    }

    /// The selected substitution model.
    pub fn model(&self) -> ModelSpec {
        self.model
    }

    /// The starting genealogy G₀: the configured override, or the UPGMA tree
    /// of the primary locus (Section 5.1.3).
    pub fn starting_tree(&self) -> Result<GeneTree, PhyloError> {
        match &self.initial_tree {
            Some(tree) => Ok(tree.clone()),
            None => upgma_tree(self.dataset.primary_alignment(), 1.0),
        }
    }

    /// The ensemble specification, when the session shards its runs.
    pub fn ensemble_spec(&self) -> Option<&EnsembleSpec> {
        self.ensemble.as_ref()
    }

    /// Replace the ensemble specification (`None` reverts to single-chain
    /// runs). Used by [`crate::ensemble::EnsembleBuilder`].
    pub fn set_ensemble(&mut self, spec: Option<EnsembleSpec>) {
        self.ensemble = spec;
    }

    /// Build the configured strategy as a boxed [`GenealogySampler`] driving
    /// the given θ. When an [`EnsembleSpec`] is configured this is a
    /// [`ShardedSampler`] over the whole ensemble; otherwise the bare
    /// per-chain strategy. Exposed so callers can drive chains step by step;
    /// most should use [`Session::run`] or [`Session::run_chain`].
    pub fn make_sampler(&self, theta: f64) -> Result<Box<dyn GenealogySampler>, PhyloError> {
        match &self.ensemble {
            Some(spec) => Ok(Box::new(ShardedSampler::from_session(self, spec, theta)?)),
            None => self.make_chain_sampler(theta, 1.0, 0),
        }
    }

    /// Build one member chain of an ensemble: the configured strategy at
    /// driving θ, tempered with inverse temperature `beta` (β = 1 is the
    /// untempered target), with the proposal stream seed decorrelated by
    /// `chain_index`. Chain 0 at β = 1 is **bit-identical** to the sampler a
    /// plain (non-ensemble) session builds — that is the compatibility
    /// contract the ensemble layer's determinism tests pin down.
    pub fn make_chain_sampler(
        &self,
        theta: f64,
        beta: f64,
        chain_index: usize,
    ) -> Result<Box<dyn GenealogySampler>, PhyloError> {
        let mut config = self.config;
        // Weyl-sequence offset: chain 0 keeps the configured seed exactly,
        // every other chain gets a decorrelated proposal stream family.
        config.stream_seed ^= (chain_index as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        match self.model {
            ModelSpec::Jc69 => self.make_sampler_with(config, theta, beta, |_| Jc69::new()),
            ModelSpec::F81Empirical => self
                .make_sampler_with(config, theta, beta, |a| F81::normalized(a.base_frequencies())),
        }
    }

    fn make_sampler_with<M, F>(
        &self,
        config: MpcgsConfig,
        theta: f64,
        beta: f64,
        model_for: F,
    ) -> Result<Box<dyn GenealogySampler>, PhyloError>
    where
        M: SubstitutionModel + 'static,
        F: Fn(&Alignment) -> M,
    {
        let engine = MultiLocusEngine::new(&self.dataset, model_for)
            .with_mode(self.execution)
            .with_kernel(config.kernel);
        Ok(match self.strategy {
            SamplerStrategy::Baseline => {
                let sampler_config = SamplerConfig {
                    theta,
                    burn_in: config.burn_in_draws,
                    samples: config.sample_draws,
                    thinning: config.thinning,
                    proposal: config.proposal,
                };
                Box::new(
                    LamarcSampler::new(engine, sampler_config)?.with_inverse_temperature(beta)?,
                )
            }
            SamplerStrategy::MultiProposal => Box::new(
                MultiProposalSampler::with_theta(engine, config, theta)?
                    .with_inverse_temperature(beta)?,
            ),
        })
    }

    /// Run the full estimator: `em_iterations` rounds of sampling (the
    /// expectation stage) each followed by maximisation of the relative
    /// likelihood of Eq. 26, chaining driving values and starting trees
    /// across rounds (Figure 11). Observers receive the chain events of each
    /// round plus one [`EmUpdate`] per maximisation.
    pub fn run<R: Rng>(&mut self, rng: &mut R) -> Result<SessionReport, PhyloError> {
        let rng: &mut dyn RngCore = rng;
        let mut theta = self.config.initial_theta;
        let mut iterations = Vec::with_capacity(self.config.em_iterations);
        let mut current_tree = Some(self.starting_tree()?);
        let device_spec = self.config.backend.device_spec();
        let device_baseline = device_spec.map(|_| device_queue_stats());

        // An ensemble session builds its sharded sampler once and retunes it
        // between rounds, so the per-chain host RNG streams keep advancing
        // across EM rounds (the multi-chain analogue of the shared host RNG
        // below).
        let mut sharded = match &self.ensemble {
            Some(spec) => Some(ShardedSampler::from_session(self, spec, theta)?),
            None => None,
        };

        for em_round in 0..self.config.em_iterations {
            let initial = current_tree.take().expect("a starting tree is always available");
            let report = match sharded.as_mut() {
                Some(sampler) => {
                    sampler.retune(self, theta)?;
                    let mut fan = FanOut(&mut self.observers);
                    sampler.run(initial, rng, &mut fan)?
                }
                None => {
                    // A fresh sampler per round, exactly as the pre-facade
                    // drivers built one — the bit-identity contract in
                    // tests/session_api.rs depends on it. The per-proposal
                    // stream epochs therefore restart each round (with the
                    // same stream_seed); rounds stay decorrelated because the
                    // host RNG advances across rounds, so φ, the generators
                    // being resimulated, and the index draws all differ even
                    // where raw stream states coincide.
                    let mut sampler = self.make_chain_sampler(theta, 1.0, 0)?;
                    let mut fan = FanOut(&mut self.observers);
                    sampler.run(initial, rng, &mut fan)?
                }
            };

            let summaries = report.interval_summaries();
            let relative = RelativeLikelihood::new(theta, &summaries).map_err(|e| {
                PhyloError::InvalidTree { message: format!("relative likelihood failed: {e}") }
            })?;
            let estimate = maximize_relative_likelihood(&relative, &self.config.ascent);
            let update = EmUpdate {
                iteration: em_round,
                driving_theta: theta,
                estimate,
                acceptance_rate: report.acceptance_rate(),
                mean_log_data_likelihood: report.mean_log_data_likelihood(),
            };
            FanOut(&mut self.observers).on_em_update(&update);
            iterations.push(EmIterationReport::from_update(&update, report.counters));
            theta = estimate.max(1e-9);
            current_tree = Some(report.final_tree);
        }

        let device = device_spec.zip(device_baseline).map(|(spec, baseline)| {
            exec::DeviceReport::new(spec, device_queue_stats().delta(&baseline))
        });
        Ok(SessionReport { theta, iterations, device })
    }

    /// Run a single chain at the configured θ₀ — no maximisation stage — and
    /// return the unified [`RunReport`] (trace, samples, counters). This is
    /// what diagnostics, benches and the multi-chain work-around build on.
    pub fn run_chain<R: Rng>(&mut self, rng: &mut R) -> Result<RunReport, PhyloError> {
        let rng: &mut dyn RngCore = rng;
        let mut sampler = self.make_sampler(self.config.initial_theta)?;
        let initial = self.starting_tree()?;
        let mut fan = FanOut(&mut self.observers);
        sampler.run(initial, rng, &mut fan)
    }

    /// Run one full ensemble pass at the configured θ₀ and return the
    /// aggregated [`EnsembleReport`] (per-chain reports, pooled θ estimate,
    /// swap counters, cross-chain R̂). Requires an [`EnsembleSpec`]
    /// (configure one with [`SessionBuilder::ensemble`]).
    ///
    /// Observers see the tagged per-chain event stream documented on
    /// [`ShardedSampler`]. The host RNG seeds nothing here — every chain
    /// consumes its own deterministic stream from the spec — but the
    /// parameter is kept so ensemble and single-chain drivers stay
    /// call-compatible.
    pub fn run_ensemble<R: Rng>(&mut self, rng: &mut R) -> Result<EnsembleReport, PhyloError> {
        let spec = self.ensemble.clone().ok_or_else(|| PhyloError::InvalidState {
            message: "run_ensemble requires an ensemble spec \
                      (SessionBuilder::ensemble or Ensemble::builder)"
                .to_string(),
        })?;
        let rng: &mut dyn RngCore = rng;
        let mut sampler = ShardedSampler::from_session(self, &spec, self.config.initial_theta)?;
        let initial = self.starting_tree()?;
        let mut fan = FanOut(&mut self.observers);
        sampler.run(initial, rng, &mut fan)?;
        sampler.take_ensemble_report().ok_or_else(|| PhyloError::InvalidState {
            message: "ensemble run finished without a report".to_string(),
        })
    }

    /// Evaluate the relative-likelihood curve for one chain run (Figure 5):
    /// run a single chain with the configured driving value and return
    /// `(θ, ln L(θ))` pairs over the grid.
    pub fn likelihood_curve<R: Rng>(
        &mut self,
        rng: &mut R,
        grid: &[f64],
    ) -> Result<Vec<(f64, f64)>, PhyloError> {
        let report = self.run_chain(rng)?;
        let summaries = report.interval_summaries();
        let relative =
            RelativeLikelihood::new(self.config.initial_theta, &summaries).map_err(|e| {
                PhyloError::InvalidTree { message: format!("relative likelihood failed: {e}") }
            })?;
        Ok(relative.curve(grid))
    }

    /// Convert the session into a preemptible [`SessionRunner`] seeded with
    /// `seed`: the incremental form of [`Session::run`] (which internally
    /// does `mcmc::rng::host_rng(seed)` host seeding in the CLI driver). Stepping
    /// the runner to completion is bit-identical to `run` with the same host
    /// RNG.
    pub fn into_runner(self, seed: u32) -> Result<SessionRunner, PhyloError> {
        SessionRunner::start(self, seed)
    }

    /// Convert the session into a [`SessionRunner`] continuing from a
    /// [`SessionCheckpoint`], bit-identically to the run that produced it.
    ///
    /// The session must match the checkpoint: same sampler strategy and (for
    /// ensemble checkpoints) an [`EnsembleSpec`] equal to the one the
    /// checkpoint was taken under — mismatches fail with pointed errors
    /// rather than silently continuing a different run. Observer events that
    /// fired before the checkpoint are **not** replayed; the resumed runner
    /// emits events from the checkpointed iteration onward.
    pub fn resume(self, checkpoint: &SessionCheckpoint) -> Result<SessionRunner, PhyloError> {
        SessionRunner::resume(self, checkpoint)
    }
}

/// The sampler + EM-round state of a [`SessionRunner`]'s round in flight.
enum RunnerMode {
    /// A plain single-chain session: a fresh sampler per EM round, stepped
    /// with the host RNG.
    Single { sampler: Box<dyn GenealogySampler> },
    /// A sharded session: one [`ShardedSampler`] retuned across rounds,
    /// advanced a dispatch segment at a time.
    Ensemble { sampler: Box<ShardedSampler> },
}

/// A [`Session`] run unrolled into resumable increments: the same Figure 11
/// loop as [`Session::run`], but advanced one kernel step (single chain) or
/// one dispatch segment (ensemble) per [`SessionRunner::step`] call, so a
/// driver can preempt the run at any point — and freeze it with
/// [`SessionRunner::checkpoint`].
///
/// # Bit-identity contract
///
/// Driving a runner to completion produces a [`SessionReport`] equal
/// bit-for-bit to `Session::run` with the same host RNG seed, and a runner
/// torn down at any step and rebuilt via [`Session::resume`] continues the
/// run bit-identically — the fault-injection tests kill runs at randomized
/// iteration counts to pin this down. The one exception is the *device*
/// accounting attached to `Backend::Device` runs: queue statistics are
/// thread-cumulative wall-clock style counters and restart at resume, so
/// checkpoint equality is only guaranteed for the sampling results, not the
/// simulated-device cost report.
///
/// # Round atomicity
///
/// EM round transitions (finish → maximise → retune/rebuild → begin) happen
/// *inside* the [`SessionRunner::step`] call that completes the round's last
/// iteration. The runner is therefore always either mid-round with every
/// chain active — where [`SessionRunner::checkpoint`] is guaranteed to
/// succeed — or finished.
pub struct SessionRunner {
    session: Session,
    seed: u32,
    host_rng: Mt19937,
    theta: f64,
    em_round: usize,
    iterations: Vec<EmIterationReport>,
    mode: RunnerMode,
    device_spec: Option<exec::DeviceSpec>,
    device_baseline: Option<exec::DeviceStats>,
    finished: Option<SessionReport>,
}

impl SessionRunner {
    /// Begin round 0 (the `begin` + `on_chain_start` prologue of
    /// [`Session::run`]'s first iteration).
    fn start(session: Session, seed: u32) -> Result<SessionRunner, PhyloError> {
        let theta = session.config.initial_theta;
        let device_spec = session.config.backend.device_spec();
        let device_baseline = device_spec.map(|_| device_queue_stats());
        let initial = session.starting_tree()?;
        let mode = match &session.ensemble {
            Some(spec) => RunnerMode::Ensemble {
                sampler: Box::new(ShardedSampler::from_session(&session, spec, theta)?),
            },
            None => RunnerMode::Single { sampler: session.make_chain_sampler(theta, 1.0, 0)? },
        };
        let mut runner = SessionRunner {
            session,
            seed,
            host_rng: mcmc::rng::host_rng(seed),
            theta,
            em_round: 0,
            iterations: Vec::new(),
            mode,
            device_spec,
            device_baseline,
            finished: None,
        };
        runner.begin_round(initial)?;
        Ok(runner)
    }

    fn resume(
        session: Session,
        checkpoint: &SessionCheckpoint,
    ) -> Result<SessionRunner, PhyloError> {
        if checkpoint.strategy != session.strategy.name() {
            return Err(PhyloError::InvalidState {
                message: format!(
                    "checkpoint mismatch: the checkpoint was taken under the {:?} strategy but \
                     this session is configured for {:?}",
                    checkpoint.strategy,
                    session.strategy.name()
                ),
            });
        }
        let device_spec = session.config.backend.device_spec();
        let device_baseline = device_spec.map(|_| device_queue_stats());
        let mode = match &checkpoint.state {
            CheckpointState::SingleChain(snapshot) => {
                if let Some(spec) = &session.ensemble {
                    return Err(PhyloError::InvalidState {
                        message: format!(
                            "checkpoint mismatch: the checkpoint froze a single-chain run but \
                             this session shards across {} chain(s)",
                            spec.n_chains
                        ),
                    });
                }
                let mut sampler = session.make_chain_sampler(checkpoint.theta, 1.0, 0)?;
                sampler.import_chain(snapshot.as_ref().clone())?;
                RunnerMode::Single { sampler }
            }
            CheckpointState::Ensemble { spec, snapshot } => {
                match &session.ensemble {
                    Some(configured) if configured == spec => {}
                    Some(configured) => {
                        return Err(PhyloError::InvalidState {
                            message: format!(
                                "checkpoint mismatch: the checkpoint's ensemble spec \
                                 ({} chain(s), {} exchange) differs from this session's \
                                 ({} chain(s), {} exchange)",
                                spec.n_chains,
                                spec.exchange.name(),
                                configured.n_chains,
                                configured.exchange.name()
                            ),
                        });
                    }
                    None => {
                        return Err(PhyloError::InvalidState {
                            message: format!(
                                "checkpoint mismatch: the checkpoint froze a {}-chain ensemble \
                                 but this session runs a single chain",
                                spec.n_chains
                            ),
                        });
                    }
                }
                let mut sampler = ShardedSampler::from_session(&session, spec, checkpoint.theta)?;
                sampler.import_ensemble(snapshot.clone())?;
                RunnerMode::Ensemble { sampler: Box::new(sampler) }
            }
        };
        let mut host_rng = mcmc::rng::host_rng(checkpoint.seed);
        host_rng.discard(checkpoint.host_rng_position);
        Ok(SessionRunner {
            session,
            seed: checkpoint.seed,
            host_rng,
            theta: checkpoint.theta,
            em_round: checkpoint.em_round,
            iterations: checkpoint.iterations.clone(),
            mode,
            device_spec,
            device_baseline,
            finished: None,
        })
    }

    /// `begin` the current round's chain(s) on `initial` and emit the
    /// matching `on_chain_start` event(s).
    fn begin_round(&mut self, initial: GeneTree) -> Result<(), PhyloError> {
        match &mut self.mode {
            RunnerMode::Single { sampler } => {
                sampler.begin(initial)?;
                FanOut(&mut self.session.observers).on_chain_start(&sampler.chain_info());
            }
            RunnerMode::Ensemble { sampler } => {
                sampler.begin(initial)?;
                let mut fan = FanOut(&mut self.session.observers);
                for info in sampler.chain_infos() {
                    fan.on_chain_start(&info);
                }
            }
        }
        Ok(())
    }

    /// Whether the whole EM run has completed.
    pub fn is_finished(&self) -> bool {
        self.finished.is_some()
    }

    /// The final report, once [`SessionRunner::is_finished`].
    pub fn report(&self) -> Option<&SessionReport> {
        self.finished.as_ref()
    }

    /// The host RNG seed the run was started with.
    pub fn seed(&self) -> u32 {
        self.seed
    }

    /// The driving θ of the round in flight (or the final θ̂ when finished).
    pub fn theta(&self) -> f64 {
        self.theta
    }

    /// The EM round in flight (0-based; equals the configured round count
    /// when finished).
    pub fn em_round(&self) -> usize {
        self.em_round
    }

    /// The session being driven.
    pub fn session(&self) -> &Session {
        &self.session
    }

    /// Advance the run by one increment — one kernel step for a single
    /// chain, one dispatch segment for an ensemble — completing the EM round
    /// (maximise, retune, begin the next round) within the same call when
    /// the increment was the round's last. Returns `true` once the whole run
    /// is finished; stepping a finished runner is a no-op returning `true`.
    pub fn step(&mut self) -> Result<bool, PhyloError> {
        if self.finished.is_some() {
            return Ok(true);
        }
        let round_done = match &mut self.mode {
            RunnerMode::Single { sampler } => {
                let step = sampler.step(&mut self.host_rng)?;
                let mut fan = FanOut(&mut self.session.observers);
                if step.in_burn_in() {
                    fan.on_burn_in_progress(step.draws_done, step.burn_in_draws);
                }
                fan.on_iteration(&step);
                sampler.is_done()
            }
            RunnerMode::Ensemble { sampler } => {
                let steps = sampler.step_segment()?;
                let mut fan = FanOut(&mut self.session.observers);
                for step in steps {
                    if step.in_burn_in() {
                        fan.on_burn_in_progress(step.draws_done, step.burn_in_draws);
                    }
                    fan.on_iteration(&step);
                }
                sampler.is_done()
            }
        };
        if round_done {
            self.complete_round()?;
        }
        Ok(self.finished.is_some())
    }

    /// Drive the run to completion and return the final report — the
    /// incremental equivalent of [`Session::run`].
    pub fn run_to_completion(&mut self) -> Result<SessionReport, PhyloError> {
        while !self.step()? {}
        Ok(self.finished.clone().expect("step() reported completion"))
    }

    /// The round's epilogue, mirroring the tail of [`Session::run`]'s loop
    /// body: finish the chain(s), maximise the relative likelihood, record
    /// the round, then either begin the next round or seal the final report.
    fn complete_round(&mut self) -> Result<(), PhyloError> {
        let report = match &mut self.mode {
            RunnerMode::Single { sampler } => {
                let report = sampler.finish()?;
                FanOut(&mut self.session.observers).on_chain_end(&report);
                report
            }
            RunnerMode::Ensemble { sampler } => {
                let pooled = sampler.finish()?;
                if let Some(ensemble) = sampler.ensemble_report() {
                    let mut fan = FanOut(&mut self.session.observers);
                    for chain in &ensemble.chains {
                        fan.on_chain_end(chain);
                    }
                }
                pooled
            }
        };

        let summaries = report.interval_summaries();
        let relative = RelativeLikelihood::new(self.theta, &summaries).map_err(|e| {
            PhyloError::InvalidTree { message: format!("relative likelihood failed: {e}") }
        })?;
        let estimate = maximize_relative_likelihood(&relative, &self.session.config.ascent);
        let update = EmUpdate {
            iteration: self.em_round,
            driving_theta: self.theta,
            estimate,
            acceptance_rate: report.acceptance_rate(),
            mean_log_data_likelihood: report.mean_log_data_likelihood(),
        };
        FanOut(&mut self.session.observers).on_em_update(&update);
        self.iterations.push(EmIterationReport::from_update(&update, report.counters));
        self.theta = estimate.max(1e-9);
        self.em_round += 1;

        if self.em_round >= self.session.config.em_iterations {
            let device = self.device_spec.zip(self.device_baseline).map(|(spec, baseline)| {
                exec::DeviceReport::new(spec, device_queue_stats().delta(&baseline))
            });
            self.finished = Some(SessionReport {
                theta: self.theta,
                iterations: self.iterations.clone(),
                device,
            });
            return Ok(());
        }

        // Begin the next round on the finished round's final tree, exactly
        // as Session::run chains `current_tree` across rounds.
        match &mut self.mode {
            RunnerMode::Single { sampler } => {
                *sampler = self.session.make_chain_sampler(self.theta, 1.0, 0)?;
            }
            RunnerMode::Ensemble { sampler } => {
                sampler.retune(&self.session, self.theta)?;
            }
        }
        self.begin_round(report.final_tree)
    }

    /// Freeze the run: the EM position plus the full chain (or ensemble)
    /// state as a [`SessionCheckpoint`]. Only a run in flight can be frozen
    /// — a finished runner has nothing left to resume and errors here (its
    /// [`SessionRunner::report`] is the deliverable).
    pub fn checkpoint(&self) -> Result<SessionCheckpoint, PhyloError> {
        if self.finished.is_some() {
            return Err(PhyloError::InvalidState {
                message: "the run is finished: there is no in-flight state to checkpoint"
                    .to_string(),
            });
        }
        let state = match &self.mode {
            RunnerMode::Single { sampler } => CheckpointState::SingleChain(Box::new(
                sampler.export_chain().ok_or_else(no_active_chain_for_checkpoint)?,
            )),
            RunnerMode::Ensemble { sampler } => CheckpointState::Ensemble {
                spec: self
                    .session
                    .ensemble
                    .clone()
                    .expect("an ensemble runner always carries a spec"),
                snapshot: sampler.export_ensemble().ok_or_else(no_active_chain_for_checkpoint)?,
            },
        };
        Ok(SessionCheckpoint {
            strategy: self.session.strategy.name().to_string(),
            seed: self.seed,
            host_rng_position: self.host_rng.position(),
            theta: self.theta,
            em_round: self.em_round,
            iterations: self.iterations.clone(),
            state,
        })
    }
}

fn no_active_chain_for_checkpoint() -> PhyloError {
    PhyloError::InvalidState {
        message: "checkpoint requires an active chain on every rung (the runner keeps rounds \
                  atomic, so this indicates a strategy that does not support export)"
            .to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use coalescent::{CoalescentSimulator, SequenceSimulator};
    use mcmc::rng::Mt19937;
    use phylo::Locus;

    fn simulated_alignment(rng: &mut Mt19937, n: usize, sites: usize, theta: f64) -> Alignment {
        let tree = CoalescentSimulator::constant(theta).unwrap().simulate(rng, n).unwrap();
        SequenceSimulator::new(Jc69::new(), sites, 1.0).unwrap().simulate(rng, &tree).unwrap()
    }

    fn small_config() -> MpcgsConfig {
        MpcgsConfig {
            initial_theta: 0.5,
            em_iterations: 2,
            proposals_per_iteration: 8,
            draws_per_iteration: 8,
            burn_in_draws: 80,
            sample_draws: 600,
            backend: Backend::Serial,
            ..Default::default()
        }
    }

    #[test]
    fn session_runs_and_chains_the_driving_value() {
        let mut rng = Mt19937::new(91);
        let alignment = simulated_alignment(&mut rng, 6, 80, 1.0);
        let mut session =
            Session::builder().alignment(alignment).config(small_config()).build().unwrap();
        assert_eq!(session.dataset().n_sequences(), 6);
        assert_eq!(session.config().em_iterations, 2);
        assert_eq!(session.strategy(), SamplerStrategy::MultiProposal);
        assert_eq!(session.model(), ModelSpec::F81Empirical);
        let estimate = session.run(&mut rng).unwrap();
        assert_eq!(estimate.iterations.len(), 2);
        assert!(estimate.theta > 0.0 && estimate.theta.is_finite());
        assert!(
            (estimate.iterations[1].driving_theta - estimate.iterations[0].estimate).abs() < 1e-12
        );
        assert!(estimate.total_likelihood_evaluations() > 0);
        for it in &estimate.iterations {
            assert!(it.acceptance_rate > 0.0);
            assert!(it.mean_log_data_likelihood.is_finite());
        }
        let _ = estimate.converged(0.5);
    }

    #[test]
    fn estimate_lands_in_a_plausible_range() {
        let mut rng = Mt19937::new(97);
        let alignment = simulated_alignment(&mut rng, 8, 150, 1.0);
        let config = MpcgsConfig { sample_draws: 1_200, ..small_config() };
        let mut session = Session::builder().alignment(alignment).config(config).build().unwrap();
        let estimate = session.run(&mut rng).unwrap();
        assert!(
            estimate.theta > 0.05 && estimate.theta < 10.0,
            "estimate {} is implausible for data simulated at theta = 1",
            estimate.theta
        );
    }

    #[test]
    fn baseline_strategy_estimates_through_the_same_facade() {
        let mut rng = Mt19937::new(59);
        let alignment = simulated_alignment(&mut rng, 8, 150, 1.0);
        let config = MpcgsConfig {
            initial_theta: 0.1,
            em_iterations: 2,
            burn_in_draws: 200,
            sample_draws: 1_500,
            ..small_config()
        };
        let mut session = Session::builder()
            .alignment(alignment)
            .strategy(SamplerStrategy::Baseline)
            .config(config)
            .build()
            .unwrap();
        let estimate = session.run(&mut rng).unwrap();
        assert_eq!(estimate.iterations.len(), 2);
        assert!(
            estimate.theta > 0.05 && estimate.theta < 10.0,
            "estimate {} is implausible for data simulated at theta = 1",
            estimate.theta
        );
        for it in &estimate.iterations {
            assert!(it.acceptance_rate > 0.0 && it.acceptance_rate <= 1.0);
            // The baseline pays one full prune and commits every accept.
            assert_eq!(it.counters.workspace_commits, it.counters.accepted);
        }
    }

    #[test]
    fn likelihood_curve_peaks_away_from_a_tiny_driving_value() {
        // Figure 5's qualitative shape: with a driving value far below the
        // truth, the relative-likelihood curve must rise away from theta0.
        let mut rng = Mt19937::new(101);
        let alignment = simulated_alignment(&mut rng, 6, 120, 1.0);
        let config = MpcgsConfig {
            initial_theta: 0.05,
            em_iterations: 1,
            sample_draws: 800,
            ..small_config()
        };
        let mut session = Session::builder().alignment(alignment).config(config).build().unwrap();
        let grid = RelativeLikelihood::log_grid(0.05, 5.0, 20);
        let curve = session.likelihood_curve(&mut rng, &grid).unwrap();
        assert_eq!(curve.len(), 20);
        let at_driving = curve[0].1;
        let best = curve.iter().cloned().max_by(|a, b| a.1.partial_cmp(&b.1).unwrap()).unwrap();
        assert!(
            best.1 > at_driving,
            "curve should rise away from the driving value: best {best:?} vs {at_driving}"
        );
        assert!(best.0 > 0.05);
    }

    #[test]
    fn multi_locus_sessions_run_over_shared_individuals() {
        let mut rng = Mt19937::new(2_026);
        let first = simulated_alignment(&mut rng, 5, 60, 1.0);
        // A second locus over the same individuals (names 1..=5 from the
        // simulator), simulated independently.
        let names: Vec<String> = first.names().iter().map(|s| s.to_string()).collect();
        let tree2 = CoalescentSimulator::constant(1.0)
            .unwrap()
            .simulate_labelled(&mut rng, &names)
            .unwrap();
        let second = SequenceSimulator::new(Jc69::new(), 90, 1.0)
            .unwrap()
            .simulate(&mut rng, &tree2)
            .unwrap();
        let dataset =
            Dataset::new(vec![Locus::new("l0", first), Locus::new("l1", second)]).unwrap();
        let config = MpcgsConfig {
            em_iterations: 1,
            burn_in_draws: 40,
            sample_draws: 300,
            ..small_config()
        };
        let mut session = Session::builder().dataset(dataset).config(config).build().unwrap();
        let estimate = session.run(&mut rng).unwrap();
        assert!(estimate.theta > 0.0 && estimate.theta.is_finite());
        assert!(estimate.iterations[0].mean_log_data_likelihood.is_finite());
    }

    #[test]
    fn invalid_sessions_are_rejected_up_front() {
        let mut rng = Mt19937::new(103);
        let alignment = simulated_alignment(&mut rng, 4, 40, 1.0);
        // Missing dataset.
        assert!(Session::builder().config(small_config()).build().is_err());
        // Degenerate configuration.
        let bad = MpcgsConfig { em_iterations: 0, ..small_config() };
        assert!(Session::builder().alignment(alignment.clone()).config(bad).build().is_err());
        // Initial tree over the wrong tip count.
        let mut other_rng = Mt19937::new(1);
        let wrong =
            CoalescentSimulator::constant(1.0).unwrap().simulate(&mut other_rng, 7).unwrap();
        assert!(Session::builder()
            .alignment(alignment)
            .config(small_config())
            .initial_tree(wrong)
            .build()
            .is_err());
    }

    fn two_sessions(config: MpcgsConfig) -> (Session, Session) {
        let mut rng = Mt19937::new(4_242);
        let alignment = simulated_alignment(&mut rng, 6, 60, 1.0);
        let a = Session::builder().alignment(alignment.clone()).config(config).build().unwrap();
        let b = Session::builder().alignment(alignment).config(config).build().unwrap();
        (a, b)
    }

    #[test]
    fn runner_matches_session_run_bit_for_bit() {
        let config = MpcgsConfig {
            em_iterations: 2,
            burn_in_draws: 24,
            sample_draws: 120,
            ..small_config()
        };
        let (mut direct, incremental) = two_sessions(config);
        let seed = 77;
        let baseline = direct.run(&mut Mt19937::new(seed)).unwrap();
        let resumable = incremental.into_runner(seed).unwrap().run_to_completion().unwrap();
        assert_eq!(baseline, resumable);
    }

    #[test]
    fn checkpoint_resume_mid_run_is_bit_identical() {
        let config = MpcgsConfig {
            em_iterations: 2,
            burn_in_draws: 24,
            sample_draws: 120,
            ..small_config()
        };
        let (uninterrupted, interrupted) = two_sessions(config);
        let seed = 31;
        let baseline = uninterrupted.into_runner(seed).unwrap().run_to_completion().unwrap();

        // Kill the run mid-flight, round-trip the checkpoint through its
        // JSON text, resume on a freshly built session, and finish.
        let mut runner = interrupted.into_runner(seed).unwrap();
        for _ in 0..13 {
            assert!(!runner.step().unwrap());
        }
        let text = runner.checkpoint().unwrap().to_pretty();
        drop(runner);

        let checkpoint = SessionCheckpoint::parse(&text).unwrap();
        let (_, fresh) = two_sessions(config);
        let resumed = fresh.resume(&checkpoint).unwrap().run_to_completion().unwrap();
        assert_eq!(baseline, resumed);
    }

    #[test]
    fn resume_rejects_mismatched_sessions_with_pointed_errors() {
        let config = MpcgsConfig { em_iterations: 1, ..small_config() };
        let (session, other) = two_sessions(config);
        let runner = session.into_runner(5).unwrap();
        let checkpoint = runner.checkpoint().unwrap();

        // Wrong strategy.
        let mut rng = Mt19937::new(4_242);
        let alignment = simulated_alignment(&mut rng, 6, 60, 1.0);
        let baseline_session = Session::builder()
            .alignment(alignment)
            .strategy(SamplerStrategy::Baseline)
            .config(config)
            .build()
            .unwrap();
        let err = baseline_session.resume(&checkpoint).err().expect("resume must fail").to_string();
        assert!(err.contains("gmh") && err.contains("baseline"), "unpointed error: {err}");

        // Single-chain checkpoint into an ensemble session.
        let mut ensembled = other;
        ensembled.set_ensemble(Some(EnsembleSpec::independent(2)));
        let err = ensembled.resume(&checkpoint).err().expect("resume must fail").to_string();
        assert!(err.contains("single-chain"), "unpointed error: {err}");
    }

    #[test]
    fn finished_runner_rejects_checkpoint_and_steps_as_noop() {
        let config =
            MpcgsConfig { em_iterations: 1, burn_in_draws: 16, sample_draws: 48, ..small_config() };
        let (session, _) = two_sessions(config);
        let mut runner = session.into_runner(9).unwrap();
        runner.run_to_completion().unwrap();
        assert!(runner.is_finished());
        assert!(runner.step().unwrap());
        let err = runner.checkpoint().unwrap_err().to_string();
        assert!(err.contains("finished"), "unpointed error: {err}");
        assert!(runner.report().is_some());
    }

    #[test]
    fn converged_logic() {
        let it = |estimate: f64| EmIterationReport {
            driving_theta: 1.0,
            estimate,
            acceptance_rate: 0.5,
            mean_log_data_likelihood: -5.0,
            counters: RunCounters::default(),
        };
        let single = SessionReport { theta: 1.0, iterations: vec![it(1.0)], device: None };
        assert!(!single.converged(0.1));
        let stable =
            SessionReport { theta: 1.01, iterations: vec![it(1.0), it(1.01)], device: None };
        assert!(stable.converged(0.05));
        assert!(!stable.converged(0.001));
        assert_eq!(SamplerStrategy::Baseline.name(), "baseline");
        assert_eq!(SamplerStrategy::MultiProposal.name(), "gmh");
    }
}
