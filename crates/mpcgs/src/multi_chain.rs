//! The multiple-independent-chains work-around (Section 3, Figure 6) — now a
//! thin compatibility wrapper over the first-class ensemble layer.
//!
//! The conventional way to parallelise an MCMC sampler is to run `P`
//! independent chains — each with its own burn-in — and pool the post-burn-in
//! samples. The pooled sample size is what matters for the estimate, but the
//! *work* performed is `P·B + N` transitions instead of `B + N`, which is the
//! Amdahl-style inefficiency the paper's Figure 6 illustrates and that the
//! multi-proposal sampler removes. [`run_multi_chain`] keeps the historical
//! signature, but the chains now run as an
//! [`ExchangePolicy::Independent`](crate::ensemble::ExchangePolicy) ensemble
//! behind a [`ShardedSampler`](crate::ensemble::ShardedSampler): per-chain
//! RNG streams from one deterministic bank, parallel chain dispatch on the
//! execution backend, and the work accounting derived from the resulting
//! [`EnsembleReport`] rather than re-derived from configuration.

use exec::Backend;

use lamarc::run::RunReport;
use phylo::tree::CoalescentIntervals;
use phylo::{Dataset, PhyloError};

use crate::config::MpcgsConfig;
use crate::ensemble::{EnsembleReport, EnsembleSpec, ExchangePolicy};
use crate::session::{ModelSpec, SamplerStrategy, Session};

/// Configuration of a multi-chain run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MultiChainConfig {
    /// Number of independent chains (the `P` of Section 3).
    pub n_chains: usize,
    /// Burn-in transitions per chain (`B`).
    pub burn_in: usize,
    /// Total pooled samples wanted across all chains (`N`). Each chain
    /// retains `⌈N/P⌉` samples, so when `P` does not divide `N` the pool
    /// slightly overshoots this target rather than undershooting it.
    pub total_samples: usize,
    /// The driving θ.
    pub theta: f64,
}

impl Default for MultiChainConfig {
    fn default() -> Self {
        MultiChainConfig { n_chains: 4, burn_in: 1_000, total_samples: 10_000, theta: 1.0 }
    }
}

/// The outcome of a multi-chain run: the aggregated [`EnsembleReport`] plus
/// the Section 3 work accounting, every figure of which is derived from what
/// the chains actually did.
#[derive(Debug, Clone, PartialEq)]
pub struct MultiChainRun {
    /// The full ensemble report (per-chain run reports, pooled θ estimate,
    /// aggregate counters, cross-chain diagnostics).
    pub report: EnsembleReport,
    /// Pooled post-burn-in interval summaries across all chains
    /// (`P·⌈N/P⌉` entries — at least the requested `N`).
    pub pooled: Vec<CoalescentIntervals>,
    /// Transitions performed per chain (`B + ⌈N/P⌉`).
    pub transitions_per_chain: usize,
    /// Total transitions performed across all chains (`P·B + P·⌈N/P⌉`,
    /// i.e. `P·B + N` when `P` divides `N`).
    pub total_transitions: usize,
}

impl MultiChainRun {
    /// The per-chain unified run reports.
    pub fn chains(&self) -> &[RunReport] {
        &self.report.chains
    }

    /// The idealised per-chain cost `B + N/P` of Section 3 for this run
    /// (what a wall-clock measurement would approach with one chain per
    /// processor), derived from the ensemble report's measured pool and
    /// burn-in rather than from configuration.
    pub fn ideal_parallel_cost(&self) -> f64 {
        self.report.ideal_parallel_cost()
    }

    /// Fraction of all performed work spent in burn-in, derived from the
    /// ensemble report's measured transition counts.
    pub fn burn_in_fraction(&self) -> f64 {
        self.report.burn_in_fraction()
    }
}

/// Run `P` independent baseline-strategy chains over the same dataset and
/// pool their samples. Each chain gets a decorrelated RNG stream derived
/// from `seed` and runs on its own scoped thread — with one chain per
/// processor this is exactly the work-around of Section 3. Implemented as an
/// [`ExchangePolicy::Independent`] ensemble; callers wanting chain-level
/// control (exchange schedules, observers, strategy choice) should use
/// [`crate::ensemble::EnsembleBuilder`] directly.
pub fn run_multi_chain(
    dataset: &Dataset,
    model: ModelSpec,
    config: &MultiChainConfig,
    seed: u64,
) -> Result<MultiChainRun, PhyloError> {
    if config.n_chains == 0 {
        return Err(PhyloError::InvalidParameter {
            name: "n_chains",
            value: 0.0,
            constraint: "at least one chain",
        });
    }
    let per_chain_samples = config.total_samples.div_ceil(config.n_chains);
    let chain_config = MpcgsConfig {
        initial_theta: config.theta,
        em_iterations: 1,
        burn_in_draws: config.burn_in,
        sample_draws: per_chain_samples,
        thinning: 1,
        // Within-chain work stays serial; the parallelism is across chains
        // (one scoped thread per chain), exactly as the work-around runs one
        // chain per processor.
        backend: Backend::Serial,
        ..MpcgsConfig::default()
    };
    let spec = EnsembleSpec {
        n_chains: config.n_chains,
        exchange: ExchangePolicy::Independent,
        ensemble_seed: seed,
        // One scoped thread per chain — the work-around's one chain per
        // processor — while each chain's inner loops stay serial.
        chain_dispatch: Some(Backend::Rayon),
    };

    let mut session = Session::builder()
        .dataset(dataset.clone())
        .model(model)
        .strategy(SamplerStrategy::Baseline)
        .config(chain_config)
        .ensemble(spec)
        .build()?;
    // Chains consume their own deterministic streams; the host RNG is
    // call-compatibility only.
    let report = session.run_ensemble(&mut mcmc::rng::host_rng(1))?;

    // Chain dispatch above runs chains on scoped threads, but the work
    // accounting is what Figure 6 cares about: every chain paid its own
    // burn-in.
    let pooled = report.pooled_interval_summaries();
    let transitions_per_chain = report.transitions_per_chain();
    let total_transitions = report.total_transitions();
    Ok(MultiChainRun { report, pooled, transitions_per_chain, total_transitions })
}

#[cfg(test)]
mod tests {
    use super::*;
    use coalescent::{CoalescentSimulator, SequenceSimulator};
    use lamarc::mle::{maximize_relative_likelihood, GradientAscentConfig, RelativeLikelihood};
    use mcmc::diagnostics::gelman_rubin;
    use mcmc::rng::Mt19937;
    use phylo::model::Jc69;
    use phylo::Alignment;

    fn simulated_dataset(seed: u32, n: usize, sites: usize, theta: f64) -> Dataset {
        let mut rng = Mt19937::new(seed);
        let tree = CoalescentSimulator::constant(theta).unwrap().simulate(&mut rng, n).unwrap();
        let alignment: Alignment = SequenceSimulator::new(Jc69::new(), sites, 1.0)
            .unwrap()
            .simulate(&mut rng, &tree)
            .unwrap();
        Dataset::single(alignment)
    }

    #[test]
    fn pooled_samples_and_work_accounting() {
        let dataset = simulated_dataset(61, 5, 60, 1.0);
        let config = MultiChainConfig { n_chains: 3, burn_in: 50, total_samples: 300, theta: 1.0 };
        let run = run_multi_chain(&dataset, ModelSpec::Jc69, &config, 99).unwrap();
        assert_eq!(run.chains().len(), 3);
        assert_eq!(run.pooled.len(), 300);
        assert_eq!(run.transitions_per_chain, 50 + 100);
        assert_eq!(run.total_transitions, 450);
        // The work accounting now derives from the ensemble report and
        // matches the idealised arithmetic B + N/P.
        assert_eq!(run.ideal_parallel_cost(), 150.0);
        assert!((run.burn_in_fraction() - 150.0 / 450.0).abs() < 1e-12);
        // Every chain is a unified run report with full counters; no swaps
        // happen between independent chains.
        for chain in run.chains() {
            assert_eq!(chain.counters.draws, 150);
            assert!(chain.acceptance_rate() > 0.0);
        }
        assert_eq!(run.report.counters.swap_attempts, 0);
        // The ensemble layer also hands back the pooled estimate directly.
        assert!(run.report.pooled_theta().unwrap() > 0.0);
    }

    #[test]
    fn chains_converge_to_the_same_distribution() {
        let dataset = simulated_dataset(67, 6, 80, 1.0);
        let config =
            MultiChainConfig { n_chains: 3, burn_in: 300, total_samples: 2_400, theta: 1.0 };
        let run = run_multi_chain(&dataset, ModelSpec::Jc69, &config, 7).unwrap();
        // Gelman-Rubin on the per-chain tree depths.
        let depth_chains: Vec<Vec<f64>> = run
            .chains()
            .iter()
            .map(|c| c.samples.iter().map(|s| s.intervals.depth()).collect())
            .collect();
        let r_hat = gelman_rubin(&depth_chains).unwrap();
        assert!(r_hat < 1.2, "chains disagree: R-hat = {r_hat}");
        // The report's own R-hat (over log-likelihood traces) agrees.
        let report_r_hat = run.report.r_hat().unwrap();
        assert!(report_r_hat < 1.2, "report R-hat = {report_r_hat}");

        // The pooled estimate is usable by the maximiser.
        let rl = RelativeLikelihood::new(1.0, &run.pooled).unwrap();
        let mle = maximize_relative_likelihood(&rl, &GradientAscentConfig::default());
        assert!(mle > 0.0 && mle.is_finite());
    }

    #[test]
    fn more_chains_mean_more_total_burn_in_work() {
        // The point of Figure 6: pooled sample size is fixed, but the burn-in
        // work scales with the chain count.
        let dataset = simulated_dataset(71, 4, 40, 1.0);
        let mut totals = Vec::new();
        for p in [1usize, 2, 4] {
            let config =
                MultiChainConfig { n_chains: p, burn_in: 40, total_samples: 120, theta: 1.0 };
            let run = run_multi_chain(&dataset, ModelSpec::Jc69, &config, 3).unwrap();
            totals.push(run.total_transitions);
        }
        assert!(totals[0] < totals[1] && totals[1] < totals[2]);
    }

    #[test]
    fn zero_chains_is_rejected() {
        let dataset = simulated_dataset(73, 4, 40, 1.0);
        let config = MultiChainConfig { n_chains: 0, ..Default::default() };
        assert!(run_multi_chain(&dataset, ModelSpec::Jc69, &config, 1).is_err());
    }
}
