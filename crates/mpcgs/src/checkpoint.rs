//! The versioned checkpoint codec: freeze an in-flight θ-estimation run to
//! JSON and thaw it bit-identically.
//!
//! A [`SessionCheckpoint`] captures everything a
//! [`SessionRunner`](crate::session::SessionRunner) needs to continue a run
//! exactly where it stopped: the EM loop position (round, driving θ, the
//! per-round records accumulated so far), the host RNG position, and the
//! full chain state — one [`ChainSnapshot`] for a single-chain session, an
//! [`EnsembleSnapshot`] (plus the [`EnsembleSpec`] it was taken under) for a
//! sharded one. The format is a hand-rolled JSON document built on the
//! workspace [`codec`] crate — no serde, no external dependencies — with two
//! encoding rules that make resume *bit*-identical rather than merely
//! approximate:
//!
//! * every `f64` goes through [`Json::exact_f64`]: finite values use the
//!   shortest decimal that round-trips to the same bits, non-finite values
//!   are spelled as `"f64:0x…"` bit patterns;
//! * every `u64` (RNG positions, stream epochs, seeds) is a decimal string
//!   via [`Json::u64_text`], because a JSON number is an `f64` and cannot
//!   hold the full 64-bit range.
//!
//! # Versioning rules
//!
//! The document carries `"format": "mpcgs-checkpoint/v1"`. A reader rejects
//! any other format string with a pointed error (no silent best-effort
//! parsing). Compatible extensions — new optional fields — keep the version;
//! any change that alters the meaning of an existing field bumps it, and a
//! bumped version is a new format: old readers refuse it, new readers may
//! choose to translate old documents explicitly.
//!
//! Every decode error names the field it failed on, so a truncated or
//! hand-edited checkpoint fails loudly at load time instead of corrupting a
//! resumed run.

use codec::Json;
use exec::Backend;
use lamarc::run::{ChainSnapshot, RunCounters};
use lamarc::sampler::GenealogySample;
use phylo::tree::{CoalescentIntervals, Interval};
use phylo::{GeneTree, NodeRecord, PhyloError};

use crate::ensemble::{EnsembleSnapshot, EnsembleSpec, ExchangePolicy};
use crate::session::EmIterationReport;

/// The format tag every v1 checkpoint document carries.
pub const CHECKPOINT_FORMAT: &str = "mpcgs-checkpoint/v1";

/// A frozen θ-estimation run: the EM loop position plus the full chain (or
/// ensemble) state, ready to be written to disk and resumed bit-identically.
#[derive(Debug, Clone, PartialEq)]
pub struct SessionCheckpoint {
    /// The sampler strategy the run was using (`"baseline"` / `"gmh"`) —
    /// checked on resume so a checkpoint cannot silently continue under a
    /// different kernel.
    pub strategy: String,
    /// The host RNG seed the run was started with.
    pub seed: u32,
    /// Outputs the host RNG has emitted so far (its absolute position).
    pub host_rng_position: u64,
    /// The driving θ of the EM round in flight.
    pub theta: f64,
    /// The EM round in flight (0-based).
    pub em_round: usize,
    /// Completed EM rounds' records.
    pub iterations: Vec<EmIterationReport>,
    /// The chain state: single chain or whole ensemble.
    pub state: CheckpointState,
}

/// The chain half of a [`SessionCheckpoint`].
#[derive(Debug, Clone, PartialEq)]
pub enum CheckpointState {
    /// A plain single-chain session. Boxed: a full chain snapshot dwarfs the
    /// ensemble variant (which holds per-rung snapshots behind a `Vec`).
    SingleChain(Box<ChainSnapshot>),
    /// A sharded session: the spec the ensemble ran under (shape-checked on
    /// resume) plus the per-rung snapshot.
    Ensemble {
        /// The ensemble specification at checkpoint time.
        spec: EnsembleSpec,
        /// The frozen ensemble.
        snapshot: EnsembleSnapshot,
    },
}

fn decode_err(message: impl Into<String>) -> PhyloError {
    PhyloError::InvalidState { message: message.into() }
}

fn object(fields: Vec<(&str, Json)>) -> Json {
    Json::Object(fields.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
}

fn field<'a>(json: &'a Json, key: &str, context: &str) -> Result<&'a Json, PhyloError> {
    json.get(key).ok_or_else(|| decode_err(format!("checkpoint {context}: missing field {key:?}")))
}

fn decode_f64(json: &Json, key: &str, context: &str) -> Result<f64, PhyloError> {
    field(json, key, context)?
        .as_exact_f64()
        .ok_or_else(|| decode_err(format!("checkpoint {context}: field {key:?} is not an f64")))
}

fn decode_u64(json: &Json, key: &str, context: &str) -> Result<u64, PhyloError> {
    field(json, key, context)?.as_u64_text().ok_or_else(|| {
        decode_err(format!("checkpoint {context}: field {key:?} is not a u64 decimal string"))
    })
}

fn decode_usize(json: &Json, key: &str, context: &str) -> Result<usize, PhyloError> {
    let x = field(json, key, context)?
        .as_f64()
        .ok_or_else(|| decode_err(format!("checkpoint {context}: field {key:?} is not a count")))?;
    // mpcgs-analyze: allow(d5, reason = "integrality validation: fract() of a JSON-decoded count is exactly 0.0 iff the value is an integer")
    if x < 0.0 || x.fract() != 0.0 {
        return Err(decode_err(format!(
            "checkpoint {context}: field {key:?} is not a non-negative integer (got {x})"
        )));
    }
    Ok(x as usize)
}

fn decode_bool(json: &Json, key: &str, context: &str) -> Result<bool, PhyloError> {
    field(json, key, context)?
        .as_bool()
        .ok_or_else(|| decode_err(format!("checkpoint {context}: field {key:?} is not a bool")))
}

fn decode_array<'a>(json: &'a Json, key: &str, context: &str) -> Result<&'a [Json], PhyloError> {
    field(json, key, context)?
        .as_array()
        .ok_or_else(|| decode_err(format!("checkpoint {context}: field {key:?} is not an array")))
}

// ---------------------------------------------------------------------------
// Trees
// ---------------------------------------------------------------------------

/// Encode a genealogy as its exact arena layout: one record per node slot
/// (parent / children / time / label) plus the root id, so decoding restores
/// node ids — and therefore every id-sensitive downstream draw — unchanged.
pub fn tree_to_json(tree: &GeneTree) -> Json {
    let nodes: Vec<Json> = tree
        .node_records()
        .into_iter()
        .map(|record| {
            object(vec![
                ("parent", record.parent.map_or(Json::Null, |p| Json::Number(p as f64))),
                (
                    "children",
                    record.children.map_or(Json::Null, |(a, b)| {
                        Json::Array(vec![Json::Number(a as f64), Json::Number(b as f64)])
                    }),
                ),
                ("time", Json::exact_f64(record.time)),
                ("label", record.label.map_or(Json::Null, Json::String)),
            ])
        })
        .collect();
    object(vec![("root", Json::Number(tree.root() as f64)), ("nodes", Json::Array(nodes))])
}

/// Decode a genealogy previously encoded by [`tree_to_json`], re-validating
/// the arena invariants.
pub fn tree_from_json(json: &Json) -> Result<GeneTree, PhyloError> {
    let context = "tree";
    let root = decode_usize(json, "root", context)?;
    let mut records = Vec::new();
    for node in decode_array(json, "nodes", context)? {
        let parent = match field(node, "parent", context)? {
            Json::Null => None,
            other => Some(other.as_f64().ok_or_else(|| {
                decode_err("checkpoint tree: node parent is neither null nor an id")
            })? as usize),
        };
        let children = match field(node, "children", context)? {
            Json::Null => None,
            Json::Array(pair) if pair.len() == 2 => {
                let mut ids = pair.iter().map(|x| x.as_f64().map(|v| v as usize));
                match (ids.next().flatten(), ids.next().flatten()) {
                    (Some(a), Some(b)) => Some((a, b)),
                    _ => {
                        return Err(decode_err(
                            "checkpoint tree: node children must be a pair of ids",
                        ))
                    }
                }
            }
            _ => {
                return Err(decode_err(
                    "checkpoint tree: node children is neither null nor a pair of ids",
                ))
            }
        };
        let time = decode_f64(node, "time", context)?;
        let label = match field(node, "label", context)? {
            Json::Null => None,
            other => Some(
                other
                    .as_str()
                    .ok_or_else(|| {
                        decode_err("checkpoint tree: node label is neither null nor a string")
                    })?
                    .to_string(),
            ),
        };
        records.push(NodeRecord { parent, children, time, label });
    }
    GeneTree::from_node_records(records, root)
}

fn optional_tree_to_json(tree: &Option<GeneTree>) -> Json {
    tree.as_ref().map_or(Json::Null, tree_to_json)
}

fn optional_tree_from_json(json: &Json) -> Result<Option<GeneTree>, PhyloError> {
    match json {
        Json::Null => Ok(None),
        other => Ok(Some(tree_from_json(other)?)),
    }
}

// ---------------------------------------------------------------------------
// Samples and counters
// ---------------------------------------------------------------------------

fn sample_to_json(sample: &GenealogySample) -> Json {
    let intervals: Vec<Json> = sample
        .intervals
        .intervals()
        .iter()
        .map(|iv| {
            object(vec![
                ("start", Json::exact_f64(iv.start)),
                ("length", Json::exact_f64(iv.length)),
                ("lineages", Json::Number(iv.lineages as f64)),
                ("coalescence", Json::Bool(iv.ends_in_coalescence)),
            ])
        })
        .collect();
    object(vec![
        ("intervals", Json::Array(intervals)),
        ("log_data_likelihood", Json::exact_f64(sample.log_data_likelihood)),
    ])
}

fn sample_from_json(json: &Json) -> Result<GenealogySample, PhyloError> {
    let context = "sample";
    let mut intervals = Vec::new();
    for iv in decode_array(json, "intervals", context)? {
        intervals.push(Interval {
            start: decode_f64(iv, "start", "interval")?,
            length: decode_f64(iv, "length", "interval")?,
            lineages: decode_usize(iv, "lineages", "interval")?,
            ends_in_coalescence: decode_bool(iv, "coalescence", "interval")?,
        });
    }
    Ok(GenealogySample {
        intervals: CoalescentIntervals::from_intervals(intervals),
        log_data_likelihood: decode_f64(json, "log_data_likelihood", context)?,
    })
}

fn counters_to_json(counters: &RunCounters) -> Json {
    object(vec![
        ("iterations", Json::Number(counters.iterations as f64)),
        ("proposals_generated", Json::Number(counters.proposals_generated as f64)),
        ("likelihood_evaluations", Json::Number(counters.likelihood_evaluations as f64)),
        ("draws", Json::Number(counters.draws as f64)),
        ("accepted", Json::Number(counters.accepted as f64)),
        ("nodes_repruned", Json::Number(counters.nodes_repruned as f64)),
        ("nodes_full_pruned", Json::Number(counters.nodes_full_pruned as f64)),
        ("nodes_committed", Json::Number(counters.nodes_committed as f64)),
        ("generator_cache_hits", Json::Number(counters.generator_cache_hits as f64)),
        ("matrix_cache_hits", Json::Number(counters.matrix_cache_hits as f64)),
        ("matrix_cache_misses", Json::Number(counters.matrix_cache_misses as f64)),
        ("workspace_commits", Json::Number(counters.workspace_commits as f64)),
        ("swap_attempts", Json::Number(counters.swap_attempts as f64)),
        ("swaps_accepted", Json::Number(counters.swaps_accepted as f64)),
    ])
}

fn counters_from_json(json: &Json) -> Result<RunCounters, PhyloError> {
    let context = "counters";
    Ok(RunCounters {
        iterations: decode_usize(json, "iterations", context)?,
        proposals_generated: decode_usize(json, "proposals_generated", context)?,
        likelihood_evaluations: decode_usize(json, "likelihood_evaluations", context)?,
        draws: decode_usize(json, "draws", context)?,
        accepted: decode_usize(json, "accepted", context)?,
        nodes_repruned: decode_usize(json, "nodes_repruned", context)?,
        nodes_full_pruned: decode_usize(json, "nodes_full_pruned", context)?,
        nodes_committed: decode_usize(json, "nodes_committed", context)?,
        generator_cache_hits: decode_usize(json, "generator_cache_hits", context)?,
        matrix_cache_hits: decode_usize(json, "matrix_cache_hits", context)?,
        matrix_cache_misses: decode_usize(json, "matrix_cache_misses", context)?,
        workspace_commits: decode_usize(json, "workspace_commits", context)?,
        swap_attempts: decode_usize(json, "swap_attempts", context)?,
        swaps_accepted: decode_usize(json, "swaps_accepted", context)?,
    })
}

// ---------------------------------------------------------------------------
// Chain snapshots
// ---------------------------------------------------------------------------

/// Encode one in-flight chain.
pub fn chain_snapshot_to_json(snapshot: &ChainSnapshot) -> Json {
    object(vec![
        ("tree", tree_to_json(&snapshot.tree)),
        (
            "trace_values",
            Json::Array(snapshot.trace_values.iter().map(|&x| Json::exact_f64(x)).collect()),
        ),
        ("trace_burn_in", Json::Number(snapshot.trace_burn_in as f64)),
        ("samples", Json::Array(snapshot.samples.iter().map(sample_to_json).collect())),
        ("counters", counters_to_json(&snapshot.counters)),
        ("draws_done", Json::Number(snapshot.draws_done as f64)),
        ("swapped_loglik", snapshot.swapped_loglik.map_or(Json::Null, Json::exact_f64)),
        ("stream_epoch", Json::u64_text(snapshot.stream_epoch)),
        ("engine_cache_tree", optional_tree_to_json(&snapshot.engine_cache_tree)),
    ])
}

/// Decode one in-flight chain.
pub fn chain_snapshot_from_json(json: &Json) -> Result<ChainSnapshot, PhyloError> {
    let context = "chain";
    let mut trace_values = Vec::new();
    for (i, value) in decode_array(json, "trace_values", context)?.iter().enumerate() {
        trace_values.push(value.as_exact_f64().ok_or_else(|| {
            decode_err(format!("checkpoint chain: trace value {i} is not an f64"))
        })?);
    }
    let samples = decode_array(json, "samples", context)?
        .iter()
        .map(sample_from_json)
        .collect::<Result<Vec<_>, _>>()?;
    let swapped_loglik = match field(json, "swapped_loglik", context)? {
        Json::Null => None,
        other => Some(other.as_exact_f64().ok_or_else(|| {
            decode_err("checkpoint chain: swapped_loglik is neither null nor an f64")
        })?),
    };
    Ok(ChainSnapshot {
        tree: tree_from_json(field(json, "tree", context)?)?,
        trace_values,
        trace_burn_in: decode_usize(json, "trace_burn_in", context)?,
        samples,
        counters: counters_from_json(field(json, "counters", context)?)?,
        draws_done: decode_usize(json, "draws_done", context)?,
        swapped_loglik,
        stream_epoch: decode_u64(json, "stream_epoch", context)?,
        engine_cache_tree: optional_tree_from_json(field(json, "engine_cache_tree", context)?)?,
    })
}

// ---------------------------------------------------------------------------
// Ensemble spec and snapshot
// ---------------------------------------------------------------------------

/// Encode an [`EnsembleSpec`] (exchange policy included).
pub fn ensemble_spec_to_json(spec: &EnsembleSpec) -> Json {
    let exchange = match &spec.exchange {
        ExchangePolicy::Independent => object(vec![("policy", Json::string("independent"))]),
        ExchangePolicy::TemperatureLadder { temperatures, swap_interval } => object(vec![
            ("policy", Json::string("ladder")),
            (
                "temperatures",
                Json::Array(temperatures.iter().map(|&t| Json::exact_f64(t)).collect()),
            ),
            ("swap_interval", Json::Number(*swap_interval as f64)),
        ]),
    };
    object(vec![
        ("n_chains", Json::Number(spec.n_chains as f64)),
        ("exchange", exchange),
        ("ensemble_seed", Json::u64_text(spec.ensemble_seed)),
        ("chain_dispatch", spec.chain_dispatch.map_or(Json::Null, |b| Json::string(b.to_string()))),
    ])
}

/// Decode an [`EnsembleSpec`], re-validating it (rung shape, cold rung 0,
/// swap interval) so a hand-edited document cannot smuggle in an invalid
/// ladder.
pub fn ensemble_spec_from_json(json: &Json) -> Result<EnsembleSpec, PhyloError> {
    let context = "ensemble spec";
    let exchange_json = field(json, "exchange", context)?;
    let policy = field(exchange_json, "policy", context)?
        .as_str()
        .ok_or_else(|| decode_err("checkpoint ensemble spec: exchange policy is not a string"))?;
    let exchange = match policy {
        "independent" => ExchangePolicy::Independent,
        "ladder" => {
            let mut temperatures = Vec::new();
            for (k, t) in decode_array(exchange_json, "temperatures", context)?.iter().enumerate() {
                temperatures.push(t.as_exact_f64().ok_or_else(|| {
                    decode_err(format!("checkpoint ensemble spec: rung {k} is not an f64"))
                })?);
            }
            ExchangePolicy::TemperatureLadder {
                temperatures,
                swap_interval: decode_usize(exchange_json, "swap_interval", context)?,
            }
        }
        other => {
            return Err(decode_err(format!(
                "checkpoint ensemble spec: unknown exchange policy {other:?} \
                 (expected \"independent\" or \"ladder\")"
            )))
        }
    };
    let chain_dispatch = match field(json, "chain_dispatch", context)? {
        Json::Null => None,
        other => {
            let name = other.as_str().ok_or_else(|| {
                decode_err("checkpoint ensemble spec: chain_dispatch is neither null nor a string")
            })?;
            Some(name.parse::<Backend>().map_err(|e| {
                decode_err(format!("checkpoint ensemble spec: bad chain_dispatch: {e}"))
            })?)
        }
    };
    let spec = EnsembleSpec {
        n_chains: decode_usize(json, "n_chains", context)?,
        exchange,
        ensemble_seed: decode_u64(json, "ensemble_seed", context)?,
        chain_dispatch,
    };
    spec.validate()?;
    Ok(spec)
}

/// Encode a whole frozen ensemble.
pub fn ensemble_snapshot_to_json(snapshot: &EnsembleSnapshot) -> Json {
    object(vec![
        ("chains", Json::Array(snapshot.chains.iter().map(chain_snapshot_to_json).collect())),
        (
            "chain_rng_positions",
            Json::Array(snapshot.chain_rng_positions.iter().map(|&p| Json::u64_text(p)).collect()),
        ),
        ("swap_rng_position", Json::u64_text(snapshot.swap_rng_position)),
        ("swap_attempts", Json::Number(snapshot.swap_attempts as f64)),
        ("swaps_accepted", Json::Number(snapshot.swaps_accepted as f64)),
        ("driving_theta", Json::exact_f64(snapshot.driving_theta)),
    ])
}

/// Decode a whole frozen ensemble.
pub fn ensemble_snapshot_from_json(json: &Json) -> Result<EnsembleSnapshot, PhyloError> {
    let context = "ensemble";
    let chains = decode_array(json, "chains", context)?
        .iter()
        .map(chain_snapshot_from_json)
        .collect::<Result<Vec<_>, _>>()?;
    let mut chain_rng_positions = Vec::new();
    for (k, p) in decode_array(json, "chain_rng_positions", context)?.iter().enumerate() {
        chain_rng_positions.push(p.as_u64_text().ok_or_else(|| {
            decode_err(format!(
                "checkpoint ensemble: host RNG position {k} is not a u64 decimal string"
            ))
        })?);
    }
    Ok(EnsembleSnapshot {
        chains,
        chain_rng_positions,
        swap_rng_position: decode_u64(json, "swap_rng_position", context)?,
        swap_attempts: decode_usize(json, "swap_attempts", context)?,
        swaps_accepted: decode_usize(json, "swaps_accepted", context)?,
        driving_theta: decode_f64(json, "driving_theta", context)?,
    })
}

// ---------------------------------------------------------------------------
// EM iteration records
// ---------------------------------------------------------------------------

fn em_iteration_to_json(report: &EmIterationReport) -> Json {
    object(vec![
        ("driving_theta", Json::exact_f64(report.driving_theta)),
        ("estimate", Json::exact_f64(report.estimate)),
        ("acceptance_rate", Json::exact_f64(report.acceptance_rate)),
        ("mean_log_data_likelihood", Json::exact_f64(report.mean_log_data_likelihood)),
        ("counters", counters_to_json(&report.counters)),
    ])
}

fn em_iteration_from_json(json: &Json) -> Result<EmIterationReport, PhyloError> {
    let context = "EM iteration";
    Ok(EmIterationReport {
        driving_theta: decode_f64(json, "driving_theta", context)?,
        estimate: decode_f64(json, "estimate", context)?,
        acceptance_rate: decode_f64(json, "acceptance_rate", context)?,
        mean_log_data_likelihood: decode_f64(json, "mean_log_data_likelihood", context)?,
        counters: counters_from_json(field(json, "counters", context)?)?,
    })
}

// ---------------------------------------------------------------------------
// The top-level document
// ---------------------------------------------------------------------------

impl SessionCheckpoint {
    /// Encode as a JSON document (format tag included).
    pub fn to_json(&self) -> Json {
        let state = match &self.state {
            CheckpointState::SingleChain(chain) => object(vec![
                ("mode", Json::string("single")),
                ("chain", chain_snapshot_to_json(chain)),
            ]),
            CheckpointState::Ensemble { spec, snapshot } => object(vec![
                ("mode", Json::string("ensemble")),
                ("spec", ensemble_spec_to_json(spec)),
                ("ensemble", ensemble_snapshot_to_json(snapshot)),
            ]),
        };
        object(vec![
            ("format", Json::string(CHECKPOINT_FORMAT)),
            ("strategy", Json::string(self.strategy.clone())),
            ("seed", Json::Number(self.seed as f64)),
            ("host_rng_position", Json::u64_text(self.host_rng_position)),
            ("theta", Json::exact_f64(self.theta)),
            ("em_round", Json::Number(self.em_round as f64)),
            ("iterations", Json::Array(self.iterations.iter().map(em_iteration_to_json).collect())),
            ("state", state),
        ])
    }

    /// The pretty-printed document (what `--checkpoint-path` writes).
    pub fn to_pretty(&self) -> String {
        self.to_json().to_pretty()
    }

    /// Decode a document, rejecting unknown format versions with a pointed
    /// error.
    pub fn from_json(json: &Json) -> Result<SessionCheckpoint, PhyloError> {
        let context = "document";
        let format = field(json, "format", context)?
            .as_str()
            .ok_or_else(|| decode_err("checkpoint document: format tag is not a string"))?;
        if format != CHECKPOINT_FORMAT {
            return Err(decode_err(format!(
                "checkpoint version mismatch: this build reads {CHECKPOINT_FORMAT:?} but the \
                 document declares {format:?}"
            )));
        }
        let strategy = field(json, "strategy", context)?
            .as_str()
            .ok_or_else(|| decode_err("checkpoint document: strategy is not a string"))?
            .to_string();
        let iterations = decode_array(json, "iterations", context)?
            .iter()
            .map(em_iteration_from_json)
            .collect::<Result<Vec<_>, _>>()?;
        let state_json = field(json, "state", context)?;
        let mode = field(state_json, "mode", "state")?
            .as_str()
            .ok_or_else(|| decode_err("checkpoint state: mode is not a string"))?;
        let state = match mode {
            "single" => CheckpointState::SingleChain(Box::new(chain_snapshot_from_json(field(
                state_json, "chain", "state",
            )?)?)),
            "ensemble" => CheckpointState::Ensemble {
                spec: ensemble_spec_from_json(field(state_json, "spec", "state")?)?,
                snapshot: ensemble_snapshot_from_json(field(state_json, "ensemble", "state")?)?,
            },
            other => {
                return Err(decode_err(format!(
                    "checkpoint state: unknown mode {other:?} (expected \"single\" or \
                     \"ensemble\")"
                )))
            }
        };
        Ok(SessionCheckpoint {
            strategy,
            seed: decode_usize(json, "seed", context)? as u32,
            host_rng_position: decode_u64(json, "host_rng_position", context)?,
            theta: decode_f64(json, "theta", context)?,
            em_round: decode_usize(json, "em_round", context)?,
            iterations,
            state,
        })
    }

    /// Parse a document from its JSON text.
    pub fn parse(text: &str) -> Result<SessionCheckpoint, PhyloError> {
        let json = Json::parse(text)
            .map_err(|e| decode_err(format!("checkpoint document is not valid JSON: {e}")))?;
        SessionCheckpoint::from_json(&json)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use phylo::tree::TreeBuilder;

    fn tiny_tree() -> GeneTree {
        let mut builder = TreeBuilder::new();
        let a = builder.add_tip("a", 0.0);
        let b = builder.add_tip("b", 0.0);
        let c = builder.add_tip("c", 0.0);
        let ab = builder.join(a, b, 0.25);
        builder.join(ab, c, 1.5);
        builder.build().unwrap()
    }

    fn sample_snapshot() -> ChainSnapshot {
        let tree = tiny_tree();
        ChainSnapshot {
            tree: tree.clone(),
            trace_values: vec![-12.5, f64::NEG_INFINITY, -11.0 + 1e-13],
            trace_burn_in: 1,
            samples: vec![GenealogySample {
                intervals: tree.intervals(),
                log_data_likelihood: -11.0,
            }],
            counters: RunCounters {
                iterations: 3,
                draws: 3,
                accepted: 2,
                matrix_cache_hits: 7,
                ..Default::default()
            },
            draws_done: 3,
            swapped_loglik: Some(-10.25),
            stream_epoch: u64::MAX - 5,
            engine_cache_tree: Some(tree),
        }
    }

    #[test]
    fn chain_snapshot_round_trips_bit_exactly() {
        let snapshot = sample_snapshot();
        let json = chain_snapshot_to_json(&snapshot);
        let text = json.to_pretty();
        let back = chain_snapshot_from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(snapshot, back);
        // The non-finite trace value and the > 2^53 epoch survive exactly.
        assert_eq!(back.trace_values[1], f64::NEG_INFINITY);
        assert_eq!(back.stream_epoch, u64::MAX - 5);
    }

    #[test]
    fn ensemble_spec_round_trips_both_policies() {
        let independent = EnsembleSpec::independent(3);
        let json = ensemble_spec_to_json(&independent);
        assert_eq!(ensemble_spec_from_json(&json).unwrap(), independent);

        let ladder = EnsembleSpec {
            n_chains: 4,
            exchange: ExchangePolicy::geometric_ladder(4, 8.0, 5).unwrap(),
            ensemble_seed: u64::MAX,
            chain_dispatch: Some(Backend::Rayon),
        };
        let text = ensemble_spec_to_json(&ladder).to_pretty();
        let back = ensemble_spec_from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back, ladder);
    }

    #[test]
    fn decoding_rejects_shape_and_version_mismatches_with_pointed_errors() {
        // An invalid ladder (hot rung first) is re-validated on decode.
        let bad_spec = object(vec![
            ("n_chains", Json::Number(2.0)),
            (
                "exchange",
                object(vec![
                    ("policy", Json::string("ladder")),
                    ("temperatures", Json::Array(vec![Json::Number(2.0), Json::Number(4.0)])),
                    ("swap_interval", Json::Number(1.0)),
                ]),
            ),
            ("ensemble_seed", Json::u64_text(7)),
            ("chain_dispatch", Json::Null),
        ]);
        let err = ensemble_spec_from_json(&bad_spec).unwrap_err().to_string();
        assert!(err.contains("cold chain"), "unpointed error: {err}");

        // A rung-count mismatch against the declared chain count.
        let short = object(vec![
            ("n_chains", Json::Number(3.0)),
            (
                "exchange",
                object(vec![
                    ("policy", Json::string("ladder")),
                    ("temperatures", Json::Array(vec![Json::Number(1.0), Json::Number(2.0)])),
                    ("swap_interval", Json::Number(1.0)),
                ]),
            ),
            ("ensemble_seed", Json::u64_text(7)),
            ("chain_dispatch", Json::Null),
        ]);
        let err = ensemble_spec_from_json(&short).unwrap_err().to_string();
        assert!(err.contains("2 rungs") && err.contains("3 chains"), "unpointed error: {err}");

        // A future format version is refused, naming both versions.
        let future = object(vec![("format", Json::string("mpcgs-checkpoint/v9"))]);
        let err = SessionCheckpoint::from_json(&future).unwrap_err().to_string();
        assert!(err.contains("mpcgs-checkpoint/v1") && err.contains("mpcgs-checkpoint/v9"));

        // A truncated chain names the missing field.
        let err = chain_snapshot_from_json(&object(vec![("tree", tree_to_json(&tiny_tree()))]))
            .unwrap_err()
            .to_string();
        assert!(err.contains("trace_values"), "unpointed error: {err}");
    }

    #[test]
    fn full_document_round_trips() {
        let checkpoint = SessionCheckpoint {
            strategy: "gmh".to_string(),
            seed: 42,
            host_rng_position: (1 << 60) + 3,
            theta: 0.1 + 0.2, // deliberately not representable as written
            em_round: 1,
            iterations: vec![EmIterationReport {
                driving_theta: 0.5,
                estimate: 0.731,
                acceptance_rate: 0.25,
                mean_log_data_likelihood: f64::NAN,
                counters: RunCounters { draws: 11, ..Default::default() },
            }],
            state: CheckpointState::Ensemble {
                spec: EnsembleSpec::independent(2),
                snapshot: EnsembleSnapshot {
                    chains: vec![sample_snapshot(), sample_snapshot()],
                    chain_rng_positions: vec![123, u64::MAX],
                    swap_rng_position: 0,
                    swap_attempts: 4,
                    swaps_accepted: 1,
                    driving_theta: 0.1 + 0.2,
                },
            },
        };
        let text = checkpoint.to_pretty();
        let back = SessionCheckpoint::parse(&text).unwrap();
        // NaN != NaN, so compare the NaN field by bits and the rest directly.
        assert!(back.iterations[0].mean_log_data_likelihood.is_nan());
        let mut comparable = back.clone();
        comparable.iterations[0].mean_log_data_likelihood = 0.0;
        let mut expected = checkpoint.clone();
        expected.iterations[0].mean_log_data_likelihood = 0.0;
        assert_eq!(comparable, expected);
        assert_eq!(back.host_rng_position, (1 << 60) + 3);
        assert_eq!(back.theta.to_bits(), (0.1 + 0.2_f64).to_bits());
    }
}
