//! The ensemble layer: sharded multi-chain sampling as a first-class
//! [`GenealogySampler`].
//!
//! The paper's headline scaling axis is running many communicating genealogy
//! chains at once. This module promotes "many chains" from the historical
//! work-around (a free function spawning ad-hoc threads) into a designed API:
//!
//! * [`ShardedSampler`] owns `N` per-chain sampler strategies (each built by
//!   [`Session::make_chain_sampler`]) plus one deterministic host RNG stream
//!   per chain (from [`mcmc::rng::StreamBank`]), and advances the ensemble
//!   one dispatch *segment* at a time — the iterations between
//!   synchronization points (`swap_interval` on a ladder; the whole run for
//!   independent chains) — round-robin on [`Backend::Serial`], one scoped
//!   worker thread per chain on [`Backend::Rayon`] ([`Backend::map_mut`]).
//!   Because every chain owns its RNG stream and likelihood engine, the two
//!   backends are **bit-identical**.
//! * [`ExchangePolicy`] decides what the chains share:
//!   [`ExchangePolicy::Independent`] replicates the target across chains and
//!   pools their post-burn-in samples; [`ExchangePolicy::TemperatureLadder`]
//!   runs MC³-style replica exchange — rung `k` samples the power posterior
//!   `P(D|G)^βₖ · P(G|θ)` and adjacent rungs attempt Metropolis state swaps
//!   in log domain every `swap_interval` rounds.
//! * [`EnsembleReport`] aggregates the per-chain [`RunReport`]s: pooled θ
//!   estimate, swap-acceptance counters (also folded into the unified
//!   [`RunCounters`]), and the cross-chain Gelman–Rubin R̂ built on
//!   [`mcmc::diagnostics`].
//! * Observer fan-in: one [`RunObserver`] attached to the session sees every
//!   chain's start/end events tagged with [`ChainInfo::chain_index`].
//!
//! Because [`ShardedSampler`] *is* a [`GenealogySampler`], the whole ensemble
//! slots into every existing driver: `Session::run` maximises θ over the
//! pooled samples, `Session::run_chain` returns the pooled run report, and
//! `run_multi_chain` is now a thin compatibility wrapper.
//!
//! See [`EnsembleBuilder`] for a runnable end-to-end quick start, and the
//! "Ensemble layer" section of `docs/ARCHITECTURE.md` for the design
//! (determinism story, tempering, pooling rules).

use exec::Backend;
use rand::{Rng, RngCore};

use lamarc::mle::{maximize_relative_likelihood, GradientAscentConfig, RelativeLikelihood};
use lamarc::run::{
    no_active_chain, ChainInfo, ChainSnapshot, GenealogySampler, RunCounters, RunObserver,
    RunReport, StepReport,
};
use lamarc::sampler::GenealogySample;
use mcmc::diagnostics::gelman_rubin;
use mcmc::logdomain::LogProb;
use mcmc::rng::{Mt19937, StreamBank};
use phylo::tree::CoalescentIntervals;
use phylo::{GeneTree, PhyloError};

use crate::session::Session;

/// How the chains of an ensemble communicate.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum ExchangePolicy {
    /// Fully independent replicated chains: every chain samples the same
    /// posterior and the post-burn-in samples of *all* chains are pooled
    /// (the Section 3 work-around, now first-class).
    #[default]
    Independent,
    /// MC³-style replica exchange: chain `k` samples the power posterior
    /// `P(D|G)^βₖ · P(G|θ)` with `βₖ = 1/temperatures[k]`, and adjacent
    /// rungs attempt a Metropolis state swap every `swap_interval` rounds.
    /// Only cold rungs (temperature 1.0) contribute pooled samples.
    TemperatureLadder {
        /// One temperature per chain; `temperatures[0]` must be 1.0 (the
        /// cold, estimation chain) and every rung must be ≥ 1.0 and finite.
        temperatures: Vec<f64>,
        /// Attempt swaps after every `swap_interval`-th ensemble round
        /// (must be ≥ 1).
        swap_interval: usize,
    },
}

/// Whether a rung temperature classifies as *cold* (an estimation chain):
/// its inverse temperature β rounds to 1 within `1e-9`. Pooling, R̂ and the
/// parallel-cost accounting all filter rungs through this one predicate, so
/// a user-supplied ladder whose cold rung reads `1.0 + 1e-12` is treated as
/// the estimation chain it plainly is rather than silently dropped by an
/// exact `t == 1.0` comparison.
pub fn is_cold_rung(temperature: f64) -> bool {
    (temperature - 1.0).abs() <= 1e-9
}

impl ExchangePolicy {
    /// A geometrically spaced ladder `1, r, r², …` reaching
    /// `hottest_temperature` at the last rung — the conventional MC³
    /// spacing. With one chain the ladder degenerates to a single cold rung.
    ///
    /// Fails unless `hottest_temperature` is finite and strictly above 1
    /// (a "ladder" that never heats, or cools, is a configuration error
    /// better caught here than as a generic rung complaint deep inside
    /// validation) and `swap_interval` is at least 1.
    pub fn geometric_ladder(
        n_chains: usize,
        hottest_temperature: f64,
        swap_interval: usize,
    ) -> Result<Self, PhyloError> {
        if !(hottest_temperature.is_finite() && hottest_temperature > 1.0) {
            return Err(PhyloError::InvalidParameter {
                name: "hottest_temperature",
                value: hottest_temperature,
                constraint: "finite and > 1.0 (the ladder must heat above the cold chain)",
            });
        }
        if swap_interval == 0 {
            return Err(PhyloError::InvalidParameter {
                name: "swap_interval",
                value: 0.0,
                constraint: "at least one round between swap attempts",
            });
        }
        let temperatures = if n_chains <= 1 {
            vec![1.0; n_chains.max(1)]
        } else {
            let ratio = hottest_temperature.powf(1.0 / (n_chains as f64 - 1.0));
            (0..n_chains).map(|k| ratio.powi(k as i32)).collect()
        };
        Ok(ExchangePolicy::TemperatureLadder { temperatures, swap_interval })
    }

    /// Short policy name (`"independent"` / `"ladder"`).
    pub fn name(&self) -> &'static str {
        match self {
            ExchangePolicy::Independent => "independent",
            ExchangePolicy::TemperatureLadder { .. } => "ladder",
        }
    }

    /// The per-chain temperatures this policy implies for an ensemble of
    /// `n_chains` (all 1.0 for [`ExchangePolicy::Independent`]).
    pub fn temperatures(&self, n_chains: usize) -> Vec<f64> {
        match self {
            ExchangePolicy::Independent => vec![1.0; n_chains],
            ExchangePolicy::TemperatureLadder { temperatures, .. } => temperatures.clone(),
        }
    }

    /// One flag per rung: `true` for the estimation (cold) chains — the
    /// rungs whose samples pool and whose traces feed cross-chain
    /// diagnostics. Built once at validation time ([`is_cold_rung`]) and
    /// carried through [`EnsembleReport::cold_rungs`] so every consumer
    /// classifies identically.
    pub fn cold_mask(&self, n_chains: usize) -> Vec<bool> {
        self.temperatures(n_chains).iter().map(|&t| is_cold_rung(t)).collect()
    }

    fn validate(&self, n_chains: usize) -> Result<(), PhyloError> {
        match self {
            ExchangePolicy::Independent => Ok(()),
            ExchangePolicy::TemperatureLadder { temperatures, swap_interval } => {
                if temperatures.len() != n_chains {
                    return Err(PhyloError::InvalidState {
                        message: format!(
                            "temperature ladder has {} rungs but the ensemble runs {} chains",
                            temperatures.len(),
                            n_chains
                        ),
                    });
                }
                if *swap_interval == 0 {
                    return Err(PhyloError::InvalidParameter {
                        name: "swap_interval",
                        value: 0.0,
                        constraint: "at least one round between swap attempts",
                    });
                }
                for (k, &t) in temperatures.iter().enumerate() {
                    // A rung a hair *below* 1.0 still classifies cold; only
                    // genuinely sub-cold or non-finite rungs are invalid.
                    if !(t.is_finite() && (t >= 1.0 || is_cold_rung(t))) {
                        return Err(PhyloError::InvalidParameter {
                            name: "temperature",
                            value: t,
                            constraint: "every rung finite and >= 1.0",
                        });
                    }
                    if k == 0 && !is_cold_rung(t) {
                        return Err(PhyloError::InvalidParameter {
                            name: "temperature",
                            value: t,
                            constraint: "rung 0 is the cold chain (temperature 1.0)",
                        });
                    }
                }
                Ok(())
            }
        }
    }
}

/// Configuration of an ensemble: how many chains, how they communicate, and
/// the master seed their deterministic per-chain RNG streams derive from.
#[derive(Debug, Clone, PartialEq)]
pub struct EnsembleSpec {
    /// Number of chains (`P`).
    pub n_chains: usize,
    /// The exchange policy.
    pub exchange: ExchangePolicy,
    /// Master seed of the per-chain host RNG streams and the swap-decision
    /// stream. Chains are seeded from a [`StreamBank`], so the ensemble is
    /// reproducible independently of backend and thread count.
    pub ensemble_seed: u64,
    /// Where *chain-level* dispatch runs: `None` inherits the session
    /// backend (chains and their inner proposal batches share one knob),
    /// `Some(backend)` decouples the two — e.g. serial within-chain work
    /// sharded across one scoped thread per chain
    /// (`Some(Backend::Rayon)`), the one-chain-per-processor shape of
    /// Section 3. Dispatch choice never changes results (chains own their
    /// RNG streams), only wall-clock.
    pub chain_dispatch: Option<Backend>,
}

impl Default for EnsembleSpec {
    fn default() -> Self {
        EnsembleSpec {
            n_chains: 4,
            exchange: ExchangePolicy::Independent,
            ensemble_seed: 0x656E_7365_6D62_6C65, // "ensemble"
            chain_dispatch: None,
        }
    }
}

impl EnsembleSpec {
    /// An independent ensemble of `n_chains` with the default seed.
    pub fn independent(n_chains: usize) -> Self {
        EnsembleSpec { n_chains, ..EnsembleSpec::default() }
    }

    /// Validate the specification.
    pub fn validate(&self) -> Result<(), PhyloError> {
        if self.n_chains == 0 {
            return Err(PhyloError::InvalidParameter {
                name: "n_chains",
                value: 0.0,
                constraint: "at least one chain",
            });
        }
        self.exchange.validate(self.n_chains)
    }

    /// The per-chain inverse temperatures βₖ = 1/Tₖ. Rungs that classify as
    /// cold ([`is_cold_rung`]) are snapped to β = 1 exactly, so a ladder
    /// whose cold rung was written as `1.0 + 1e-12` samples the untempered
    /// posterior its pooled samples are treated as coming from.
    pub fn betas(&self) -> Vec<f64> {
        self.exchange
            .temperatures(self.n_chains)
            .iter()
            .map(|&t| if is_cold_rung(t) { 1.0 } else { 1.0 / t })
            .collect()
    }

    /// One flag per rung: `true` for the estimation (cold) chains. See
    /// [`ExchangePolicy::cold_mask`].
    pub fn cold_mask(&self) -> Vec<bool> {
        self.exchange.cold_mask(self.n_chains)
    }

    /// The deterministic per-chain host RNG streams (`n_chains` generators,
    /// decorrelated via a [`StreamBank`] over `ensemble_seed`). Exposed so
    /// tests and external drivers can reproduce exactly the stream chain `k`
    /// consumes.
    pub fn chain_rngs(&self) -> Vec<Mt19937> {
        let mut streams = StreamBank::new(self.ensemble_seed, self.n_chains + 1).into_streams();
        streams.truncate(self.n_chains);
        streams
    }

    /// The dedicated stream swap decisions are drawn from (stream
    /// `n_chains` of the same bank — never shared with any chain).
    pub fn swap_rng(&self) -> Mt19937 {
        StreamBank::new(self.ensemble_seed, self.n_chains + 1)
            .into_streams()
            .pop()
            // mpcgs-analyze: allow(r1, reason = "the bank is constructed with n_chains + 1 streams two lines up, so pop() cannot see an empty vec")
            .expect("bank has n_chains + 1 streams")
    }
}

/// The aggregated outcome of one ensemble run.
#[derive(Debug, Clone, PartialEq)]
pub struct EnsembleReport {
    /// Per-chain unified run reports, in rung order.
    pub chains: Vec<RunReport>,
    /// Per-chain temperatures (all 1.0 for an independent ensemble).
    pub temperatures: Vec<f64>,
    /// Per-chain cold-rung classification ([`is_cold_rung`], built at
    /// validation): the estimation chains whose samples pool and whose
    /// traces feed cross-chain diagnostics.
    pub cold_rungs: Vec<bool>,
    /// The measured host-vs-device cost breakdown, when the run dispatched
    /// through `Backend::Device` (`device` feature; `None` otherwise).
    pub device: Option<exec::DeviceReport>,
    /// The driving θ the ensemble ran with.
    pub driving_theta: f64,
    /// Burn-in draws discarded per chain.
    pub burn_in_draws: usize,
    /// Pooled post-burn-in samples across the estimation chains (all chains
    /// when independent; the cold rungs of a ladder).
    pub pooled_samples: Vec<GenealogySample>,
    /// The gradient-ascent configuration [`EnsembleReport::pooled_theta`]
    /// maximises with (the session's `ascent` settings).
    pub ascent: GradientAscentConfig,
    /// Work counters aggregated across all chains, including the
    /// replica-exchange swap counters.
    pub counters: RunCounters,
}

impl EnsembleReport {
    /// Number of chains.
    pub fn n_chains(&self) -> usize {
        self.chains.len()
    }

    /// The cold chain (rung 0) — the estimation chain of a ladder, the
    /// first replica of an independent ensemble.
    pub fn cold_chain(&self) -> &RunReport {
        &self.chains[0]
    }

    /// Pooled interval summaries (what the maximisation stage consumes).
    pub fn pooled_interval_summaries(&self) -> Vec<CoalescentIntervals> {
        self.pooled_samples.iter().map(|s| s.intervals.clone()).collect()
    }

    /// The maximiser of the pooled relative likelihood (Eq. 26 over the
    /// pooled samples), or `None` when the pool is unusable (e.g. empty).
    /// Computed on demand — EM drivers run their own maximisation over the
    /// pooled run report and never pay for this.
    pub fn pooled_theta(&self) -> Option<f64> {
        let summaries = self.pooled_interval_summaries();
        RelativeLikelihood::new(self.driving_theta, &summaries)
            .ok()
            .map(|rl| maximize_relative_likelihood(&rl, &self.ascent))
    }

    /// The Gelman–Rubin potential scale reduction factor R̂ across the
    /// estimation chains' post-burn-in `ln P(D|G)` traces. `None` when fewer
    /// than two estimation chains ran or the traces are too short — R̂ is a
    /// between-chain diagnostic, so heated rungs are excluded.
    pub fn r_hat(&self) -> Option<f64> {
        let traces: Vec<Vec<f64>> = self
            .chains
            .iter()
            .zip(&self.cold_rungs)
            .filter(|(_, &cold)| cold)
            .map(|(c, _)| c.trace.post_burn_in().to_vec())
            .collect();
        gelman_rubin(&traces).ok()
    }

    /// Fraction of attempted replica-exchange swaps that were accepted.
    pub fn swap_acceptance_rate(&self) -> f64 {
        self.counters.swap_acceptance_rate()
    }

    /// Draws performed by each chain (`B + ⌈N/P⌉` in the Section 3
    /// accounting; identical across chains by construction).
    pub fn transitions_per_chain(&self) -> usize {
        self.chains.first().map(|c| c.counters.draws).unwrap_or(0)
    }

    /// Total draws performed across all chains (`P·B + P·⌈N/P⌉`).
    pub fn total_transitions(&self) -> usize {
        self.chains.iter().map(|c| c.counters.draws).sum()
    }

    /// Fraction of all performed work spent in burn-in — the Figure 6
    /// inefficiency, measured from what the chains actually did rather than
    /// re-derived from configuration.
    pub fn burn_in_fraction(&self) -> f64 {
        let total = self.total_transitions();
        if total == 0 {
            0.0
        } else {
            (self.n_chains() * self.burn_in_draws) as f64 / total as f64
        }
    }

    /// The idealised per-chain wall-clock cost `B + N/P` of Section 3 for
    /// this run: every chain pays its own burn-in, and the retained pool is
    /// split across the chains that feed it. `P` here is the number of
    /// *estimation* chains (temperature 1.0) — on a temperature ladder only
    /// the cold rungs pool, so heated rungs add no pooling speedup (their
    /// payoff is mixing, not throughput) and the ideal cost equals the cold
    /// chain's own draw count.
    pub fn ideal_parallel_cost(&self) -> f64 {
        let estimation = self.cold_rungs.iter().filter(|&&cold| cold).count();
        if estimation == 0 {
            return 0.0;
        }
        self.burn_in_draws as f64 + self.pooled_samples.len() as f64 / estimation as f64
    }

    /// The pooled view as a unified [`RunReport`]: pooled samples, the cold
    /// chain's trace and final tree, aggregate counters. This is what
    /// [`ShardedSampler::finish`] returns, so ensemble runs slot into every
    /// single-chain driver.
    pub fn pooled_run_report(&self) -> RunReport {
        let cold = self.cold_chain();
        RunReport {
            samples: self.pooled_samples.clone(),
            trace: cold.trace.clone(),
            counters: self.counters,
            final_tree: cold.final_tree.clone(),
        }
    }
}

/// One chain of the ensemble: a boxed sampler strategy plus its owned host
/// RNG stream.
struct Shard {
    sampler: Box<dyn GenealogySampler>,
    rng: Mt19937,
}

/// A whole in-flight ensemble, frozen mid-run: one [`ChainSnapshot`] per
/// rung plus the positions of every deterministic RNG stream the ensemble
/// consumes (per-chain host streams and the swap-decision stream) and the
/// replica-exchange counters.
///
/// Restoring with [`ShardedSampler::import_ensemble`] on a freshly built
/// sampler over the same [`EnsembleSpec`] and driving θ continues the run
/// bit-identically — every rung, every swap decision, every counter.
#[derive(Debug, Clone, PartialEq)]
pub struct EnsembleSnapshot {
    /// Per-rung chain snapshots, in rung order.
    pub chains: Vec<ChainSnapshot>,
    /// Absolute position of each chain's host RNG stream (outputs emitted
    /// since seeding).
    pub chain_rng_positions: Vec<u64>,
    /// Absolute position of the swap-decision stream.
    pub swap_rng_position: u64,
    /// Replica-exchange swaps attempted so far this run.
    pub swap_attempts: usize,
    /// Replica-exchange swaps accepted so far this run.
    pub swaps_accepted: usize,
    /// The driving θ the ensemble was built at.
    pub driving_theta: f64,
}

/// `N` communicating chains behind a single [`GenealogySampler`] surface.
///
/// One [`ShardedSampler::step`] advances *every* chain through one dispatch
/// segment — the kernel iterations between synchronization points
/// (`swap_interval` on a temperature ladder, the whole run for independent
/// chains) — round-robin on the serial backend, one scoped worker thread
/// per chain on rayon — and then, on a ladder, attempts the scheduled
/// replica-exchange swaps. The host RNG passed to
/// [`GenealogySampler::step`] is deliberately ignored: each chain consumes
/// its own deterministic stream from the [`EnsembleSpec`], which is what
/// makes serial and parallel dispatch bit-identical.
pub struct ShardedSampler {
    shards: Vec<Shard>,
    /// The spec the ensemble was built from — kept so checkpoint import can
    /// re-derive every deterministic RNG stream from its seed and fast-forward
    /// it to the recorded position.
    spec: EnsembleSpec,
    betas: Vec<f64>,
    temperatures: Vec<f64>,
    cold_rungs: Vec<bool>,
    swap_interval: Option<usize>,
    swap_rng: Mt19937,
    backend: Backend,
    driving_theta: f64,
    burn_in_draws: usize,
    ascent: GradientAscentConfig,
    swap_attempts: usize,
    swaps_accepted: usize,
    last_ensemble: Option<EnsembleReport>,
    /// When the within-chain backend is the device backend: its spec, plus
    /// the queue baseline snapshotted at `begin()` so `finish()` can report
    /// exactly this run's host-vs-device cost breakdown.
    device_spec: Option<exec::DeviceSpec>,
    device_baseline: exec::DeviceStats,
}

impl ShardedSampler {
    /// Build an ensemble of per-chain samplers from a configured session at
    /// the given driving θ. Chain `k` gets inverse temperature βₖ from the
    /// spec's exchange policy, a decorrelated proposal stream seed, and host
    /// RNG stream `k` of the spec's stream bank.
    pub fn from_session(
        session: &Session,
        spec: &EnsembleSpec,
        theta: f64,
    ) -> Result<ShardedSampler, PhyloError> {
        spec.validate()?;
        let session_backend = session.config().backend;
        let chain_backend = spec.chain_dispatch.unwrap_or(session_backend);
        // The device backend's accounting (and the one simulated device the
        // chains share) serialises chain dispatch through the command queue
        // on the calling thread; scoped worker threads would submit to
        // queues nobody reads. Reject the combination instead of silently
        // losing the cost breakdown.
        if session_backend.is_device() && matches!(chain_backend, Backend::Rayon) {
            return Err(PhyloError::InvalidState {
                message: "chain_dispatch: Rayon cannot shard chains whose within-chain \
                          backend is the device backend (the simulated device is one \
                          command queue; drop chain_dispatch or use Serial)"
                    .to_string(),
            });
        }
        let betas = spec.betas();
        let temperatures = spec.exchange.temperatures(spec.n_chains);
        let cold_rungs = spec.cold_mask();
        let swap_interval = match &spec.exchange {
            ExchangePolicy::Independent => None,
            ExchangePolicy::TemperatureLadder { swap_interval, .. } => Some(*swap_interval),
        };
        let mut shards = Vec::with_capacity(spec.n_chains);
        for (k, rng) in spec.chain_rngs().into_iter().enumerate() {
            let sampler = session.make_chain_sampler(theta, betas[k], k)?;
            shards.push(Shard { sampler, rng });
        }
        Ok(ShardedSampler {
            shards,
            spec: spec.clone(),
            betas,
            temperatures,
            cold_rungs,
            swap_interval,
            swap_rng: spec.swap_rng(),
            backend: chain_backend,
            driving_theta: theta,
            burn_in_draws: session.config().burn_in_draws,
            ascent: session.config().ascent,
            swap_attempts: 0,
            swaps_accepted: 0,
            last_ensemble: None,
            device_spec: session_backend.device_spec(),
            device_baseline: exec::DeviceStats::default(),
        })
    }

    /// Number of chains.
    pub fn n_chains(&self) -> usize {
        self.shards.len()
    }

    /// The per-chain temperatures.
    pub fn temperatures(&self) -> &[f64] {
        &self.temperatures
    }

    /// Rebuild the per-chain samplers at a new driving θ (used by the EM
    /// driver between rounds) while *keeping* the per-chain host RNG streams,
    /// so successive rounds draw fresh randomness. A no-op when θ is
    /// unchanged — callers must still `begin()` (or `run()`, which does)
    /// before stepping again, since a finished round leaves the samplers
    /// consumed either way.
    pub fn retune(&mut self, session: &Session, theta: f64) -> Result<(), PhyloError> {
        if theta == self.driving_theta {
            return Ok(());
        }
        for (k, shard) in self.shards.iter_mut().enumerate() {
            shard.sampler = session.make_chain_sampler(theta, self.betas[k], k)?;
        }
        self.driving_theta = theta;
        Ok(())
    }

    /// Per-chain chain descriptions, tagged with their ensemble index.
    pub fn chain_infos(&self) -> Vec<ChainInfo> {
        self.shards
            .iter()
            .enumerate()
            .map(|(k, shard)| ChainInfo { chain_index: k, ..shard.sampler.chain_info() })
            .collect()
    }

    /// Advance every chain through one dispatch segment and return the cold
    /// chain's per-iteration [`StepReport`]s for that segment (what
    /// [`ShardedSampler::run`] feeds to observers, so coarse dispatch does
    /// not starve per-iteration hooks). Errors when the ensemble is finished
    /// or was never begun.
    pub fn step_segment(&mut self) -> Result<Vec<StepReport>, PhyloError> {
        // Mirrors the single-chain contract: stepping a finished or
        // never-begun ensemble is an error.
        if self.is_done() {
            return Err(no_active_chain());
        }
        let segment = self.swap_interval.unwrap_or(usize::MAX);
        let reports = self.backend.map_mut(&mut self.shards, |k, shard| {
            let Shard { sampler, rng } = shard;
            // The cold chain keeps every report of the segment (observer
            // feed); the others only need their last, to surface errors.
            let mut collected = Vec::new();
            for i in 0..segment {
                if i > 0 && sampler.is_done() {
                    break;
                }
                let report = sampler.step(rng)?;
                if k == 0 || collected.is_empty() {
                    collected.push(report);
                } else {
                    collected[0] = report;
                }
            }
            Ok::<Vec<StepReport>, PhyloError>(collected)
        });
        let mut cold = Vec::new();
        for (k, result) in reports.into_iter().enumerate() {
            let chain_reports = result?;
            if k == 0 {
                cold = chain_reports;
            }
        }
        // Swap at the segment boundary; after the final segment the chains
        // are finished and a swap could no longer affect any retained sample.
        if self.swap_interval.is_some() && !self.is_done() {
            self.attempt_swaps()?;
        }
        if cold.is_empty() {
            return Err(no_active_chain());
        }
        Ok(cold)
    }

    /// Export the whole in-flight ensemble as an [`EnsembleSnapshot`], or
    /// `None` when no run is active (every rung must have an active chain).
    pub fn export_ensemble(&self) -> Option<EnsembleSnapshot> {
        let chains: Option<Vec<ChainSnapshot>> =
            self.shards.iter().map(|shard| shard.sampler.export_chain()).collect();
        Some(EnsembleSnapshot {
            chains: chains?,
            chain_rng_positions: self.shards.iter().map(|shard| shard.rng.position()).collect(),
            swap_rng_position: self.swap_rng.position(),
            swap_attempts: self.swap_attempts,
            swaps_accepted: self.swaps_accepted,
            driving_theta: self.driving_theta,
        })
    }

    /// Restore an in-flight ensemble from a snapshot previously produced by
    /// [`ShardedSampler::export_ensemble`] on an identically specified
    /// ensemble at the same driving θ. Every rung's chain is imported, and
    /// every deterministic RNG stream is re-derived from the spec's seed and
    /// fast-forwarded to its recorded position, so the resumed ensemble
    /// replays the uninterrupted run bit-for-bit — swap decisions included.
    ///
    /// Errors point at the exact mismatch: rung count, RNG stream count, or
    /// driving θ.
    pub fn import_ensemble(&mut self, snapshot: EnsembleSnapshot) -> Result<(), PhyloError> {
        if snapshot.chains.len() != self.shards.len() {
            return Err(PhyloError::InvalidState {
                message: format!(
                    "checkpoint shape mismatch: the snapshot holds {} chain(s) but this \
                     ensemble runs {} chain(s)",
                    snapshot.chains.len(),
                    self.shards.len()
                ),
            });
        }
        if snapshot.chain_rng_positions.len() != self.shards.len() {
            return Err(PhyloError::InvalidState {
                message: format!(
                    "checkpoint shape mismatch: the snapshot records {} host RNG position(s) \
                     but this ensemble runs {} chain(s)",
                    snapshot.chain_rng_positions.len(),
                    self.shards.len()
                ),
            });
        }
        if snapshot.driving_theta != self.driving_theta {
            return Err(PhyloError::InvalidState {
                message: format!(
                    "checkpoint mismatch: the snapshot was taken at driving theta {} but this \
                     ensemble was built at {}",
                    snapshot.driving_theta, self.driving_theta
                ),
            });
        }
        let fresh_rngs = self.spec.chain_rngs();
        for (((shard, chain), mut rng), &position) in self
            .shards
            .iter_mut()
            .zip(snapshot.chains)
            .zip(fresh_rngs)
            .zip(&snapshot.chain_rng_positions)
        {
            shard.sampler.import_chain(chain)?;
            rng.discard(position);
            shard.rng = rng;
        }
        let mut swap_rng = self.spec.swap_rng();
        swap_rng.discard(snapshot.swap_rng_position);
        self.swap_rng = swap_rng;
        self.swap_attempts = snapshot.swap_attempts;
        self.swaps_accepted = snapshot.swaps_accepted;
        self.last_ensemble = None;
        if self.device_spec.is_some() {
            self.device_baseline = crate::session::device_queue_stats();
        }
        Ok(())
    }

    /// The ensemble report of the most recent finished run, consuming it.
    pub fn take_ensemble_report(&mut self) -> Option<EnsembleReport> {
        self.last_ensemble.take()
    }

    /// The ensemble report of the most recent finished run.
    pub fn ensemble_report(&self) -> Option<&EnsembleReport> {
        self.last_ensemble.as_ref()
    }

    /// Attempt one sweep of adjacent-rung Metropolis swaps (rung `i` against
    /// `i+1`, in order). The acceptance probability in log domain is
    /// `ln α = (βᵢ − βⱼ)·(ln P(D|Gⱼ) − ln P(D|Gᵢ))`, clamped to
    /// [`LogProb::ONE`]; identical temperatures therefore always accept.
    ///
    /// The sweep snapshots every rung's `ln P(D|G)` once (no tree clones)
    /// and carries the values through a permutation, so after an accepted
    /// swap of `(i, i+1)` the next pair `(i+1, i+2)` sees rung `i+1`'s *new*
    /// likelihood — re-reading chain state mid-sweep would pair the
    /// swapped-in tree with the pre-swap trace entry and bias the
    /// acceptance. Only rungs whose final source differs clone and write a
    /// tree back; a sweep with no accepted swap moves nothing.
    fn attempt_swaps(&mut self) -> Result<(), PhyloError> {
        let loglik: Vec<Option<f64>> =
            self.shards.iter().map(|shard| shard.sampler.current_log_likelihood()).collect();
        // source[k]: the rung whose pre-sweep state ends up at rung k.
        let mut source: Vec<usize> = (0..self.shards.len()).collect();
        let mut current = loglik;
        for i in 0..self.shards.len().saturating_sub(1) {
            let j = i + 1;
            let (Some(ll_i), Some(ll_j)) = (current[i], current[j]) else {
                continue;
            };
            self.swap_attempts += 1;
            let delta = (self.betas[i] - self.betas[j]) * (ll_j - ll_i);
            let log_alpha = LogProb::new(delta.min(0.0));
            let accept =
                log_alpha == LogProb::ONE || self.swap_rng.gen::<f64>().ln() < log_alpha.value();
            if accept {
                source.swap(i, j);
                current.swap(i, j);
                self.swaps_accepted += 1;
            }
        }
        // Materialise the permutation: clone the moved trees first (their
        // owners may themselves be overwritten), then write them back with
        // their matching likelihoods.
        let moved: Vec<(usize, GeneTree, f64)> = source
            .iter()
            .enumerate()
            .filter(|(k, &src)| src != *k)
            .map(|(k, &src)| {
                let (tree, ll) = self.shards[src].sampler.current_state().ok_or_else(|| {
                    PhyloError::InvalidState {
                        message: format!(
                            "swap permutation references rung {src} before its chain began"
                        ),
                    }
                })?;
                Ok((k, tree, ll))
            })
            .collect::<Result<_, PhyloError>>()?;
        for (k, tree, ll) in moved {
            self.shards[k].sampler.replace_state(tree, ll)?;
        }
        Ok(())
    }
}

impl GenealogySampler for ShardedSampler {
    fn strategy(&self) -> &'static str {
        "ensemble"
    }

    fn chain_info(&self) -> ChainInfo {
        // The ensemble presents the cold chain's shape; per-chain infos are
        // available from `chain_infos()`.
        self.shards[0].sampler.chain_info()
    }

    fn begin(&mut self, initial: GeneTree) -> Result<(), PhyloError> {
        for shard in &mut self.shards {
            shard.sampler.begin(initial.clone())?;
        }
        self.swap_attempts = 0;
        self.swaps_accepted = 0;
        self.last_ensemble = None;
        if self.device_spec.is_some() {
            self.device_baseline = crate::session::device_queue_stats();
        }
        Ok(())
    }

    fn is_done(&self) -> bool {
        self.shards.iter().all(|s| s.sampler.is_done())
    }

    /// Advance every chain through one dispatch *segment*
    /// ([`ShardedSampler::step_segment`]): the kernel iterations between
    /// synchronization points. On a temperature ladder a segment is
    /// `swap_interval` iterations (chains must rendezvous to exchange
    /// states); independent chains need no barrier at all, so one step
    /// drives every chain to completion — one worker thread per chain for
    /// the whole run, exactly the one-chain-per-processor dispatch of
    /// Section 3. Chains advance independently either way, so segmentation
    /// changes scheduling granularity, never results. Returns the cold
    /// chain's last report of the segment; callers needing the full
    /// per-iteration stream use [`ShardedSampler::step_segment`].
    ///
    /// The passed RNG is intentionally unused: chains consume their own
    /// deterministic streams, which is what keeps serial and parallel
    /// dispatch bit-identical.
    fn step(&mut self, _rng: &mut dyn RngCore) -> Result<StepReport, PhyloError> {
        let cold_reports = self.step_segment()?;
        cold_reports.last().copied().ok_or_else(no_active_chain)
    }

    fn current_state(&self) -> Option<(GeneTree, f64)> {
        // The ensemble's "current state" is the cold chain's.
        self.shards.first().and_then(|s| s.sampler.current_state())
    }

    fn replace_state(&mut self, tree: GeneTree, log_likelihood: f64) -> Result<(), PhyloError> {
        self.shards
            .first_mut()
            .ok_or_else(no_active_chain)?
            .sampler
            .replace_state(tree, log_likelihood)
    }

    fn finish(&mut self) -> Result<RunReport, PhyloError> {
        let mut chains = Vec::with_capacity(self.shards.len());
        for shard in &mut self.shards {
            chains.push(shard.sampler.finish()?);
        }
        // Pool the estimation chains: every chain when independent, the cold
        // rungs of a ladder (heated rungs sample a flattened posterior and
        // would bias the estimate). Classification comes from the cold mask
        // built at validation, so near-1.0 rungs are not silently dropped.
        let pooled_samples: Vec<GenealogySample> = chains
            .iter()
            .zip(&self.cold_rungs)
            .filter(|(_, &cold)| cold)
            .flat_map(|(c, _)| c.samples.iter().cloned())
            .collect();
        let mut counters =
            chains.iter().fold(RunCounters::default(), |acc, chain| acc.merged(&chain.counters));
        counters.swap_attempts = self.swap_attempts;
        counters.swaps_accepted = self.swaps_accepted;
        let device = self.device_spec.map(|spec| {
            exec::DeviceReport::new(
                spec,
                crate::session::device_queue_stats().delta(&self.device_baseline),
            )
        });
        let report = EnsembleReport {
            chains,
            temperatures: self.temperatures.clone(),
            cold_rungs: self.cold_rungs.clone(),
            device,
            driving_theta: self.driving_theta,
            burn_in_draws: self.burn_in_draws,
            pooled_samples,
            ascent: self.ascent,
            counters,
        };
        let pooled_run = report.pooled_run_report();
        self.last_ensemble = Some(report);
        Ok(pooled_run)
    }

    /// Run the whole ensemble, fanning tagged per-chain events into the
    /// observer: one [`RunObserver::on_chain_start`] per chain (each tagged
    /// with its [`ChainInfo::chain_index`]), the cold chain's per-round
    /// progress, and one [`RunObserver::on_chain_end`] per chain with its
    /// individual [`RunReport`].
    fn run(
        &mut self,
        initial: GeneTree,
        rng: &mut dyn RngCore,
        observer: &mut dyn RunObserver,
    ) -> Result<RunReport, PhyloError> {
        let _ = rng; // chains consume their own deterministic streams
        self.begin(initial)?;
        for info in self.chain_infos() {
            observer.on_chain_start(&info);
        }
        while !self.is_done() {
            // Dispatch is segmented, but the observer still receives the
            // cold chain's full per-iteration event stream (delivered at
            // each segment boundary).
            for step in self.step_segment()? {
                if step.in_burn_in() {
                    observer.on_burn_in_progress(step.draws_done, step.burn_in_draws);
                }
                observer.on_iteration(&step);
            }
        }
        let pooled = self.finish()?;
        if let Some(report) = &self.last_ensemble {
            for chain in &report.chains {
                observer.on_chain_end(chain);
            }
        }
        Ok(pooled)
    }
}

/// A configured ensemble: a [`Session`] whose runs shard across `N` chains.
///
/// Built by [`EnsembleBuilder`]; [`Ensemble::run`] performs one ensemble
/// pass and returns the aggregated [`EnsembleReport`]. For EM estimation
/// over the pooled samples, convert back with [`Ensemble::into_session`] and
/// call `Session::run` — the session keeps the ensemble configuration.
pub struct Ensemble {
    session: Session,
}

impl Ensemble {
    /// Start building an ensemble.
    pub fn builder() -> EnsembleBuilder {
        EnsembleBuilder::new()
    }

    /// The underlying session.
    pub fn session(&self) -> &Session {
        &self.session
    }

    /// Run one ensemble pass at the configured θ₀ and return the aggregated
    /// report.
    pub fn run<R: Rng>(&mut self, rng: &mut R) -> Result<EnsembleReport, PhyloError> {
        self.session.run_ensemble(rng)
    }

    /// Convert into the underlying session (which keeps the ensemble
    /// configuration, so `Session::run` shards too).
    pub fn into_session(self) -> Session {
        self.session
    }
}

/// Staged construction of an [`Ensemble`] over a configured [`Session`]:
/// session → chains → exchange policy → seed.
///
/// A deliberately tiny end-to-end ensemble (real runs use the defaults in
/// [`crate::MpcgsConfig`]):
///
/// ```
/// use exec::Backend;
/// use mcmc::rng::Mt19937;
/// use mpcgs::ensemble::{EnsembleBuilder, ExchangePolicy};
/// use mpcgs::{MpcgsConfig, Session};
/// use phylo::Alignment;
///
/// let alignment = Alignment::from_letters(&[
///     ("a", "ACGTACGTAACCGGTT"),
///     ("b", "ACGTACGAAACCGGTA"),
///     ("c", "ACGAACGTAACCGGTT"),
///     ("d", "TCGTACGTAACCGGTT"),
/// ])
/// .unwrap();
/// let config = MpcgsConfig {
///     initial_theta: 0.5,
///     em_iterations: 1,
///     burn_in_draws: 8,
///     sample_draws: 32,
///     proposals_per_iteration: 4,
///     draws_per_iteration: 4,
///     backend: Backend::Serial,
///     ..MpcgsConfig::default()
/// };
/// let session = Session::builder().alignment(alignment).config(config).build().unwrap();
///
/// let mut ensemble = EnsembleBuilder::new()
///     .session(session)
///     .chains(2)
///     .exchange(ExchangePolicy::Independent)
///     .seed(7)
///     .build()
///     .unwrap();
/// let report = ensemble.run(&mut Mt19937::new(1)).unwrap();
/// assert_eq!(report.n_chains(), 2);
/// assert_eq!(report.pooled_samples.len(), 64); // 32 retained draws per chain
/// assert!(report.pooled_theta().unwrap() > 0.0);
/// ```
pub struct EnsembleBuilder {
    session: Option<Session>,
    n_chains: usize,
    exchange: ExchangePolicy,
    ensemble_seed: Option<u64>,
    chain_dispatch: Option<Backend>,
}

impl Default for EnsembleBuilder {
    fn default() -> Self {
        EnsembleBuilder::new()
    }
}

impl EnsembleBuilder {
    /// An empty builder (equivalent to `Ensemble::builder()`).
    pub fn new() -> Self {
        EnsembleBuilder {
            session: None,
            n_chains: EnsembleSpec::default().n_chains,
            exchange: ExchangePolicy::Independent,
            ensemble_seed: None,
            chain_dispatch: None,
        }
    }

    /// The configured session the chains replicate. Required.
    pub fn session(mut self, session: Session) -> Self {
        self.session = Some(session);
        self
    }

    /// Number of chains (default 4).
    pub fn chains(mut self, n_chains: usize) -> Self {
        self.n_chains = n_chains;
        self
    }

    /// The exchange policy (default [`ExchangePolicy::Independent`]).
    pub fn exchange(mut self, exchange: ExchangePolicy) -> Self {
        self.exchange = exchange;
        self
    }

    /// Master seed for the deterministic per-chain RNG streams (default:
    /// the [`EnsembleSpec`] default seed).
    pub fn seed(mut self, ensemble_seed: u64) -> Self {
        self.ensemble_seed = Some(ensemble_seed);
        self
    }

    /// Where chain-level dispatch runs (default: inherit the session
    /// backend). See [`EnsembleSpec::chain_dispatch`].
    pub fn chain_dispatch(mut self, backend: Backend) -> Self {
        self.chain_dispatch = Some(backend);
        self
    }

    /// Validate and assemble the ensemble.
    pub fn build(self) -> Result<Ensemble, PhyloError> {
        let mut session = self.session.ok_or(PhyloError::Empty { what: "ensemble session" })?;
        let spec = EnsembleSpec {
            n_chains: self.n_chains,
            exchange: self.exchange,
            ensemble_seed: self.ensemble_seed.unwrap_or(EnsembleSpec::default().ensemble_seed),
            chain_dispatch: self.chain_dispatch,
        };
        spec.validate()?;
        session.set_ensemble(Some(spec));
        Ok(Ensemble { session })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::RngCore;

    #[test]
    fn geometric_ladder_spans_one_to_hottest() {
        let policy = ExchangePolicy::geometric_ladder(4, 8.0, 5).unwrap();
        let ExchangePolicy::TemperatureLadder { temperatures, swap_interval } = &policy else {
            panic!("geometric_ladder builds a ladder");
        };
        assert_eq!(*swap_interval, 5);
        assert_eq!(temperatures.len(), 4);
        assert!((temperatures[0] - 1.0).abs() < 1e-12);
        assert!((temperatures[3] - 8.0).abs() < 1e-9);
        assert!(temperatures.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(policy.name(), "ladder");
        EnsembleSpec { n_chains: 4, exchange: policy, ..EnsembleSpec::default() }
            .validate()
            .unwrap();

        // Degenerate single-rung ladder is just a cold chain.
        let single = ExchangePolicy::geometric_ladder(1, 8.0, 1).unwrap();
        assert_eq!(single.temperatures(1), vec![1.0]);
    }

    #[test]
    fn geometric_ladder_rejects_degenerate_spans_at_construction() {
        // A ladder that never heats (or cools, or is not a number) is a
        // configuration error caught with a pointed message, not a generic
        // rung complaint from deep inside validation.
        for bad in [1.0, 0.5, 0.0, -3.0, f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            let err = ExchangePolicy::geometric_ladder(4, bad, 5).unwrap_err();
            assert!(
                err.to_string().contains("hottest_temperature"),
                "unhelpful error for hottest {bad}: {err}"
            );
            // The check also protects the degenerate single-chain form.
            assert!(ExchangePolicy::geometric_ladder(1, bad, 5).is_err());
        }
        // Swap interval 0 is caught at construction too.
        let err = ExchangePolicy::geometric_ladder(4, 8.0, 0).unwrap_err();
        assert!(err.to_string().contains("swap_interval"), "{err}");
    }

    #[test]
    fn cold_rung_classification_tolerates_float_noise() {
        assert!(is_cold_rung(1.0));
        assert!(is_cold_rung(1.0 + 1e-12));
        assert!(is_cold_rung(1.0 - 1e-12));
        assert!(!is_cold_rung(1.0 + 1e-6));
        assert!(!is_cold_rung(2.0));
        assert!(!is_cold_rung(f64::NAN));

        // A user-supplied ladder whose cold rung carries float noise
        // validates, classifies cold, and snaps to beta = 1 exactly.
        let spec = EnsembleSpec {
            n_chains: 3,
            exchange: ExchangePolicy::TemperatureLadder {
                temperatures: vec![1.0 + 1e-12, 1.0 - 1e-12, 4.0],
                swap_interval: 2,
            },
            ..EnsembleSpec::default()
        };
        spec.validate().unwrap();
        assert_eq!(spec.cold_mask(), vec![true, true, false]);
        assert_eq!(spec.betas(), vec![1.0, 1.0, 0.25]);

        // A genuinely sub-cold rung is still invalid.
        let bad = EnsembleSpec {
            n_chains: 2,
            exchange: ExchangePolicy::TemperatureLadder {
                temperatures: vec![1.0, 0.5],
                swap_interval: 2,
            },
            ..EnsembleSpec::default()
        };
        assert!(bad.validate().is_err());
        // And rung 0 must classify cold.
        let hot_first = EnsembleSpec {
            n_chains: 2,
            exchange: ExchangePolicy::TemperatureLadder {
                temperatures: vec![2.0, 4.0],
                swap_interval: 2,
            },
            ..EnsembleSpec::default()
        };
        assert!(hot_first.validate().is_err());
    }

    #[test]
    fn spec_betas_invert_temperatures() {
        let spec = EnsembleSpec {
            n_chains: 3,
            exchange: ExchangePolicy::TemperatureLadder {
                temperatures: vec![1.0, 2.0, 4.0],
                swap_interval: 1,
            },
            ..EnsembleSpec::default()
        };
        assert_eq!(spec.betas(), vec![1.0, 0.5, 0.25]);
        assert_eq!(EnsembleSpec::independent(2).betas(), vec![1.0, 1.0]);
        assert_eq!(ExchangePolicy::Independent.name(), "independent");
        assert_eq!(ExchangePolicy::default(), ExchangePolicy::Independent);
    }

    #[test]
    fn chain_rngs_are_deterministic_and_disjoint_from_the_swap_stream() {
        let spec = EnsembleSpec { n_chains: 3, ensemble_seed: 5, ..EnsembleSpec::default() };
        let mut a = spec.chain_rngs();
        let mut b = spec.chain_rngs();
        assert_eq!(a.len(), 3);
        for (x, y) in a.iter_mut().zip(b.iter_mut()) {
            assert_eq!(x.next_u32(), y.next_u32());
        }
        let mut swap_a = spec.swap_rng();
        let mut swap_b = spec.swap_rng();
        assert_eq!(swap_a.next_u32(), swap_b.next_u32());
        // The swap stream is not any chain's stream.
        let mut fresh = spec.chain_rngs();
        let mut swap = spec.swap_rng();
        let swap_word = swap.next_u32();
        assert!(fresh.iter_mut().all(|rng| rng.next_u32() != swap_word));
    }
}
