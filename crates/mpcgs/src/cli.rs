//! Command-line argument parsing for the `mpcgs` binary, as a library
//! module so every validation rule is unit-testable without spawning a
//! process.
//!
//! The original program is invoked as `./mpcgs <seqdata.phy> <init theta>`
//! (Section 5.1.1); this parser keeps that positional interface, accepts
//! *several* PHYLIP files for multi-locus runs, and adds flags for chain
//! sizing, sampler strategy, execution backend (including the simulated
//! accelerator, `--backend device` with `--device-spec kepler|modern`),
//! per-locus relative rates (`--rate <locus>=<r>`) and ensembles.

use std::path::Path;

use codec::Json;
use exec::Backend;
#[cfg(feature = "device")]
use exec::DeviceSpec;
use phylo::io::phylip::parse_phylip;
use phylo::likelihood::Kernel;
use phylo::{Dataset, Locus};

use crate::config::MpcgsConfig;
use crate::ensemble::{EnsembleSpec, ExchangePolicy};
use crate::serve::{JobSpec, ServeConfig};
use crate::session::SamplerStrategy;

/// Which exchange policy the CLI builds for a multi-chain run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExchangeKind {
    /// Fully independent replicated chains.
    Independent,
    /// MC³ replica exchange on a geometric temperature ladder.
    Ladder,
}

/// Everything the command line configures.
#[derive(Debug, Clone)]
pub struct CliArgs {
    /// The PHYLIP input files, one locus each.
    pub phylip_paths: Vec<String>,
    /// The initial driving value θ₀ (last positional argument).
    pub initial_theta: f64,
    /// Retained genealogy samples per chain.
    pub samples: usize,
    /// Burn-in draws per chain.
    pub burn_in: usize,
    /// Proposals per Generalized-MH iteration.
    pub proposals: usize,
    /// EM iterations.
    pub em_iterations: usize,
    /// Host RNG seed.
    pub seed: u32,
    /// Sampler strategy.
    pub strategy: SamplerStrategy,
    /// Execution backend.
    pub backend: Backend,
    /// Likelihood combine kernel.
    pub kernel: Kernel,
    /// Number of chains per run (1 = single chain).
    pub chains: usize,
    /// Ensemble exchange policy, when given.
    pub exchange: Option<ExchangeKind>,
    /// Rounds between replica-exchange swap attempts (ladder only).
    pub swap_interval: Option<usize>,
    /// Temperature of the hottest ladder rung (ladder only; validated
    /// finite and > 1 at parse time).
    pub hottest: Option<f64>,
    /// Per-locus relative mutation rates (`--rate <locus>=<r>`), validated
    /// finite and > 0 at parse time; locus names are checked against the
    /// loaded dataset by [`apply_rates`].
    pub rates: Vec<(String, f64)>,
    /// Write a checkpoint every this many runner increments
    /// (`--checkpoint-every`; requires `--checkpoint-path`).
    pub checkpoint_every: Option<usize>,
    /// Where checkpoints are written (`--checkpoint-path`).
    pub checkpoint_path: Option<String>,
    /// Resume a run from this checkpoint file (`--resume`).
    pub resume: Option<String>,
}

/// Print the usage text to stderr.
pub fn print_usage() {
    eprintln!(
        "usage: mpcgs <seqdata.phy>... <init-theta> [options]\n\
         \n\
         Each PHYLIP file becomes one locus; several files run a multi-locus\n\
         estimation over their shared sequence names.\n\
         \n\
         options:\n\
           --samples <n>        retained genealogy samples per chain (default 10000)\n\
           --burn-in <n>        burn-in draws per chain (default 1000)\n\
           --proposals <n>      proposals per Generalized-MH iteration (default 32)\n\
           --em <n>             EM iterations (default 3)\n\
           --seed <n>           host RNG seed (default 20160401)\n\
           --strategy <name>    sampler strategy: gmh | baseline (default gmh)\n\
           --backend <name>     execution backend: serial | rayon | device (default rayon;\n\
                                device requires a build with --features device and runs\n\
                                the simulated accelerator queue, reporting a measured\n\
                                host-vs-device cost breakdown)\n\
           --device-spec <name> device preset for --backend device: kepler | modern\n\
                                (default kepler)\n\
           --kernel <name>      likelihood combine kernel: scalar | simd | auto\n\
                                (default auto: probe the CPU at startup and use the\n\
                                AVX2+FMA combine loop when available; simd and auto\n\
                                require a build with --features simd and fall back to\n\
                                scalar otherwise)\n\
           --rate <locus>=<r>   relative mutation rate for one locus (repeatable; the\n\
                                locus name is the PHYLIP file stem; r finite and > 0)\n\
           --chains <n>         shard each run across n chains (default 1: single chain)\n\
           --exchange <name>    ensemble exchange policy: independent | ladder\n\
                                (default independent; ladder runs MC3 replica exchange\n\
                                on a geometric temperature ladder)\n\
           --swap-interval <n>  rounds between replica-exchange swap attempts\n\
                                (ladder only, default 10)\n\
           --hottest <t>        temperature of the hottest ladder rung (default 4.0;\n\
                                must be finite and > 1)\n\
           --checkpoint-every <n>  write a checkpoint every n sampler increments\n\
                                (requires --checkpoint-path; an increment is one kernel\n\
                                step, or one dispatch segment for an ensemble)\n\
           --checkpoint-path <file> where the checkpoint JSON is written (atomically\n\
                                replaced at each interval; resumable with --resume)\n\
           --resume <file>      continue bit-identically from a checkpoint written by\n\
                                --checkpoint-path (the run configuration must match)\n\
         \n\
         job-queue mode:\n\
           mpcgs serve <jobs.json | -> [--workers <n>] [--backend <name>] [--quantum <n>]\n\
         \n\
         Drains a queue of estimation jobs over a fixed worker pool, streaming\n\
         per-job progress. The spec file (or stdin, with \"-\") is a JSON document:\n\
           {{\"workers\": 4, \"backend\": \"rayon\", \"quantum\": 64,\n\
            \"jobs\": [{{\"name\": \"j0\", \"phylip\": [\"data.phy\"], \"theta\": 1.0,\n\
                      \"seed\": 7, \"samples\": 1000, \"burn_in\": 100, \"em\": 3,\n\
                      \"strategy\": \"gmh\", \"chains\": 1}}, ...]}}\n\
         Command-line --workers/--backend/--quantum override the file's values."
    );
}

/// Parse `--rate <locus>=<r>` syntax.
fn parse_rate(text: &str) -> Result<(String, f64), String> {
    let (name, value) = text.split_once('=').ok_or_else(|| {
        format!("--rate: expected <locus>=<rate>, got {text:?} (e.g. --rate locus1=2.0)")
    })?;
    if name.is_empty() {
        return Err(format!("--rate: empty locus name in {text:?}"));
    }
    let rate: f64 =
        value.parse().map_err(|_| format!("--rate: invalid rate {value:?} for locus {name:?}"))?;
    if !(rate.is_finite() && rate > 0.0) {
        return Err(format!("--rate: rate for locus {name:?} must be finite and > 0, got {rate}"));
    }
    Ok((name.to_string(), rate))
}

/// Parse the command line (everything after the program name).
pub fn parse_args(args: &[String]) -> Result<CliArgs, String> {
    // Leading positional arguments: one or more PHYLIP files, then theta.
    let mut positionals = Vec::new();
    let mut i = 0;
    while i < args.len() && !args[i].starts_with("--") {
        positionals.push(args[i].clone());
        i += 1;
    }
    if positionals.len() < 2 {
        return Err("expected at least one PHYLIP file and an initial theta".to_string());
    }
    let theta_text = positionals.pop().expect("at least two positionals");
    let initial_theta: f64 =
        theta_text.parse().map_err(|_| format!("invalid initial theta {theta_text:?}"))?;
    let mut cli = CliArgs {
        phylip_paths: positionals,
        initial_theta,
        samples: 10_000,
        burn_in: 1_000,
        proposals: 32,
        em_iterations: 3,
        seed: 20_160_401,
        strategy: SamplerStrategy::MultiProposal,
        backend: Backend::Rayon,
        kernel: Kernel::Auto,
        chains: 1,
        exchange: None,
        swap_interval: None,
        hottest: None,
        rates: Vec::new(),
        checkpoint_every: None,
        checkpoint_path: None,
        resume: None,
    };
    let mut device_spec: Option<String> = None;
    while i < args.len() {
        let flag = args[i].as_str();
        let mut take_value = |name: &str| -> Result<String, String> {
            i += 1;
            args.get(i).cloned().ok_or_else(|| format!("missing value for {name}"))
        };
        match flag {
            "--samples" => {
                cli.samples =
                    take_value("--samples")?.parse().map_err(|e| format!("--samples: {e}"))?
            }
            "--burn-in" => {
                cli.burn_in =
                    take_value("--burn-in")?.parse().map_err(|e| format!("--burn-in: {e}"))?
            }
            "--proposals" => {
                cli.proposals =
                    take_value("--proposals")?.parse().map_err(|e| format!("--proposals: {e}"))?
            }
            "--em" => {
                cli.em_iterations = take_value("--em")?.parse().map_err(|e| format!("--em: {e}"))?
            }
            "--seed" => {
                cli.seed = take_value("--seed")?.parse().map_err(|e| format!("--seed: {e}"))?
            }
            "--strategy" => {
                cli.strategy = match take_value("--strategy")?.to_ascii_lowercase().as_str() {
                    "gmh" | "multiproposal" | "multi-proposal" => SamplerStrategy::MultiProposal,
                    "baseline" | "lamarc" => SamplerStrategy::Baseline,
                    other => {
                        return Err(format!(
                            "unknown strategy {other:?} (expected \"gmh\" or \"baseline\")"
                        ))
                    }
                }
            }
            "--backend" => cli.backend = take_value("--backend")?.parse::<Backend>()?,
            "--device-spec" => device_spec = Some(take_value("--device-spec")?),
            "--kernel" => cli.kernel = take_value("--kernel")?.parse::<Kernel>()?,
            "--rate" => cli.rates.push(parse_rate(&take_value("--rate")?)?),
            "--chains" => {
                cli.chains =
                    take_value("--chains")?.parse().map_err(|e| format!("--chains: {e}"))?;
                if cli.chains == 0 {
                    return Err("--chains: 0 chains cannot sample anything; pass 1 for a \
                                single chain or n > 1 for an ensemble"
                        .to_string());
                }
            }
            "--exchange" => {
                cli.exchange = match take_value("--exchange")?.to_ascii_lowercase().as_str() {
                    "independent" => Some(ExchangeKind::Independent),
                    "ladder" | "temperature-ladder" | "mc3" => Some(ExchangeKind::Ladder),
                    other => {
                        return Err(format!(
                            "unknown exchange policy {other:?} (expected \"independent\" or \
                             \"ladder\")"
                        ))
                    }
                }
            }
            "--swap-interval" => {
                cli.swap_interval = Some(
                    take_value("--swap-interval")?
                        .parse()
                        .map_err(|e| format!("--swap-interval: {e}"))?,
                )
            }
            "--hottest" => {
                let hottest: f64 =
                    take_value("--hottest")?.parse().map_err(|e| format!("--hottest: {e}"))?;
                if !(hottest.is_finite() && hottest > 1.0) {
                    return Err(format!(
                        "--hottest: the hottest rung must be finite and > 1 (a ladder that \
                         never heats is not a ladder), got {hottest}"
                    ));
                }
                cli.hottest = Some(hottest);
            }
            "--checkpoint-every" => {
                let every: usize = take_value("--checkpoint-every")?
                    .parse()
                    .map_err(|e| format!("--checkpoint-every: {e}"))?;
                if every == 0 {
                    return Err("--checkpoint-every: the interval must be at least 1 \
                                increment"
                        .to_string());
                }
                cli.checkpoint_every = Some(every);
            }
            "--checkpoint-path" => cli.checkpoint_path = Some(take_value("--checkpoint-path")?),
            "--resume" => cli.resume = Some(take_value("--resume")?),
            other => return Err(format!("unknown option {other:?}")),
        }
        i += 1;
    }
    if cli.checkpoint_every.is_some() && cli.checkpoint_path.is_none() {
        return Err("--checkpoint-every requires --checkpoint-path (somewhere to write the \
             checkpoint)"
            .to_string());
    }
    // Resolve the device preset into the backend.
    if let Some(preset) = device_spec {
        if !cli.backend.is_device() {
            return Err("--device-spec only applies with --backend device".to_string());
        }
        #[cfg(feature = "device")]
        {
            let spec = DeviceSpec::from_preset(&preset).ok_or_else(|| {
                format!(
                    "--device-spec: unknown preset {preset:?} (expected \"kepler\" or \
                     \"modern\")"
                )
            })?;
            cli.backend = Backend::device(spec);
        }
        // Without the feature the backend can never be the device backend,
        // so the rejection above already returned.
        #[cfg(not(feature = "device"))]
        let _ = preset;
    }
    // Ensemble flags only act when more than one chain runs — reject
    // combinations the run would otherwise silently ignore.
    if cli.chains <= 1 {
        if cli.exchange.is_some() {
            return Err("--exchange requires --chains > 1".to_string());
        }
        if cli.swap_interval.is_some() || cli.hottest.is_some() {
            return Err(
                "--swap-interval/--hottest require --chains > 1 and --exchange ladder".to_string()
            );
        }
    } else if cli.exchange != Some(ExchangeKind::Ladder)
        && (cli.swap_interval.is_some() || cli.hottest.is_some())
    {
        return Err("--swap-interval/--hottest only apply with --exchange ladder".to_string());
    }
    Ok(cli)
}

impl CliArgs {
    /// The exchange policy of a multi-chain run (`None` when a single chain
    /// runs). Ladder construction validates the temperature span.
    pub fn exchange_policy(&self) -> Result<Option<ExchangePolicy>, String> {
        if self.chains <= 1 {
            return Ok(None);
        }
        let policy = match self.exchange.unwrap_or(ExchangeKind::Independent) {
            ExchangeKind::Independent => ExchangePolicy::Independent,
            ExchangeKind::Ladder => ExchangePolicy::geometric_ladder(
                self.chains,
                self.hottest.unwrap_or(4.0),
                self.swap_interval.unwrap_or(10),
            )
            .map_err(|e| format!("invalid temperature ladder: {e}"))?,
        };
        Ok(Some(policy))
    }

    /// The ensemble specification of a multi-chain run (`None` when a single
    /// chain runs).
    pub fn ensemble_spec(&self) -> Result<Option<EnsembleSpec>, String> {
        Ok(self.exchange_policy()?.map(|exchange| EnsembleSpec {
            n_chains: self.chains,
            exchange,
            ensemble_seed: self.seed as u64,
            ..EnsembleSpec::default()
        }))
    }
}

/// Load every PHYLIP file as one locus of a shared [`Dataset`]; the locus
/// name is the file stem.
pub fn load_dataset(paths: &[String]) -> Result<Dataset, String> {
    let mut loci = Vec::with_capacity(paths.len());
    for path in paths {
        let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
        let alignment =
            parse_phylip(&text).map_err(|e| format!("cannot parse PHYLIP input {path}: {e}"))?;
        let name = Path::new(path)
            .file_stem()
            .map(|stem| stem.to_string_lossy().into_owned())
            .unwrap_or_else(|| path.clone());
        loci.push(Locus::new(name, alignment));
    }
    Dataset::new(loci).map_err(|e| format!("inconsistent loci: {e}"))
}

/// Apply `--rate <locus>=<r>` assignments to a loaded dataset. Unknown locus
/// names are rejected (listing the names that exist), repeated assignments
/// take the last value, loci without an assignment keep rate 1.
pub fn apply_rates(dataset: Dataset, rates: &[(String, f64)]) -> Result<Dataset, String> {
    if rates.is_empty() {
        return Ok(dataset);
    }
    let known: Vec<String> = dataset.loci().iter().map(|l| l.name().to_string()).collect();
    for (name, _) in rates {
        if !known.iter().any(|k| k == name) {
            return Err(format!(
                "--rate: unknown locus {name:?} (loaded loci: {})",
                known.join(", ")
            ));
        }
    }
    let loci = dataset
        .loci()
        .iter()
        .map(|locus| {
            let rate = rates
                .iter()
                .rev()
                .find(|(name, _)| name == locus.name())
                .map(|&(_, rate)| rate)
                .unwrap_or_else(|| locus.relative_rate());
            Locus::with_rate(locus.name(), locus.alignment().clone(), rate)
                .map_err(|e| format!("--rate: {e}"))
        })
        .collect::<Result<Vec<_>, String>>()?;
    Dataset::new(loci).map_err(|e| format!("inconsistent loci: {e}"))
}

/// Everything `mpcgs serve` configures from its command line (the job specs
/// themselves come from the spec file).
#[derive(Debug, Clone, PartialEq)]
pub struct ServeArgs {
    /// The job spec file path, or `"-"` for stdin.
    pub job_path: String,
    /// `--workers` override (file value or default 1 otherwise).
    pub workers: Option<usize>,
    /// `--backend` override for the worker pool dispatch.
    pub backend: Option<Backend>,
    /// `--quantum` override (runner increments per scheduling slice).
    pub quantum: Option<usize>,
}

/// Parse the arguments after `mpcgs serve`.
pub fn parse_serve_args(args: &[String]) -> Result<ServeArgs, String> {
    let mut serve =
        ServeArgs { job_path: String::new(), workers: None, backend: None, quantum: None };
    let mut i = 0;
    while i < args.len() {
        let flag = args[i].as_str();
        let mut take_value = |name: &str| -> Result<String, String> {
            i += 1;
            args.get(i).cloned().ok_or_else(|| format!("missing value for {name}"))
        };
        match flag {
            "--workers" => {
                let workers: usize =
                    take_value("--workers")?.parse().map_err(|e| format!("--workers: {e}"))?;
                if workers == 0 {
                    return Err("--workers: the pool needs at least one worker".to_string());
                }
                serve.workers = Some(workers);
            }
            "--backend" => serve.backend = Some(take_value("--backend")?.parse::<Backend>()?),
            "--quantum" => {
                let quantum: usize =
                    take_value("--quantum")?.parse().map_err(|e| format!("--quantum: {e}"))?;
                if quantum == 0 {
                    return Err("--quantum: a scheduling slice must cover at least one \
                                increment"
                        .to_string());
                }
                serve.quantum = Some(quantum);
            }
            other if other.starts_with("--") => {
                return Err(format!("serve: unknown option {other:?}"))
            }
            positional if serve.job_path.is_empty() => serve.job_path = positional.to_string(),
            extra => return Err(format!("serve: unexpected argument {extra:?}")),
        }
        i += 1;
    }
    if serve.job_path.is_empty() {
        return Err("serve: expected a job spec file (or \"-\" for stdin)".to_string());
    }
    Ok(serve)
}

fn job_field_usize(job: &Json, key: &str, default: usize, name: &str) -> Result<usize, String> {
    match job.get(key) {
        None => Ok(default),
        Some(value) => {
            let x = value
                .as_f64()
                // mpcgs-analyze: allow(d5, reason = "integrality validation: fract() of a JSON-decoded count is exactly 0.0 iff the value is an integer")
                .filter(|x| *x >= 0.0 && x.fract() == 0.0)
                .ok_or_else(|| format!("job {name:?}: {key:?} must be a non-negative integer"))?;
            Ok(x as usize)
        }
    }
}

/// Parse a serve job spec document (see [`print_usage`] for the shape) into
/// the pool configuration and the fully loaded jobs. `overrides` (the
/// command-line `--workers`/`--backend`/`--quantum`) win over the file's
/// top-level values; PHYLIP paths are loaded relative to the working
/// directory.
pub fn parse_job_file(
    text: &str,
    overrides: &ServeArgs,
) -> Result<(ServeConfig, Vec<JobSpec>), String> {
    let doc = Json::parse(text).map_err(|e| format!("job spec file is not valid JSON: {e}"))?;
    let mut config = ServeConfig::default();
    if let Some(workers) = doc.get("workers") {
        config.workers = workers
            .as_f64()
            // mpcgs-analyze: allow(d5, reason = "integrality validation: fract() of a JSON-decoded count is exactly 0.0 iff the value is an integer")
            .filter(|x| *x >= 1.0 && x.fract() == 0.0)
            .ok_or("job spec: \"workers\" must be a positive integer")?
            as usize;
    }
    if let Some(backend) = doc.get("backend") {
        config.backend = backend
            .as_str()
            .ok_or("job spec: \"backend\" must be a string")?
            .parse::<Backend>()
            .map_err(|e| format!("job spec: {e}"))?;
    }
    if let Some(quantum) = doc.get("quantum") {
        config.quantum = quantum
            .as_f64()
            // mpcgs-analyze: allow(d5, reason = "integrality validation: fract() of a JSON-decoded count is exactly 0.0 iff the value is an integer")
            .filter(|x| *x >= 1.0 && x.fract() == 0.0)
            .ok_or("job spec: \"quantum\" must be a positive integer")?
            as usize;
    }
    if let Some(workers) = overrides.workers {
        config.workers = workers;
    }
    if let Some(backend) = overrides.backend {
        config.backend = backend;
    }
    if let Some(quantum) = overrides.quantum {
        config.quantum = quantum;
    }

    let jobs_json = doc
        .get("jobs")
        .and_then(Json::as_array)
        .ok_or("job spec: expected a top-level \"jobs\" array")?;
    let mut jobs = Vec::with_capacity(jobs_json.len());
    for (k, job) in jobs_json.iter().enumerate() {
        let name = match job.get("name").and_then(Json::as_str) {
            Some(name) => name.to_string(),
            None => format!("job-{k}"),
        };
        let phylip: Vec<String> = job
            .get("phylip")
            .and_then(Json::as_array)
            .ok_or_else(|| format!("job {name:?}: expected a \"phylip\" array of file paths"))?
            .iter()
            .map(|p| {
                p.as_str()
                    .map(str::to_string)
                    .ok_or_else(|| format!("job {name:?}: \"phylip\" entries must be strings"))
            })
            .collect::<Result<_, _>>()?;
        let theta = job
            .get("theta")
            .and_then(Json::as_f64)
            .ok_or_else(|| format!("job {name:?}: expected a numeric \"theta\""))?;
        if !(theta.is_finite() && theta > 0.0) {
            return Err(format!("job {name:?}: theta must be finite and > 0, got {theta}"));
        }
        let dataset = load_dataset(&phylip).map_err(|e| format!("job {name:?}: {e}"))?;
        let proposals = job_field_usize(job, "proposals", 32, &name)?;
        // Jobs default to the serial backend — the pool supplies the
        // parallelism; per-job "backend" opts into nested dispatch.
        let mut job_backend = Backend::Serial;
        if let Some(backend) = job.get("backend") {
            job_backend = backend
                .as_str()
                .ok_or_else(|| format!("job {name:?}: \"backend\" must be a string"))?
                .parse::<Backend>()
                .map_err(|e| format!("job {name:?}: {e}"))?;
        }
        let mpcgs_config = MpcgsConfig {
            initial_theta: theta,
            em_iterations: job_field_usize(job, "em", 3, &name)?,
            proposals_per_iteration: proposals,
            draws_per_iteration: proposals,
            burn_in_draws: job_field_usize(job, "burn_in", 1_000, &name)?,
            sample_draws: job_field_usize(job, "samples", 10_000, &name)?,
            backend: job_backend,
            ..MpcgsConfig::default()
        };
        let strategy = match job.get("strategy").and_then(Json::as_str) {
            None | Some("gmh") => SamplerStrategy::MultiProposal,
            Some("baseline") => SamplerStrategy::Baseline,
            Some(other) => {
                return Err(format!(
                    "job {name:?}: unknown strategy {other:?} (expected \"gmh\" or \"baseline\")"
                ))
            }
        };
        let chains = job_field_usize(job, "chains", 1, &name)?;
        let ensemble = if chains > 1 {
            let exchange = match job.get("exchange").and_then(Json::as_str) {
                None | Some("independent") => ExchangePolicy::Independent,
                Some("ladder") => ExchangePolicy::geometric_ladder(
                    chains,
                    job.get("hottest").and_then(Json::as_f64).unwrap_or(4.0),
                    job_field_usize(job, "swap_interval", 10, &name)?,
                )
                .map_err(|e| format!("job {name:?}: invalid temperature ladder: {e}"))?,
                Some(other) => {
                    return Err(format!(
                        "job {name:?}: unknown exchange policy {other:?} (expected \
                         \"independent\" or \"ladder\")"
                    ))
                }
            };
            Some(EnsembleSpec {
                n_chains: chains,
                exchange,
                ensemble_seed: job_field_usize(job, "seed", 20_160_401, &name)? as u64,
                ..EnsembleSpec::default()
            })
        } else {
            None
        };
        let mut spec = JobSpec::new(name.clone(), dataset, mpcgs_config, 0);
        spec.seed = u32::try_from(job_field_usize(job, "seed", 20_160_401, &name)?)
            .map_err(|_| format!("job {name:?}: seed does not fit in 32 bits"))?;
        spec.strategy = strategy;
        spec.ensemble = ensemble;
        jobs.push(spec);
    }
    Ok((config, jobs))
}

#[cfg(test)]
mod tests {
    use super::*;
    use phylo::Alignment;

    fn argv(line: &str) -> Vec<String> {
        line.split_whitespace().map(str::to_string).collect()
    }

    fn parse(line: &str) -> Result<CliArgs, String> {
        parse_args(&argv(line))
    }

    #[test]
    fn positional_interface_and_defaults() {
        let cli = parse("a.phy b.phy 0.5").unwrap();
        assert_eq!(cli.phylip_paths, vec!["a.phy", "b.phy"]);
        assert_eq!(cli.initial_theta, 0.5);
        assert_eq!(cli.chains, 1);
        assert_eq!(cli.backend, Backend::Rayon);
        assert!(cli.rates.is_empty());
        assert!(cli.ensemble_spec().unwrap().is_none());
        assert!(parse("a.phy").is_err());
        assert!(parse("a.phy x").is_err());
    }

    #[test]
    fn zero_chains_is_rejected_at_parse_time() {
        let err = parse("a.phy 1.0 --chains 0").unwrap_err();
        assert!(err.contains("--chains"), "unhelpful error: {err}");
        assert!(err.contains("0 chains"), "error should name the problem: {err}");
    }

    #[test]
    fn hottest_must_be_finite_and_above_one() {
        for bad in ["1.0", "0.5", "-2", "nan", "inf"] {
            let err = parse(&format!("a.phy 1.0 --chains 4 --exchange ladder --hottest {bad}"))
                .unwrap_err();
            assert!(err.contains("--hottest"), "unhelpful error for {bad}: {err}");
        }
        let cli = parse("a.phy 1.0 --chains 4 --exchange ladder --hottest 8.0").unwrap();
        let spec = cli.ensemble_spec().unwrap().unwrap();
        assert_eq!(spec.n_chains, 4);
        spec.validate().unwrap();
    }

    #[test]
    fn ladder_flags_require_a_ladder_ensemble() {
        assert!(parse("a.phy 1.0 --exchange ladder").is_err());
        assert!(parse("a.phy 1.0 --hottest 4.0").is_err());
        assert!(parse("a.phy 1.0 --chains 4 --hottest 4.0").is_err());
        assert!(parse("a.phy 1.0 --chains 4 --exchange independent --swap-interval 5").is_err());
        let cli = parse("a.phy 1.0 --chains 4 --exchange ladder --swap-interval 5").unwrap();
        assert!(matches!(
            cli.exchange_policy().unwrap(),
            Some(ExchangePolicy::TemperatureLadder { swap_interval: 5, .. })
        ));
    }

    #[test]
    fn rates_round_trip_through_the_parser() {
        let cli = parse("a.phy b.phy 1.0 --rate a=2.0 --rate b=0.25").unwrap();
        assert_eq!(cli.rates, vec![("a".to_string(), 2.0), ("b".to_string(), 0.25)]);
        // Malformed and degenerate rates are rejected with pointed errors.
        for bad in ["a", "=2.0", "a=", "a=zero", "a=0", "a=-1", "a=nan", "a=inf"] {
            let err = parse(&format!("a.phy 1.0 --rate {bad}")).unwrap_err();
            assert!(err.contains("--rate"), "unhelpful error for {bad:?}: {err}");
        }
    }

    #[test]
    fn rates_apply_to_known_loci_and_reject_unknown_names() {
        let alignment = Alignment::from_letters(&[("x", "ACGT"), ("y", "ACGA")]).unwrap();
        let dataset = Dataset::new(vec![
            Locus::new("a", alignment.clone()),
            Locus::new("b", alignment.clone()),
        ])
        .unwrap();
        let rated = apply_rates(dataset.clone(), &[("b".to_string(), 2.0), ("b".to_string(), 3.0)])
            .unwrap();
        assert_eq!(rated.locus(0).relative_rate(), 1.0);
        assert_eq!(rated.locus(1).relative_rate(), 3.0); // last assignment wins
        let err = apply_rates(dataset.clone(), &[("c".to_string(), 2.0)]).unwrap_err();
        assert!(err.contains("unknown locus") && err.contains("a, b"), "{err}");
        // No rates: the dataset passes through untouched.
        assert_eq!(apply_rates(dataset.clone(), &[]).unwrap(), dataset);
    }

    #[test]
    fn device_spec_requires_the_device_backend() {
        let err = parse("a.phy 1.0 --device-spec kepler").unwrap_err();
        assert!(err.contains("--backend device"), "{err}");
        #[cfg(not(feature = "device"))]
        {
            let err = parse("a.phy 1.0 --backend device").unwrap_err();
            assert!(err.contains("--features device"), "{err}");
        }
    }

    #[cfg(feature = "device")]
    #[test]
    fn device_backend_and_presets_parse() {
        let cli = parse("a.phy 1.0 --backend device").unwrap();
        assert_eq!(cli.backend.device_spec(), Some(DeviceSpec::kepler()));
        let cli = parse("a.phy 1.0 --backend device --device-spec modern").unwrap();
        assert_eq!(cli.backend.device_spec(), Some(DeviceSpec::modern()));
        // Order does not matter.
        let cli = parse("a.phy 1.0 --device-spec modern --backend device").unwrap();
        assert_eq!(cli.backend.device_spec(), Some(DeviceSpec::modern()));
        assert!(parse("a.phy 1.0 --backend device --device-spec tpu").is_err());
    }

    #[test]
    fn unknown_options_are_rejected() {
        assert!(parse("a.phy 1.0 --frobnicate").is_err());
        assert!(parse("a.phy 1.0 --samples").is_err()); // missing value
    }

    #[test]
    fn checkpoint_flags_parse_and_validate() {
        let cli = parse("a.phy 1.0 --checkpoint-every 50 --checkpoint-path run.ckpt").unwrap();
        assert_eq!(cli.checkpoint_every, Some(50));
        assert_eq!(cli.checkpoint_path.as_deref(), Some("run.ckpt"));
        assert!(cli.resume.is_none());

        let cli = parse("a.phy 1.0 --resume run.ckpt").unwrap();
        assert_eq!(cli.resume.as_deref(), Some("run.ckpt"));

        let err = parse("a.phy 1.0 --checkpoint-every 50").unwrap_err();
        assert!(err.contains("--checkpoint-path"), "unpointed error: {err}");
        let err = parse("a.phy 1.0 --checkpoint-every 0 --checkpoint-path x").unwrap_err();
        assert!(err.contains("--checkpoint-every"), "unpointed error: {err}");
    }

    #[test]
    fn serve_args_parse_with_overrides() {
        let serve =
            parse_serve_args(&argv("jobs.json --workers 4 --backend rayon --quantum 16")).unwrap();
        assert_eq!(serve.job_path, "jobs.json");
        assert_eq!(serve.workers, Some(4));
        assert_eq!(serve.backend, Some(Backend::Rayon));
        assert_eq!(serve.quantum, Some(16));

        let stdin = parse_serve_args(&argv("-")).unwrap();
        assert_eq!(stdin.job_path, "-");
        assert!(stdin.workers.is_none());

        assert!(parse_serve_args(&argv("")).is_err());
        assert!(parse_serve_args(&argv("jobs.json extra.json")).is_err());
        assert!(parse_serve_args(&argv("jobs.json --workers 0")).is_err());
        assert!(parse_serve_args(&argv("jobs.json --quantum 0")).is_err());
        assert!(parse_serve_args(&argv("jobs.json --frobnicate")).is_err());
    }

    #[test]
    fn job_files_parse_with_defaults_and_pointed_errors() {
        let dir = std::env::temp_dir().join("mpcgs-cli-jobfile-test");
        std::fs::create_dir_all(&dir).unwrap();
        let phy = dir.join("tiny.phy");
        std::fs::write(&phy, " 4 8\nseq_a     ACGTACGT\nseq_b     ACGTACGA\nseq_c     ACGAACGT\nseq_d     TCGTACGT\n").unwrap();
        let phy = phy.to_string_lossy().into_owned();

        let no_overrides =
            ServeArgs { job_path: "-".to_string(), workers: None, backend: None, quantum: None };
        let text = format!(
            r#"{{"workers": 3, "quantum": 8,
                "jobs": [
                  {{"name": "plain", "phylip": ["{phy}"], "theta": 0.5,
                    "samples": 64, "burn_in": 16, "em": 1, "seed": 9}},
                  {{"phylip": ["{phy}"], "theta": 1.0, "chains": 2, "exchange": "ladder",
                    "hottest": 2.0, "swap_interval": 5, "strategy": "baseline"}}
                ]}}"#
        );
        let (config, jobs) = parse_job_file(&text, &no_overrides).unwrap();
        assert_eq!(config.workers, 3);
        assert_eq!(config.quantum, 8);
        assert_eq!(config.backend, Backend::Serial);
        assert_eq!(jobs.len(), 2);
        assert_eq!(jobs[0].name, "plain");
        assert_eq!(jobs[0].seed, 9);
        assert_eq!(jobs[0].config.sample_draws, 64);
        assert_eq!(jobs[0].config.initial_theta, 0.5);
        assert!(jobs[0].ensemble.is_none());
        assert_eq!(jobs[1].name, "job-1"); // unnamed jobs get an index name
        assert_eq!(jobs[1].strategy, SamplerStrategy::Baseline);
        let spec = jobs[1].ensemble.as_ref().unwrap();
        assert_eq!(spec.n_chains, 2);
        spec.validate().unwrap();

        // Command-line overrides win over the file.
        let overrides = ServeArgs {
            job_path: "-".to_string(),
            workers: Some(7),
            backend: Some(Backend::Rayon),
            quantum: Some(2),
        };
        let (config, _) = parse_job_file(&text, &overrides).unwrap();
        assert_eq!((config.workers, config.backend, config.quantum), (7, Backend::Rayon, 2));

        // Pointed errors name the job and the field.
        let err = parse_job_file(r#"{"jobs": [{"name": "x", "theta": 1.0}]}"#, &no_overrides)
            .unwrap_err();
        assert!(err.contains("\"x\"") && err.contains("phylip"), "unpointed error: {err}");
        let err =
            parse_job_file(&format!(r#"{{"jobs": [{{"phylip": ["{phy}"]}}]}}"#), &no_overrides)
                .unwrap_err();
        assert!(err.contains("theta"), "unpointed error: {err}");
        assert!(parse_job_file("not json", &no_overrides).is_err());
        assert!(parse_job_file("{}", &no_overrides).is_err());
    }
}
