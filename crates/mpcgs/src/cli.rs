//! Command-line argument parsing for the `mpcgs` binary, as a library
//! module so every validation rule is unit-testable without spawning a
//! process.
//!
//! The original program is invoked as `./mpcgs <seqdata.phy> <init theta>`
//! (Section 5.1.1); this parser keeps that positional interface, accepts
//! *several* PHYLIP files for multi-locus runs, and adds flags for chain
//! sizing, sampler strategy, execution backend (including the simulated
//! accelerator, `--backend device` with `--device-spec kepler|modern`),
//! per-locus relative rates (`--rate <locus>=<r>`) and ensembles.

use std::path::Path;

use exec::Backend;
#[cfg(feature = "device")]
use exec::DeviceSpec;
use phylo::io::phylip::parse_phylip;
use phylo::likelihood::Kernel;
use phylo::{Dataset, Locus};

use crate::ensemble::{EnsembleSpec, ExchangePolicy};
use crate::session::SamplerStrategy;

/// Which exchange policy the CLI builds for a multi-chain run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExchangeKind {
    /// Fully independent replicated chains.
    Independent,
    /// MC³ replica exchange on a geometric temperature ladder.
    Ladder,
}

/// Everything the command line configures.
#[derive(Debug, Clone)]
pub struct CliArgs {
    /// The PHYLIP input files, one locus each.
    pub phylip_paths: Vec<String>,
    /// The initial driving value θ₀ (last positional argument).
    pub initial_theta: f64,
    /// Retained genealogy samples per chain.
    pub samples: usize,
    /// Burn-in draws per chain.
    pub burn_in: usize,
    /// Proposals per Generalized-MH iteration.
    pub proposals: usize,
    /// EM iterations.
    pub em_iterations: usize,
    /// Host RNG seed.
    pub seed: u32,
    /// Sampler strategy.
    pub strategy: SamplerStrategy,
    /// Execution backend.
    pub backend: Backend,
    /// Likelihood combine kernel.
    pub kernel: Kernel,
    /// Number of chains per run (1 = single chain).
    pub chains: usize,
    /// Ensemble exchange policy, when given.
    pub exchange: Option<ExchangeKind>,
    /// Rounds between replica-exchange swap attempts (ladder only).
    pub swap_interval: Option<usize>,
    /// Temperature of the hottest ladder rung (ladder only; validated
    /// finite and > 1 at parse time).
    pub hottest: Option<f64>,
    /// Per-locus relative mutation rates (`--rate <locus>=<r>`), validated
    /// finite and > 0 at parse time; locus names are checked against the
    /// loaded dataset by [`apply_rates`].
    pub rates: Vec<(String, f64)>,
}

/// Print the usage text to stderr.
pub fn print_usage() {
    eprintln!(
        "usage: mpcgs <seqdata.phy>... <init-theta> [options]\n\
         \n\
         Each PHYLIP file becomes one locus; several files run a multi-locus\n\
         estimation over their shared sequence names.\n\
         \n\
         options:\n\
           --samples <n>        retained genealogy samples per chain (default 10000)\n\
           --burn-in <n>        burn-in draws per chain (default 1000)\n\
           --proposals <n>      proposals per Generalized-MH iteration (default 32)\n\
           --em <n>             EM iterations (default 3)\n\
           --seed <n>           host RNG seed (default 20160401)\n\
           --strategy <name>    sampler strategy: gmh | baseline (default gmh)\n\
           --backend <name>     execution backend: serial | rayon | device (default rayon;\n\
                                device requires a build with --features device and runs\n\
                                the simulated accelerator queue, reporting a measured\n\
                                host-vs-device cost breakdown)\n\
           --device-spec <name> device preset for --backend device: kepler | modern\n\
                                (default kepler)\n\
           --kernel <name>      likelihood combine kernel: scalar | simd | auto\n\
                                (default auto: probe the CPU at startup and use the\n\
                                AVX2+FMA combine loop when available; simd and auto\n\
                                require a build with --features simd and fall back to\n\
                                scalar otherwise)\n\
           --rate <locus>=<r>   relative mutation rate for one locus (repeatable; the\n\
                                locus name is the PHYLIP file stem; r finite and > 0)\n\
           --chains <n>         shard each run across n chains (default 1: single chain)\n\
           --exchange <name>    ensemble exchange policy: independent | ladder\n\
                                (default independent; ladder runs MC3 replica exchange\n\
                                on a geometric temperature ladder)\n\
           --swap-interval <n>  rounds between replica-exchange swap attempts\n\
                                (ladder only, default 10)\n\
           --hottest <t>        temperature of the hottest ladder rung (default 4.0;\n\
                                must be finite and > 1)"
    );
}

/// Parse `--rate <locus>=<r>` syntax.
fn parse_rate(text: &str) -> Result<(String, f64), String> {
    let (name, value) = text.split_once('=').ok_or_else(|| {
        format!("--rate: expected <locus>=<rate>, got {text:?} (e.g. --rate locus1=2.0)")
    })?;
    if name.is_empty() {
        return Err(format!("--rate: empty locus name in {text:?}"));
    }
    let rate: f64 =
        value.parse().map_err(|_| format!("--rate: invalid rate {value:?} for locus {name:?}"))?;
    if !(rate.is_finite() && rate > 0.0) {
        return Err(format!("--rate: rate for locus {name:?} must be finite and > 0, got {rate}"));
    }
    Ok((name.to_string(), rate))
}

/// Parse the command line (everything after the program name).
pub fn parse_args(args: &[String]) -> Result<CliArgs, String> {
    // Leading positional arguments: one or more PHYLIP files, then theta.
    let mut positionals = Vec::new();
    let mut i = 0;
    while i < args.len() && !args[i].starts_with("--") {
        positionals.push(args[i].clone());
        i += 1;
    }
    if positionals.len() < 2 {
        return Err("expected at least one PHYLIP file and an initial theta".to_string());
    }
    let theta_text = positionals.pop().expect("at least two positionals");
    let initial_theta: f64 =
        theta_text.parse().map_err(|_| format!("invalid initial theta {theta_text:?}"))?;
    let mut cli = CliArgs {
        phylip_paths: positionals,
        initial_theta,
        samples: 10_000,
        burn_in: 1_000,
        proposals: 32,
        em_iterations: 3,
        seed: 20_160_401,
        strategy: SamplerStrategy::MultiProposal,
        backend: Backend::Rayon,
        kernel: Kernel::Auto,
        chains: 1,
        exchange: None,
        swap_interval: None,
        hottest: None,
        rates: Vec::new(),
    };
    let mut device_spec: Option<String> = None;
    while i < args.len() {
        let flag = args[i].as_str();
        let mut take_value = |name: &str| -> Result<String, String> {
            i += 1;
            args.get(i).cloned().ok_or_else(|| format!("missing value for {name}"))
        };
        match flag {
            "--samples" => {
                cli.samples =
                    take_value("--samples")?.parse().map_err(|e| format!("--samples: {e}"))?
            }
            "--burn-in" => {
                cli.burn_in =
                    take_value("--burn-in")?.parse().map_err(|e| format!("--burn-in: {e}"))?
            }
            "--proposals" => {
                cli.proposals =
                    take_value("--proposals")?.parse().map_err(|e| format!("--proposals: {e}"))?
            }
            "--em" => {
                cli.em_iterations = take_value("--em")?.parse().map_err(|e| format!("--em: {e}"))?
            }
            "--seed" => {
                cli.seed = take_value("--seed")?.parse().map_err(|e| format!("--seed: {e}"))?
            }
            "--strategy" => {
                cli.strategy = match take_value("--strategy")?.to_ascii_lowercase().as_str() {
                    "gmh" | "multiproposal" | "multi-proposal" => SamplerStrategy::MultiProposal,
                    "baseline" | "lamarc" => SamplerStrategy::Baseline,
                    other => {
                        return Err(format!(
                            "unknown strategy {other:?} (expected \"gmh\" or \"baseline\")"
                        ))
                    }
                }
            }
            "--backend" => cli.backend = take_value("--backend")?.parse::<Backend>()?,
            "--device-spec" => device_spec = Some(take_value("--device-spec")?),
            "--kernel" => cli.kernel = take_value("--kernel")?.parse::<Kernel>()?,
            "--rate" => cli.rates.push(parse_rate(&take_value("--rate")?)?),
            "--chains" => {
                cli.chains =
                    take_value("--chains")?.parse().map_err(|e| format!("--chains: {e}"))?;
                if cli.chains == 0 {
                    return Err("--chains: 0 chains cannot sample anything; pass 1 for a \
                                single chain or n > 1 for an ensemble"
                        .to_string());
                }
            }
            "--exchange" => {
                cli.exchange = match take_value("--exchange")?.to_ascii_lowercase().as_str() {
                    "independent" => Some(ExchangeKind::Independent),
                    "ladder" | "temperature-ladder" | "mc3" => Some(ExchangeKind::Ladder),
                    other => {
                        return Err(format!(
                            "unknown exchange policy {other:?} (expected \"independent\" or \
                             \"ladder\")"
                        ))
                    }
                }
            }
            "--swap-interval" => {
                cli.swap_interval = Some(
                    take_value("--swap-interval")?
                        .parse()
                        .map_err(|e| format!("--swap-interval: {e}"))?,
                )
            }
            "--hottest" => {
                let hottest: f64 =
                    take_value("--hottest")?.parse().map_err(|e| format!("--hottest: {e}"))?;
                if !(hottest.is_finite() && hottest > 1.0) {
                    return Err(format!(
                        "--hottest: the hottest rung must be finite and > 1 (a ladder that \
                         never heats is not a ladder), got {hottest}"
                    ));
                }
                cli.hottest = Some(hottest);
            }
            other => return Err(format!("unknown option {other:?}")),
        }
        i += 1;
    }
    // Resolve the device preset into the backend.
    if let Some(preset) = device_spec {
        if !cli.backend.is_device() {
            return Err("--device-spec only applies with --backend device".to_string());
        }
        #[cfg(feature = "device")]
        {
            let spec = DeviceSpec::from_preset(&preset).ok_or_else(|| {
                format!(
                    "--device-spec: unknown preset {preset:?} (expected \"kepler\" or \
                     \"modern\")"
                )
            })?;
            cli.backend = Backend::device(spec);
        }
        // Without the feature the backend can never be the device backend,
        // so the rejection above already returned.
        #[cfg(not(feature = "device"))]
        let _ = preset;
    }
    // Ensemble flags only act when more than one chain runs — reject
    // combinations the run would otherwise silently ignore.
    if cli.chains <= 1 {
        if cli.exchange.is_some() {
            return Err("--exchange requires --chains > 1".to_string());
        }
        if cli.swap_interval.is_some() || cli.hottest.is_some() {
            return Err(
                "--swap-interval/--hottest require --chains > 1 and --exchange ladder".to_string()
            );
        }
    } else if cli.exchange != Some(ExchangeKind::Ladder)
        && (cli.swap_interval.is_some() || cli.hottest.is_some())
    {
        return Err("--swap-interval/--hottest only apply with --exchange ladder".to_string());
    }
    Ok(cli)
}

impl CliArgs {
    /// The exchange policy of a multi-chain run (`None` when a single chain
    /// runs). Ladder construction validates the temperature span.
    pub fn exchange_policy(&self) -> Result<Option<ExchangePolicy>, String> {
        if self.chains <= 1 {
            return Ok(None);
        }
        let policy = match self.exchange.unwrap_or(ExchangeKind::Independent) {
            ExchangeKind::Independent => ExchangePolicy::Independent,
            ExchangeKind::Ladder => ExchangePolicy::geometric_ladder(
                self.chains,
                self.hottest.unwrap_or(4.0),
                self.swap_interval.unwrap_or(10),
            )
            .map_err(|e| format!("invalid temperature ladder: {e}"))?,
        };
        Ok(Some(policy))
    }

    /// The ensemble specification of a multi-chain run (`None` when a single
    /// chain runs).
    pub fn ensemble_spec(&self) -> Result<Option<EnsembleSpec>, String> {
        Ok(self.exchange_policy()?.map(|exchange| EnsembleSpec {
            n_chains: self.chains,
            exchange,
            ensemble_seed: self.seed as u64,
            ..EnsembleSpec::default()
        }))
    }
}

/// Load every PHYLIP file as one locus of a shared [`Dataset`]; the locus
/// name is the file stem.
pub fn load_dataset(paths: &[String]) -> Result<Dataset, String> {
    let mut loci = Vec::with_capacity(paths.len());
    for path in paths {
        let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
        let alignment =
            parse_phylip(&text).map_err(|e| format!("cannot parse PHYLIP input {path}: {e}"))?;
        let name = Path::new(path)
            .file_stem()
            .map(|stem| stem.to_string_lossy().into_owned())
            .unwrap_or_else(|| path.clone());
        loci.push(Locus::new(name, alignment));
    }
    Dataset::new(loci).map_err(|e| format!("inconsistent loci: {e}"))
}

/// Apply `--rate <locus>=<r>` assignments to a loaded dataset. Unknown locus
/// names are rejected (listing the names that exist), repeated assignments
/// take the last value, loci without an assignment keep rate 1.
pub fn apply_rates(dataset: Dataset, rates: &[(String, f64)]) -> Result<Dataset, String> {
    if rates.is_empty() {
        return Ok(dataset);
    }
    let known: Vec<String> = dataset.loci().iter().map(|l| l.name().to_string()).collect();
    for (name, _) in rates {
        if !known.iter().any(|k| k == name) {
            return Err(format!(
                "--rate: unknown locus {name:?} (loaded loci: {})",
                known.join(", ")
            ));
        }
    }
    let loci = dataset
        .loci()
        .iter()
        .map(|locus| {
            let rate = rates
                .iter()
                .rev()
                .find(|(name, _)| name == locus.name())
                .map(|&(_, rate)| rate)
                .unwrap_or_else(|| locus.relative_rate());
            Locus::with_rate(locus.name(), locus.alignment().clone(), rate)
                .map_err(|e| format!("--rate: {e}"))
        })
        .collect::<Result<Vec<_>, String>>()?;
    Dataset::new(loci).map_err(|e| format!("inconsistent loci: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use phylo::Alignment;

    fn argv(line: &str) -> Vec<String> {
        line.split_whitespace().map(str::to_string).collect()
    }

    fn parse(line: &str) -> Result<CliArgs, String> {
        parse_args(&argv(line))
    }

    #[test]
    fn positional_interface_and_defaults() {
        let cli = parse("a.phy b.phy 0.5").unwrap();
        assert_eq!(cli.phylip_paths, vec!["a.phy", "b.phy"]);
        assert_eq!(cli.initial_theta, 0.5);
        assert_eq!(cli.chains, 1);
        assert_eq!(cli.backend, Backend::Rayon);
        assert!(cli.rates.is_empty());
        assert!(cli.ensemble_spec().unwrap().is_none());
        assert!(parse("a.phy").is_err());
        assert!(parse("a.phy x").is_err());
    }

    #[test]
    fn zero_chains_is_rejected_at_parse_time() {
        let err = parse("a.phy 1.0 --chains 0").unwrap_err();
        assert!(err.contains("--chains"), "unhelpful error: {err}");
        assert!(err.contains("0 chains"), "error should name the problem: {err}");
    }

    #[test]
    fn hottest_must_be_finite_and_above_one() {
        for bad in ["1.0", "0.5", "-2", "nan", "inf"] {
            let err = parse(&format!("a.phy 1.0 --chains 4 --exchange ladder --hottest {bad}"))
                .unwrap_err();
            assert!(err.contains("--hottest"), "unhelpful error for {bad}: {err}");
        }
        let cli = parse("a.phy 1.0 --chains 4 --exchange ladder --hottest 8.0").unwrap();
        let spec = cli.ensemble_spec().unwrap().unwrap();
        assert_eq!(spec.n_chains, 4);
        spec.validate().unwrap();
    }

    #[test]
    fn ladder_flags_require_a_ladder_ensemble() {
        assert!(parse("a.phy 1.0 --exchange ladder").is_err());
        assert!(parse("a.phy 1.0 --hottest 4.0").is_err());
        assert!(parse("a.phy 1.0 --chains 4 --hottest 4.0").is_err());
        assert!(parse("a.phy 1.0 --chains 4 --exchange independent --swap-interval 5").is_err());
        let cli = parse("a.phy 1.0 --chains 4 --exchange ladder --swap-interval 5").unwrap();
        assert!(matches!(
            cli.exchange_policy().unwrap(),
            Some(ExchangePolicy::TemperatureLadder { swap_interval: 5, .. })
        ));
    }

    #[test]
    fn rates_round_trip_through_the_parser() {
        let cli = parse("a.phy b.phy 1.0 --rate a=2.0 --rate b=0.25").unwrap();
        assert_eq!(cli.rates, vec![("a".to_string(), 2.0), ("b".to_string(), 0.25)]);
        // Malformed and degenerate rates are rejected with pointed errors.
        for bad in ["a", "=2.0", "a=", "a=zero", "a=0", "a=-1", "a=nan", "a=inf"] {
            let err = parse(&format!("a.phy 1.0 --rate {bad}")).unwrap_err();
            assert!(err.contains("--rate"), "unhelpful error for {bad:?}: {err}");
        }
    }

    #[test]
    fn rates_apply_to_known_loci_and_reject_unknown_names() {
        let alignment = Alignment::from_letters(&[("x", "ACGT"), ("y", "ACGA")]).unwrap();
        let dataset = Dataset::new(vec![
            Locus::new("a", alignment.clone()),
            Locus::new("b", alignment.clone()),
        ])
        .unwrap();
        let rated = apply_rates(dataset.clone(), &[("b".to_string(), 2.0), ("b".to_string(), 3.0)])
            .unwrap();
        assert_eq!(rated.locus(0).relative_rate(), 1.0);
        assert_eq!(rated.locus(1).relative_rate(), 3.0); // last assignment wins
        let err = apply_rates(dataset.clone(), &[("c".to_string(), 2.0)]).unwrap_err();
        assert!(err.contains("unknown locus") && err.contains("a, b"), "{err}");
        // No rates: the dataset passes through untouched.
        assert_eq!(apply_rates(dataset.clone(), &[]).unwrap(), dataset);
    }

    #[test]
    fn device_spec_requires_the_device_backend() {
        let err = parse("a.phy 1.0 --device-spec kepler").unwrap_err();
        assert!(err.contains("--backend device"), "{err}");
        #[cfg(not(feature = "device"))]
        {
            let err = parse("a.phy 1.0 --backend device").unwrap_err();
            assert!(err.contains("--features device"), "{err}");
        }
    }

    #[cfg(feature = "device")]
    #[test]
    fn device_backend_and_presets_parse() {
        let cli = parse("a.phy 1.0 --backend device").unwrap();
        assert_eq!(cli.backend.device_spec(), Some(DeviceSpec::kepler()));
        let cli = parse("a.phy 1.0 --backend device --device-spec modern").unwrap();
        assert_eq!(cli.backend.device_spec(), Some(DeviceSpec::modern()));
        // Order does not matter.
        let cli = parse("a.phy 1.0 --device-spec modern --backend device").unwrap();
        assert_eq!(cli.backend.device_spec(), Some(DeviceSpec::modern()));
        assert!(parse("a.phy 1.0 --backend device --device-spec tpu").is_err());
    }

    #[test]
    fn unknown_options_are_rejected() {
        assert!(parse("a.phy 1.0 --frobnicate").is_err());
        assert!(parse("a.phy 1.0 --samples").is_err()); // missing value
    }
}
