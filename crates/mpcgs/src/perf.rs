//! The performance model that regenerates the paper's speedup results
//! (Tables 2–4, Figures 14–16).
//!
//! The original evaluation compares wall-clock runtimes of GPU-resident mpcgs
//! against serial LAMARC. This environment has neither the GPU nor the C++
//! LAMARC, so the speedups are *modelled*: the sampler's algorithmic
//! structure (how many kernels of how many threads doing how much work per
//! thread) is mapped onto the simulated device of the `exec` crate, and the
//! baseline is mapped onto the serial host model. The mechanisms that produce
//! the paper's curve shapes are explicit:
//!
//! * The device pays a **launch overhead per child kernel**: the proposal
//!   kernel launches one data-likelihood kernel per proposal via dynamic
//!   parallelism (Section 5.2.1), so every Generalized-MH iteration carries
//!   `N + 1` launch overheads regardless of the data size. Host work per
//!   transition grows linearly with sequence length, so the speedup grows
//!   roughly linearly with sequence length until the device saturates —
//!   Figure 16.
//! * The **baseline updates likelihoods incrementally** (only the O(log n)
//!   nodes on the path affected by a proposal), whereas the GPU kernel
//!   "simply recalculate\[s\] the likelihood of every node in every tree"
//!   (Section 5.2.2). Larger trees therefore cost the device proportionally
//!   more than the host, and per-thread traversal state spills past the
//!   register budget, eroding the speedup as the number of sequences grows —
//!   Figure 15.
//! * A **fixed device-side initialisation cost** (pre-allocation of the
//!   proposal set and sample buffers, stack resizing, PRNG setup — Section
//!   5.1.3) amortises over longer runs, so the speedup rises gently with the
//!   number of samples per chain — Figure 14.
//!
//! A single scalar calibration (`host_calibration`) scales the host model so
//! the reference workload (12 sequences × 200 bp × 20 000 samples, the first
//! row of every speedup table) reproduces the paper's 3.69×; every other
//! entry is then produced by the model with no further tuning.

use exec::{DeviceModel, DeviceSpec, HostModel, KernelLaunch};

use lamarc::run::RunCounters;
use phylo::likelihood::{Kernel, KernelVariant};

/// Observed effectiveness of the batched engine's dirty-path caching,
/// derived from the work counters a run collects ([`RunCounters`]). Where
/// [`SpeedupModel`] *models* the paper's GPU-versus-host ratios, this report
/// measures what the likelihood engine actually recomputed, making the
/// caching layer observable in benchmarks and logs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CachingReport {
    /// Interior nodes recomputed per likelihood evaluation (dirty paths,
    /// amortised generator workspace rebuilds, and commit-on-accept
    /// promotions).
    pub nodes_per_evaluation: f64,
    /// Interior nodes a fresh full prune recomputes (the naive per-proposal
    /// cost).
    pub full_prune_nodes: usize,
    /// `nodes_per_evaluation / full_prune_nodes` — the fraction of a full
    /// prune the engine actually performs.
    pub reprune_fraction: f64,
    /// `1 / reprune_fraction`: the node-recomputation speedup of the cached
    /// engine over naive per-proposal pruning.
    pub estimated_kernel_speedup: f64,
    /// Fraction of Generalized-MH iterations whose generator workspace was
    /// served from the engine's memo instead of being rebuilt.
    pub generator_cache_hit_rate: f64,
    /// Fraction of per-edge transition-matrix consults served from the
    /// workspace's [`phylo::likelihood::EdgeMatrixCache`] instead of being
    /// recomputed (0.0 when the run consulted no matrices).
    pub matrix_cache_hit_rate: f64,
    /// The combine-kernel variant that actually ran the node recomputations
    /// (the [`Kernel::variant`] resolution: a SIMD request in a build
    /// without the `simd` feature is recorded as scalar, and `auto` records
    /// the runtime-probed variant).
    pub kernel: KernelVariant,
    /// The measured host-vs-device cost breakdown, when the run dispatched
    /// through `Backend::Device` (`device` feature). Attached with
    /// [`CachingReport::with_device`]; `None` otherwise.
    pub device: Option<exec::DeviceReport>,
}

impl CachingReport {
    /// Build a report from run counters, the interior-node count of the
    /// genealogies scored, and the combine kernel the engine was configured
    /// with (recorded as its [`Kernel::variant`] resolution).
    pub fn from_stats(stats: &RunCounters, n_internal: usize, kernel: Kernel) -> Self {
        let nodes_per_evaluation = stats.nodes_pruned_per_evaluation();
        let reprune_fraction =
            if n_internal == 0 { 0.0 } else { nodes_per_evaluation / n_internal as f64 };
        let estimated_kernel_speedup =
            if reprune_fraction > 0.0 { 1.0 / reprune_fraction } else { 1.0 };
        let generator_cache_hit_rate = if stats.iterations == 0 {
            0.0
        } else {
            stats.generator_cache_hits as f64 / stats.iterations as f64
        };
        CachingReport {
            nodes_per_evaluation,
            full_prune_nodes: n_internal,
            reprune_fraction,
            estimated_kernel_speedup,
            generator_cache_hit_rate,
            matrix_cache_hit_rate: stats.matrix_cache_hit_rate(),
            kernel: kernel.variant(),
            device: None,
        }
    }

    /// Attach the device-queue cost breakdown of the run this report
    /// summarises (a [`exec::DeviceReport`] built from the queue stats the
    /// run accumulated).
    pub fn with_device(mut self, device: exec::DeviceReport) -> Self {
        self.device = Some(device);
        self
    }
}

/// A workload description (one row of Tables 2–4).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Workload {
    /// Number of sequences (tips).
    pub n_sequences: usize,
    /// Sequence length in base pairs.
    pub sequence_length: usize,
    /// Genealogy samples retained per EM iteration.
    pub samples_per_chain: usize,
    /// Burn-in draws per chain.
    pub burn_in: usize,
    /// Proposals per Generalized-MH iteration (`N`).
    pub proposals_per_iteration: usize,
    /// Number of EM iterations.
    pub em_iterations: usize,
}

impl Workload {
    /// The paper's reference workload: 12 sequences of 200 bp, 20 000 samples
    /// (the first row of Tables 2, 3 and 4, which all report 3.69×).
    pub fn reference() -> Self {
        Workload {
            n_sequences: 12,
            sequence_length: 200,
            samples_per_chain: 20_000,
            burn_in: 2_000,
            proposals_per_iteration: 32,
            em_iterations: 3,
        }
    }

    /// Total nodes of a genealogy over this many sequences.
    pub fn tree_nodes(&self) -> usize {
        2 * self.n_sequences - 1
    }

    /// Interior nodes of a genealogy.
    pub fn interior_nodes(&self) -> usize {
        self.n_sequences - 1
    }

    /// Total draws per chain.
    pub fn total_draws(&self) -> usize {
        self.burn_in + self.samples_per_chain
    }
}

/// Cost-model constants shared by both sides of the comparison.
#[derive(Debug, Clone, Copy, PartialEq)]
struct CostConstants {
    /// Arithmetic operations per (site, node) cell of the pruning recursion:
    /// two 4×4 matrix–vector products and a Hadamard product.
    flops_per_cell: f64,
    /// Arithmetic operations to resimulate one neighborhood (per proposal).
    flops_per_proposal: f64,
    /// Host-side serial work per Generalized-MH iteration (φ draw, index
    /// draws, bookkeeping), in operations.
    host_ops_per_iteration: f64,
    /// Gradient-ascent evaluations per maximisation stage.
    ascent_evaluations: f64,
    /// Fixed device-side initialisation cost per run, microseconds.
    device_init_us: f64,
}

impl Default for CostConstants {
    fn default() -> Self {
        CostConstants {
            flops_per_cell: 64.0,
            flops_per_proposal: 600.0,
            host_ops_per_iteration: 2_000.0,
            ascent_evaluations: 50.0,
            device_init_us: 60_000.0,
        }
    }
}

/// The speedup model (mpcgs-on-device versus LAMARC-on-host).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpeedupModel {
    device: DeviceModel,
    host: HostModel,
    constants: CostConstants,
    /// Multiplicative calibration applied to the host time.
    host_calibration: f64,
}

impl SpeedupModel {
    /// A model over the default Kepler-class device and workstation host,
    /// uncalibrated (`host_calibration = 1`).
    pub fn new() -> Self {
        SpeedupModel {
            device: DeviceModel::new(DeviceSpec::kepler()),
            host: HostModel::workstation(),
            constants: CostConstants::default(),
            host_calibration: 1.0,
        }
    }

    /// A model calibrated so the reference workload reproduces the paper's
    /// 3.69× speedup (Tables 2–4, first rows).
    pub fn paper_calibrated() -> Self {
        let mut model = SpeedupModel::new();
        let reference = Workload::reference();
        let raw = model.speedup(&reference);
        model.host_calibration = 3.69 / raw;
        model
    }

    /// The calibration factor currently applied to the host time.
    pub fn host_calibration(&self) -> f64 {
        self.host_calibration
    }

    /// Modelled serial-host (LAMARC-like) runtime in microseconds.
    ///
    /// The baseline performs one proposal and one *incremental* likelihood
    /// update per transition: only the sites times the O(log n) nodes whose
    /// conditional likelihoods are invalidated by the neighborhood change are
    /// recomputed.
    pub fn lamarc_time_us(&self, w: &Workload) -> f64 {
        let path_nodes = 2.0 + (w.n_sequences as f64).log2().ceil();
        let lik_ops = w.sequence_length as f64 * path_nodes * self.constants.flops_per_cell;
        let per_transition = self.constants.flops_per_proposal + lik_ops;
        let transitions = (w.total_draws() * w.em_iterations) as f64;
        let sampling = transitions * per_transition;
        // Serial maximisation: ascent evaluations over every sampled
        // genealogy's intervals.
        let maximisation = self.constants.ascent_evaluations
            * (w.samples_per_chain * w.em_iterations) as f64
            * w.interior_nodes() as f64
            * 4.0;
        self.host.time_us(sampling + maximisation) * self.host_calibration
    }

    /// Modelled device (mpcgs) runtime in microseconds.
    pub fn mpcgs_time_us(&self, w: &Workload) -> f64 {
        let n = w.proposals_per_iteration;
        let iterations = (w.total_draws().div_ceil(n) * w.em_iterations) as f64;

        // Proposal kernel: one thread per proposal.
        let proposal_kernel = KernelLaunch::new(
            n,
            self.constants.flops_per_proposal,
            w.tree_nodes() as f64 * 3.0,
            0.0,
        )
        .with_serial_fraction(0.02);

        // Data-likelihood kernels: one *child* launch per proposal (dynamic
        // parallelism, Section 5.2.1), each with one thread per site, every
        // thread recomputing the whole tree for its site.
        // The per-site reduction tail is logarithmic in the site count and is
        // absorbed into the launch overhead, so no serial fraction is charged
        // here (charging even 1% of the total work to a single core would
        // swamp the kernel and contradict the warp-shuffle reductions the
        // implementation uses, Section 5.2.2).
        let lik_kernel = KernelLaunch::new(
            w.sequence_length,
            w.interior_nodes() as f64 * self.constants.flops_per_cell,
            self.device.traversal_global_accesses(w.tree_nodes()),
            w.n_sequences as f64,
        );

        let per_iteration_us = self.device.kernel_time_us(&proposal_kernel)
            + n as f64 * self.device.kernel_time_us(&lik_kernel)
            + self.host.time_us(self.constants.host_ops_per_iteration);

        // Posterior-likelihood kernel: one thread per retained sample, one
        // launch per gradient-ascent evaluation per EM iteration.
        // Like the data-likelihood kernel, the final reduction is done with
        // warp shuffles and contributes only a logarithmic tail, so no serial
        // fraction is charged.
        let posterior_kernel = KernelLaunch::new(
            w.samples_per_chain,
            w.interior_nodes() as f64 * 8.0,
            w.interior_nodes() as f64,
            0.0,
        );
        let maximisation_us = self.constants.ascent_evaluations
            * w.em_iterations as f64
            * self.device.kernel_time_us(&posterior_kernel);

        self.constants.device_init_us + iterations * per_iteration_us + maximisation_us
    }

    /// Modelled speedup of mpcgs over the baseline for a workload.
    pub fn speedup(&self, w: &Workload) -> f64 {
        self.lamarc_time_us(w) / self.mpcgs_time_us(w)
    }

    /// Table 2 / Figure 14: speedup versus the number of samples per chain.
    pub fn sweep_samples(&self, samples: &[usize]) -> Vec<(usize, f64)> {
        samples
            .iter()
            .map(|&s| {
                let w = Workload { samples_per_chain: s, ..Workload::reference() };
                (s, self.speedup(&w))
            })
            .collect()
    }

    /// Table 3 / Figure 15: speedup versus the number of sequences.
    pub fn sweep_sequences(&self, sequences: &[usize]) -> Vec<(usize, f64)> {
        sequences
            .iter()
            .map(|&n| {
                let w = Workload { n_sequences: n, ..Workload::reference() };
                (n, self.speedup(&w))
            })
            .collect()
    }

    /// Table 4 / Figure 16: speedup versus the sequence length.
    pub fn sweep_sequence_length(&self, lengths: &[usize]) -> Vec<(usize, f64)> {
        lengths
            .iter()
            .map(|&len| {
                let w = Workload { sequence_length: len, ..Workload::reference() };
                (len, self.speedup(&w))
            })
            .collect()
    }
}

impl Default for SpeedupModel {
    fn default() -> Self {
        SpeedupModel::paper_calibrated()
    }
}

/// The sample counts of Table 2.
pub const TABLE2_SAMPLES: [usize; 6] = [20_000, 30_000, 40_000, 60_000, 80_000, 100_000];
/// The paper's measured speedups for Table 2.
pub const TABLE2_PAPER: [f64; 6] = [3.69, 3.8, 3.95, 4.19, 4.27, 4.32];
/// The sequence counts of Table 3.
pub const TABLE3_SEQUENCES: [usize; 8] = [12, 24, 36, 48, 60, 84, 108, 132];
/// The paper's measured speedups for Table 3.
pub const TABLE3_PAPER: [f64; 8] = [3.69, 3.41, 2.9, 2.78, 2.57, 2.43, 2.43, 2.83];
/// The sequence lengths of Table 4.
pub const TABLE4_LENGTHS: [usize; 6] = [200, 400, 600, 800, 1_000, 2_000];
/// The paper's measured speedups for Table 4.
pub const TABLE4_PAPER: [f64; 6] = [3.69, 5.67, 7.86, 10.22, 12.63, 23.28];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn calibration_hits_the_reference_speedup() {
        let model = SpeedupModel::paper_calibrated();
        let s = model.speedup(&Workload::reference());
        assert!((s - 3.69).abs() < 1e-9, "calibrated reference speedup {s}");
        assert!(model.host_calibration() > 0.0);
        assert_eq!(SpeedupModel::default(), model);
    }

    #[test]
    fn speedup_grows_roughly_linearly_with_sequence_length() {
        // Figure 16: the paper sees ~3.7x at 200 bp rising to ~23x at 2000 bp.
        let model = SpeedupModel::paper_calibrated();
        let sweep = model.sweep_sequence_length(&TABLE4_LENGTHS);
        // Monotone increase.
        assert!(sweep.windows(2).all(|w| w[1].1 > w[0].1), "{sweep:?}");
        let first = sweep[0].1;
        let last = sweep[sweep.len() - 1].1;
        assert!(
            last / first > 3.5 && last / first < 12.0,
            "2000bp should be several times faster than 200bp: {first} -> {last}"
        );
        // The growth is roughly linear: the ratio of speedup to length stays
        // within a factor-two band across the sweep.
        let per_bp: Vec<f64> = sweep.iter().map(|&(len, s)| s / len as f64).collect();
        let max = per_bp.iter().cloned().fold(f64::MIN, f64::max);
        let min = per_bp.iter().cloned().fold(f64::MAX, f64::min);
        assert!(max / min < 2.5, "per-bp speedup should stay near-constant: {per_bp:?}");
    }

    #[test]
    fn speedup_declines_mildly_with_sequence_count() {
        // Figure 15: 3.69 at 12 sequences declining toward ~2.4 at 84-132.
        let model = SpeedupModel::paper_calibrated();
        let sweep = model.sweep_sequences(&TABLE3_SEQUENCES);
        let first = sweep[0].1;
        let last = sweep[sweep.len() - 1].1;
        assert!(last < first, "speedup should decline with sequence count: {sweep:?}");
        assert!(
            last > 0.4 * first,
            "the decline should be mild, not a collapse: {first} -> {last}"
        );
    }

    #[test]
    fn speedup_rises_gently_with_sample_count() {
        // Figure 14: 3.69 at 20k samples rising to ~4.3 at 100k.
        let model = SpeedupModel::paper_calibrated();
        let sweep = model.sweep_samples(&TABLE2_SAMPLES);
        assert!(sweep.windows(2).all(|w| w[1].1 >= w[0].1), "{sweep:?}");
        let first = sweep[0].1;
        let last = sweep[sweep.len() - 1].1;
        assert!(last > first, "more samples must amortise fixed costs");
        assert!(
            last / first < 1.5,
            "the rise is gentle in the paper (3.69 -> 4.32): {first} -> {last}"
        );
    }

    #[test]
    fn modelled_times_are_positive_and_scale_with_work() {
        let model = SpeedupModel::paper_calibrated();
        let small = Workload { samples_per_chain: 1_000, ..Workload::reference() };
        let large = Workload { samples_per_chain: 100_000, ..Workload::reference() };
        assert!(model.lamarc_time_us(&small) > 0.0);
        assert!(model.mpcgs_time_us(&small) > 0.0);
        assert!(model.lamarc_time_us(&large) > model.lamarc_time_us(&small));
        assert!(model.mpcgs_time_us(&large) > model.mpcgs_time_us(&small));
    }

    #[test]
    fn workload_arithmetic() {
        let w = Workload::reference();
        assert_eq!(w.tree_nodes(), 23);
        assert_eq!(w.interior_nodes(), 11);
        assert_eq!(w.total_draws(), 22_000);
    }

    #[test]
    fn caching_report_summarises_run_counters() {
        let stats = RunCounters {
            iterations: 10,
            proposals_generated: 80,
            likelihood_evaluations: 80,
            draws: 80,
            accepted: 40,
            nodes_repruned: 240,    // 3 nodes per dirty path
            nodes_full_pruned: 110, // 10 full prunes of 11 interior nodes
            nodes_committed: 0,
            generator_cache_hits: 4,
            matrix_cache_hits: 90,
            matrix_cache_misses: 10,
            workspace_commits: 0,
            ..RunCounters::default()
        };
        let report = CachingReport::from_stats(&stats, 11, Kernel::Scalar);
        assert!((report.nodes_per_evaluation - 350.0 / 80.0).abs() < 1e-12);
        assert_eq!(report.full_prune_nodes, 11);
        assert!((report.reprune_fraction - (350.0 / 80.0) / 11.0).abs() < 1e-12);
        assert!(report.estimated_kernel_speedup > 2.0);
        assert!((report.generator_cache_hit_rate - 0.4).abs() < 1e-12);
        assert!((report.matrix_cache_hit_rate - 0.9).abs() < 1e-12);
        assert_eq!(report.kernel, KernelVariant::Scalar);
        // The report records the *resolved* kernel variant: a Simd request
        // without the feature resolves to Scalar, and an Auto request
        // records whatever the runtime probe selected.
        let simd = CachingReport::from_stats(&stats, 11, Kernel::Simd);
        assert_eq!(simd.kernel, Kernel::Simd.variant());
        let auto = CachingReport::from_stats(&stats, 11, Kernel::Auto);
        assert_eq!(auto.kernel, Kernel::Auto.variant());
        // The device section is opt-in, attached from the run's queue stats.
        assert!(report.device.is_none());
        let section = exec::DeviceReport::new(DeviceSpec::kepler(), exec::DeviceStats::default());
        assert_eq!(report.with_device(section).device, Some(section));
    }

    #[test]
    fn caching_report_handles_empty_runs() {
        let report = CachingReport::from_stats(&RunCounters::default(), 11, Kernel::Scalar);
        assert_eq!(report.nodes_per_evaluation, 0.0);
        assert_eq!(report.reprune_fraction, 0.0);
        assert_eq!(report.estimated_kernel_speedup, 1.0);
        assert_eq!(report.generator_cache_hit_rate, 0.0);
        assert_eq!(report.matrix_cache_hit_rate, 0.0);
        assert_eq!(report.kernel, KernelVariant::Scalar);
        let degenerate = CachingReport::from_stats(&RunCounters::default(), 0, Kernel::Scalar);
        assert_eq!(degenerate.reprune_fraction, 0.0);
    }

    #[test]
    fn paper_reference_tables_are_consistent() {
        assert_eq!(TABLE2_SAMPLES.len(), TABLE2_PAPER.len());
        assert_eq!(TABLE3_SEQUENCES.len(), TABLE3_PAPER.len());
        assert_eq!(TABLE4_LENGTHS.len(), TABLE4_PAPER.len());
        assert_eq!(TABLE2_PAPER[0], TABLE3_PAPER[0]);
        assert_eq!(TABLE2_PAPER[0], TABLE4_PAPER[0]);
    }
}
