//! The mpcgs θ estimator: Generalized-MH sampling driven by an
//! expectation–maximisation loop (Figure 11).

use rand::Rng;

use lamarc::mle::{maximize_relative_likelihood, RelativeLikelihood};
use phylo::likelihood::ExecutionMode;
use phylo::model::F81;
use phylo::{upgma_tree, Alignment, FelsensteinPruner, PhyloError};

use crate::config::MpcgsConfig;
use crate::sampler::{GmhRunStats, MultiProposalSampler};

/// One EM iteration's record.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MpcgsIteration {
    /// The driving θ used for this chain.
    pub driving_theta: f64,
    /// The maximiser of the relative likelihood (next driving value).
    pub estimate: f64,
    /// Move rate of the index chain.
    pub move_rate: f64,
    /// Mean `ln P(D|G)` over the retained samples.
    pub mean_log_data_likelihood: f64,
    /// Work counters of the chain.
    pub stats: GmhRunStats,
}

/// The final estimate and its history.
#[derive(Debug, Clone, PartialEq)]
pub struct MpcgsEstimate {
    /// The final θ̂.
    pub theta: f64,
    /// Per-iteration records.
    pub iterations: Vec<MpcgsIteration>,
}

impl MpcgsEstimate {
    /// Whether the estimate stabilised (relative change between the last two
    /// EM iterations below `tolerance`).
    pub fn converged(&self, tolerance: f64) -> bool {
        if self.iterations.len() < 2 {
            return false;
        }
        let last = self.iterations[self.iterations.len() - 1].estimate;
        let prev = self.iterations[self.iterations.len() - 2].estimate;
        ((last - prev) / prev.max(f64::MIN_POSITIVE)).abs() < tolerance
    }

    /// Total likelihood evaluations across all EM iterations.
    pub fn total_likelihood_evaluations(&self) -> usize {
        self.iterations.iter().map(|i| i.stats.likelihood_evaluations).sum()
    }
}

/// The mpcgs θ estimator over one alignment.
#[derive(Debug, Clone)]
pub struct ThetaEstimator {
    alignment: Alignment,
    config: MpcgsConfig,
    execution: ExecutionMode,
}

impl ThetaEstimator {
    /// Create an estimator (the programmatic form of
    /// `mpcgs <seqdata.phy> <init theta>`).
    pub fn new(alignment: Alignment, config: MpcgsConfig) -> Result<Self, PhyloError> {
        config.validate()?;
        Ok(ThetaEstimator { alignment, config, execution: ExecutionMode::Serial })
    }

    /// Choose how the likelihood engine executes its per-site work
    /// (`Parallel` mirrors the per-site threads of the CUDA data-likelihood
    /// kernel).
    pub fn with_execution(mut self, mode: ExecutionMode) -> Self {
        self.execution = mode;
        self
    }

    /// The configuration.
    pub fn config(&self) -> &MpcgsConfig {
        &self.config
    }

    /// The alignment being analysed.
    pub fn alignment(&self) -> &Alignment {
        &self.alignment
    }

    /// Run the estimator: `em_iterations` rounds of sampling (expectation)
    /// followed by maximisation of the relative likelihood (Eq. 26).
    pub fn estimate<R: Rng + ?Sized>(&self, rng: &mut R) -> Result<MpcgsEstimate, PhyloError> {
        let mut theta = self.config.initial_theta;
        let mut iterations = Vec::with_capacity(self.config.em_iterations);
        // Section 5.1.3: G0 is the UPGMA tree; subsequent chains start from
        // the final genealogy of the previous chain.
        let mut current_tree = Some(upgma_tree(&self.alignment, 1.0)?);

        for _ in 0..self.config.em_iterations {
            let engine = FelsensteinPruner::new(
                &self.alignment,
                F81::normalized(self.alignment.base_frequencies()),
            )
            .with_mode(self.execution);
            let sampler = MultiProposalSampler::with_theta(engine, self.config, theta)?;
            let initial = current_tree.take().expect("a starting tree is always available");
            let run = sampler.run(initial, rng)?;

            let summaries: Vec<_> = run.samples.iter().map(|s| s.intervals.clone()).collect();
            let relative = RelativeLikelihood::new(theta, &summaries).map_err(|e| {
                PhyloError::InvalidTree { message: format!("relative likelihood failed: {e}") }
            })?;
            let estimate = maximize_relative_likelihood(&relative, &self.config.ascent);
            let mean_loglik = run.samples.iter().map(|s| s.log_data_likelihood).sum::<f64>()
                / run.samples.len() as f64;

            iterations.push(MpcgsIteration {
                driving_theta: theta,
                estimate,
                move_rate: run.stats.move_rate(),
                mean_log_data_likelihood: mean_loglik,
                stats: run.stats,
            });
            theta = estimate.max(1e-9);
            current_tree = Some(run.final_tree);
        }

        Ok(MpcgsEstimate { theta, iterations })
    }

    /// Evaluate the relative-likelihood curve for one chain run (Figure 5):
    /// run a single chain with the configured driving value and return
    /// `(θ, ln L(θ))` pairs over a log-spaced grid.
    pub fn likelihood_curve<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        grid: &[f64],
    ) -> Result<Vec<(f64, f64)>, PhyloError> {
        let engine = FelsensteinPruner::new(
            &self.alignment,
            F81::normalized(self.alignment.base_frequencies()),
        )
        .with_mode(self.execution);
        let sampler =
            MultiProposalSampler::with_theta(engine, self.config, self.config.initial_theta)?;
        let initial = upgma_tree(&self.alignment, 1.0)?;
        let run = sampler.run(initial, rng)?;
        let summaries: Vec<_> = run.samples.iter().map(|s| s.intervals.clone()).collect();
        let relative =
            RelativeLikelihood::new(self.config.initial_theta, &summaries).map_err(|e| {
                PhyloError::InvalidTree { message: format!("relative likelihood failed: {e}") }
            })?;
        Ok(relative.curve(grid))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use coalescent::{CoalescentSimulator, SequenceSimulator};
    use exec::Backend;
    use mcmc::rng::Mt19937;
    use phylo::model::Jc69;

    fn simulated_alignment(rng: &mut Mt19937, n: usize, sites: usize, theta: f64) -> Alignment {
        let tree = CoalescentSimulator::constant(theta).unwrap().simulate(rng, n).unwrap();
        SequenceSimulator::new(Jc69::new(), sites, 1.0).unwrap().simulate(rng, &tree).unwrap()
    }

    fn small_config() -> MpcgsConfig {
        MpcgsConfig {
            initial_theta: 0.5,
            em_iterations: 2,
            proposals_per_iteration: 8,
            draws_per_iteration: 8,
            burn_in_draws: 80,
            sample_draws: 600,
            backend: Backend::Serial,
            ..Default::default()
        }
    }

    #[test]
    fn estimator_runs_and_chains_the_driving_value() {
        let mut rng = Mt19937::new(91);
        let alignment = simulated_alignment(&mut rng, 6, 80, 1.0);
        let estimator = ThetaEstimator::new(alignment, small_config()).unwrap();
        assert_eq!(estimator.alignment().n_sequences(), 6);
        assert_eq!(estimator.config().em_iterations, 2);
        let estimate = estimator.estimate(&mut rng).unwrap();
        assert_eq!(estimate.iterations.len(), 2);
        assert!(estimate.theta > 0.0 && estimate.theta.is_finite());
        assert!(
            (estimate.iterations[1].driving_theta - estimate.iterations[0].estimate).abs() < 1e-12
        );
        assert!(estimate.total_likelihood_evaluations() > 0);
        for it in &estimate.iterations {
            assert!(it.move_rate > 0.0);
            assert!(it.mean_log_data_likelihood.is_finite());
        }
        let _ = estimate.converged(0.5);
    }

    #[test]
    fn estimate_lands_in_a_plausible_range() {
        let mut rng = Mt19937::new(97);
        let alignment = simulated_alignment(&mut rng, 8, 150, 1.0);
        let config = MpcgsConfig { sample_draws: 1_200, ..small_config() };
        let estimator = ThetaEstimator::new(alignment, config).unwrap();
        let estimate = estimator.estimate(&mut rng).unwrap();
        assert!(
            estimate.theta > 0.05 && estimate.theta < 10.0,
            "estimate {} is implausible for data simulated at theta = 1",
            estimate.theta
        );
    }

    #[test]
    fn likelihood_curve_peaks_away_from_a_tiny_driving_value() {
        // Figure 5's qualitative shape: with a driving value far below the
        // truth, the relative-likelihood curve must rise away from theta0.
        let mut rng = Mt19937::new(101);
        let alignment = simulated_alignment(&mut rng, 6, 120, 1.0);
        let config = MpcgsConfig {
            initial_theta: 0.05,
            em_iterations: 1,
            sample_draws: 800,
            ..small_config()
        };
        let estimator = ThetaEstimator::new(alignment, config).unwrap();
        let grid = RelativeLikelihood::log_grid(0.05, 5.0, 20);
        let curve = estimator.likelihood_curve(&mut rng, &grid).unwrap();
        assert_eq!(curve.len(), 20);
        let at_driving = curve[0].1;
        let best = curve.iter().cloned().max_by(|a, b| a.1.partial_cmp(&b.1).unwrap()).unwrap();
        assert!(
            best.1 > at_driving,
            "curve should rise away from the driving value: best {best:?} vs {at_driving}"
        );
        assert!(best.0 > 0.05);
    }

    #[test]
    fn invalid_configuration_is_rejected_up_front() {
        let mut rng = Mt19937::new(103);
        let alignment = simulated_alignment(&mut rng, 4, 40, 1.0);
        let bad = MpcgsConfig { em_iterations: 0, ..small_config() };
        assert!(ThetaEstimator::new(alignment, bad).is_err());
    }

    #[test]
    fn converged_logic() {
        let it = |estimate: f64| MpcgsIteration {
            driving_theta: 1.0,
            estimate,
            move_rate: 0.5,
            mean_log_data_likelihood: -5.0,
            stats: GmhRunStats::default(),
        };
        let single = MpcgsEstimate { theta: 1.0, iterations: vec![it(1.0)] };
        assert!(!single.converged(0.1));
        let stable = MpcgsEstimate { theta: 1.01, iterations: vec![it(1.0), it(1.01)] };
        assert!(stable.converged(0.05));
        assert!(!stable.converged(0.001));
    }
}
