//! Configuration of the multi-proposal estimator.

use exec::Backend;
use lamarc::mle::GradientAscentConfig;
use lamarc::proposal::ProposalConfig;
use phylo::likelihood::Kernel;
use phylo::PhyloError;

/// Full configuration of the mpcgs θ estimator (Figure 11's loop).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MpcgsConfig {
    /// The initial driving value θ₀ (second command-line argument of the
    /// original program).
    pub initial_theta: f64,
    /// Number of EM iterations (chain runs followed by maximisation).
    pub em_iterations: usize,
    /// Number of proposals generated per Generalized-MH iteration (`N`).
    pub proposals_per_iteration: usize,
    /// Number of index draws (output samples) per iteration (`M`); the paper
    /// samples once per proposal, so the default equals
    /// `proposals_per_iteration`.
    pub draws_per_iteration: usize,
    /// Draws discarded as burn-in at the start of each chain.
    pub burn_in_draws: usize,
    /// Draws retained per chain (the "number of genealogical samples" swept
    /// in Table 2).
    pub sample_draws: usize,
    /// Thinning applied by the baseline (single-proposal) strategy: keep
    /// every `thinning`-th post-burn-in transition. The multi-proposal
    /// strategy records every index draw and ignores this field.
    pub thinning: usize,
    /// Proposal-mechanism configuration.
    pub proposal: ProposalConfig,
    /// Gradient-ascent configuration for the maximisation stage.
    pub ascent: GradientAscentConfig,
    /// Data-parallel backend for proposal generation and likelihood
    /// evaluation (the host-side analogue of the CUDA kernels).
    pub backend: Backend,
    /// Arithmetic kernel for the likelihood engine's combine loop. The
    /// default [`Kernel::Auto`] probes the CPU at engine construction and
    /// selects the AVX2+FMA combine loop when the host supports it;
    /// [`Kernel::Simd`] and [`Kernel::Auto`] require the `simd` cargo
    /// feature and degrade to the scalar kernel without it.
    pub kernel: Kernel,
    /// Master seed for the per-proposal random-number streams (the MTGP32
    /// substitute).
    pub stream_seed: u64,
}

impl Default for MpcgsConfig {
    fn default() -> Self {
        MpcgsConfig {
            initial_theta: 1.0,
            em_iterations: 3,
            proposals_per_iteration: 32,
            draws_per_iteration: 32,
            burn_in_draws: 1_000,
            sample_draws: 10_000,
            thinning: 1,
            proposal: ProposalConfig::default(),
            ascent: GradientAscentConfig::default(),
            backend: Backend::Rayon,
            kernel: Kernel::Auto,
            stream_seed: 0x6D70_6367_7372_7573, // "mpcgsrus"
        }
    }
}

impl MpcgsConfig {
    /// Validate the configuration.
    pub fn validate(&self) -> Result<(), PhyloError> {
        if !(self.initial_theta > 0.0 && self.initial_theta.is_finite()) {
            return Err(PhyloError::InvalidParameter {
                name: "initial_theta",
                value: self.initial_theta,
                constraint: "theta > 0",
            });
        }
        if self.em_iterations == 0 {
            return Err(PhyloError::InvalidParameter {
                name: "em_iterations",
                value: 0.0,
                constraint: "at least one EM iteration",
            });
        }
        if self.proposals_per_iteration == 0 {
            return Err(PhyloError::InvalidParameter {
                name: "proposals_per_iteration",
                value: 0.0,
                constraint: "at least one proposal per iteration",
            });
        }
        if self.draws_per_iteration == 0 {
            return Err(PhyloError::InvalidParameter {
                name: "draws_per_iteration",
                value: 0.0,
                constraint: "at least one draw per iteration",
            });
        }
        if self.sample_draws == 0 {
            return Err(PhyloError::InvalidParameter {
                name: "sample_draws",
                value: 0.0,
                constraint: "at least one retained draw",
            });
        }
        Ok(())
    }

    /// Total draws per chain (burn-in plus retained).
    pub fn total_draws(&self) -> usize {
        self.burn_in_draws + self.sample_draws
    }

    /// Number of Generalized-MH iterations (proposal-set constructions) one
    /// chain performs.
    pub fn gmh_iterations(&self) -> usize {
        self.total_draws().div_ceil(self.draws_per_iteration.max(1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid_and_paper_sized() {
        let c = MpcgsConfig::default();
        c.validate().unwrap();
        assert_eq!(c.proposals_per_iteration, c.draws_per_iteration);
        assert_eq!(c.total_draws(), 11_000);
        assert_eq!(c.gmh_iterations(), 11_000_usize.div_ceil(32));
    }

    #[test]
    fn validation_catches_each_degenerate_field() {
        let base = MpcgsConfig::default();
        assert!(MpcgsConfig { initial_theta: 0.0, ..base }.validate().is_err());
        assert!(MpcgsConfig { initial_theta: f64::NAN, ..base }.validate().is_err());
        assert!(MpcgsConfig { em_iterations: 0, ..base }.validate().is_err());
        assert!(MpcgsConfig { proposals_per_iteration: 0, ..base }.validate().is_err());
        assert!(MpcgsConfig { draws_per_iteration: 0, ..base }.validate().is_err());
        assert!(MpcgsConfig { sample_draws: 0, ..base }.validate().is_err());
    }

    #[test]
    fn iteration_arithmetic_rounds_up() {
        let c = MpcgsConfig {
            burn_in_draws: 10,
            sample_draws: 25,
            draws_per_iteration: 16,
            ..Default::default()
        };
        assert_eq!(c.total_draws(), 35);
        assert_eq!(c.gmh_iterations(), 3);
    }
}
