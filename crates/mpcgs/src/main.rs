//! The `mpcgs` command-line program.
//!
//! The original program is invoked as `./mpcgs <seqdata.phy> <init theta>`
//! (Section 5.1.1); this binary keeps that positional interface, accepts
//! *several* PHYLIP files for multi-locus runs (each file becomes one locus
//! of the shared [`Dataset`]), and adds flags for chain sizing, sampler
//! strategy and execution backend. All the work runs through the
//! [`Session`] facade with an [`EmProgressPrinter`] observer streaming the
//! per-iteration history.

use std::path::Path;
use std::process::ExitCode;

use exec::Backend;
use mcmc::rng::Mt19937;
use phylo::io::phylip::parse_phylip;
use phylo::likelihood::{ExecutionMode, Kernel};
use phylo::{Dataset, Locus};

use mpcgs::{
    EmProgressPrinter, EnsembleSpec, ExchangePolicy, MpcgsConfig, SamplerStrategy, Session,
};

/// Which exchange policy the CLI builds for a multi-chain run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ExchangeKind {
    Independent,
    Ladder,
}

struct CliArgs {
    phylip_paths: Vec<String>,
    initial_theta: f64,
    samples: usize,
    burn_in: usize,
    proposals: usize,
    em_iterations: usize,
    seed: u32,
    strategy: SamplerStrategy,
    backend: Backend,
    kernel: Kernel,
    chains: usize,
    exchange: Option<ExchangeKind>,
    swap_interval: Option<usize>,
    hottest: Option<f64>,
}

fn print_usage() {
    eprintln!(
        "usage: mpcgs <seqdata.phy>... <init-theta> [options]\n\
         \n\
         Each PHYLIP file becomes one locus; several files run a multi-locus\n\
         estimation over their shared sequence names.\n\
         \n\
         options:\n\
           --samples <n>        retained genealogy samples per chain (default 10000)\n\
           --burn-in <n>        burn-in draws per chain (default 1000)\n\
           --proposals <n>      proposals per Generalized-MH iteration (default 32)\n\
           --em <n>             EM iterations (default 3)\n\
           --seed <n>           host RNG seed (default 20160401)\n\
           --strategy <name>    sampler strategy: gmh | baseline (default gmh)\n\
           --backend <name>     execution backend: serial | rayon (default rayon)\n\
           --kernel <name>      likelihood combine kernel: scalar | simd (default scalar;\n\
                                simd requires a build with --features simd and falls back\n\
                                to scalar otherwise)\n\
           --chains <n>         shard each run across n chains (default 1: single chain)\n\
           --exchange <name>    ensemble exchange policy: independent | ladder\n\
                                (default independent; ladder runs MC3 replica exchange\n\
                                on a geometric temperature ladder)\n\
           --swap-interval <n>  rounds between replica-exchange swap attempts\n\
                                (ladder only, default 10)\n\
           --hottest <t>        temperature of the hottest ladder rung (default 4.0)"
    );
}

fn parse_args(args: &[String]) -> Result<CliArgs, String> {
    // Leading positional arguments: one or more PHYLIP files, then theta.
    let mut positionals = Vec::new();
    let mut i = 0;
    while i < args.len() && !args[i].starts_with("--") {
        positionals.push(args[i].clone());
        i += 1;
    }
    if positionals.len() < 2 {
        return Err("expected at least one PHYLIP file and an initial theta".to_string());
    }
    let theta_text = positionals.pop().expect("at least two positionals");
    let initial_theta: f64 =
        theta_text.parse().map_err(|_| format!("invalid initial theta {theta_text:?}"))?;
    let mut cli = CliArgs {
        phylip_paths: positionals,
        initial_theta,
        samples: 10_000,
        burn_in: 1_000,
        proposals: 32,
        em_iterations: 3,
        seed: 20_160_401,
        strategy: SamplerStrategy::MultiProposal,
        backend: Backend::Rayon,
        kernel: Kernel::Scalar,
        chains: 1,
        exchange: None,
        swap_interval: None,
        hottest: None,
    };
    while i < args.len() {
        let flag = args[i].as_str();
        let mut take_value = |name: &str| -> Result<String, String> {
            i += 1;
            args.get(i).cloned().ok_or_else(|| format!("missing value for {name}"))
        };
        match flag {
            "--samples" => {
                cli.samples =
                    take_value("--samples")?.parse().map_err(|e| format!("--samples: {e}"))?
            }
            "--burn-in" => {
                cli.burn_in =
                    take_value("--burn-in")?.parse().map_err(|e| format!("--burn-in: {e}"))?
            }
            "--proposals" => {
                cli.proposals =
                    take_value("--proposals")?.parse().map_err(|e| format!("--proposals: {e}"))?
            }
            "--em" => {
                cli.em_iterations = take_value("--em")?.parse().map_err(|e| format!("--em: {e}"))?
            }
            "--seed" => {
                cli.seed = take_value("--seed")?.parse().map_err(|e| format!("--seed: {e}"))?
            }
            "--strategy" => {
                cli.strategy = match take_value("--strategy")?.to_ascii_lowercase().as_str() {
                    "gmh" | "multiproposal" | "multi-proposal" => SamplerStrategy::MultiProposal,
                    "baseline" | "lamarc" => SamplerStrategy::Baseline,
                    other => {
                        return Err(format!(
                            "unknown strategy {other:?} (expected \"gmh\" or \"baseline\")"
                        ))
                    }
                }
            }
            "--backend" => cli.backend = take_value("--backend")?.parse::<Backend>()?,
            "--kernel" => cli.kernel = take_value("--kernel")?.parse::<Kernel>()?,
            "--chains" => {
                cli.chains =
                    take_value("--chains")?.parse().map_err(|e| format!("--chains: {e}"))?;
                if cli.chains == 0 {
                    return Err("--chains: at least one chain is required".to_string());
                }
            }
            "--exchange" => {
                cli.exchange = match take_value("--exchange")?.to_ascii_lowercase().as_str() {
                    "independent" => Some(ExchangeKind::Independent),
                    "ladder" | "temperature-ladder" | "mc3" => Some(ExchangeKind::Ladder),
                    other => {
                        return Err(format!(
                            "unknown exchange policy {other:?} (expected \"independent\" or \
                             \"ladder\")"
                        ))
                    }
                }
            }
            "--swap-interval" => {
                cli.swap_interval = Some(
                    take_value("--swap-interval")?
                        .parse()
                        .map_err(|e| format!("--swap-interval: {e}"))?,
                )
            }
            "--hottest" => {
                cli.hottest =
                    Some(take_value("--hottest")?.parse().map_err(|e| format!("--hottest: {e}"))?)
            }
            other => return Err(format!("unknown option {other:?}")),
        }
        i += 1;
    }
    // Ensemble flags only act when more than one chain runs — reject
    // combinations the run would otherwise silently ignore.
    if cli.chains <= 1 {
        if cli.exchange.is_some() {
            return Err("--exchange requires --chains > 1".to_string());
        }
        if cli.swap_interval.is_some() || cli.hottest.is_some() {
            return Err(
                "--swap-interval/--hottest require --chains > 1 and --exchange ladder".to_string()
            );
        }
    } else if cli.exchange != Some(ExchangeKind::Ladder)
        && (cli.swap_interval.is_some() || cli.hottest.is_some())
    {
        return Err("--swap-interval/--hottest only apply with --exchange ladder".to_string());
    }
    Ok(cli)
}

fn load_dataset(paths: &[String]) -> Result<Dataset, String> {
    let mut loci = Vec::with_capacity(paths.len());
    for path in paths {
        let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
        let alignment =
            parse_phylip(&text).map_err(|e| format!("cannot parse PHYLIP input {path}: {e}"))?;
        let name = Path::new(path)
            .file_stem()
            .map(|stem| stem.to_string_lossy().into_owned())
            .unwrap_or_else(|| path.clone());
        loci.push(Locus::new(name, alignment));
    }
    Dataset::new(loci).map_err(|e| format!("inconsistent loci: {e}"))
}

fn run(cli: CliArgs) -> Result<(), String> {
    let dataset = load_dataset(&cli.phylip_paths)?;
    println!(
        "mpcgs: {} locus/loci, {} sequences, {} total sites, initial theta {}",
        dataset.n_loci(),
        dataset.n_sequences(),
        dataset.total_sites(),
        cli.initial_theta
    );
    for locus in dataset.loci() {
        println!("  locus {:<12} {} sites", locus.name(), locus.n_sites());
    }

    let effective_kernel = cli.kernel.effective();
    if effective_kernel != cli.kernel {
        eprintln!(
            "note: --kernel {} requested but this binary was built without the `simd` \
             feature; falling back to the {} kernel \
             (rebuild with `--features simd` to enable it)",
            cli.kernel, effective_kernel
        );
    }
    println!("  backend {}, {} kernel", cli.backend, effective_kernel);

    let config = MpcgsConfig {
        initial_theta: cli.initial_theta,
        em_iterations: cli.em_iterations,
        proposals_per_iteration: cli.proposals,
        draws_per_iteration: cli.proposals,
        burn_in_draws: cli.burn_in,
        sample_draws: cli.samples,
        backend: cli.backend,
        kernel: cli.kernel,
        ..MpcgsConfig::default()
    };
    let execution = match cli.backend {
        Backend::Serial => ExecutionMode::Serial,
        Backend::Rayon => ExecutionMode::Parallel,
    };
    let mut builder = Session::builder()
        .dataset(dataset)
        .strategy(cli.strategy)
        .config(config)
        .execution(execution)
        .observe(EmProgressPrinter::new());
    if cli.chains > 1 {
        let exchange = match cli.exchange.unwrap_or(ExchangeKind::Independent) {
            ExchangeKind::Independent => ExchangePolicy::Independent,
            ExchangeKind::Ladder => ExchangePolicy::geometric_ladder(
                cli.chains,
                cli.hottest.unwrap_or(4.0),
                cli.swap_interval.unwrap_or(10),
            ),
        };
        println!(
            "  ensemble: {} chains, {} exchange{}",
            cli.chains,
            exchange.name(),
            match &exchange {
                ExchangePolicy::TemperatureLadder { temperatures, swap_interval } => format!(
                    " (temperatures {:?}, swap every {} rounds)",
                    temperatures.iter().map(|t| (t * 100.0).round() / 100.0).collect::<Vec<_>>(),
                    swap_interval
                ),
                ExchangePolicy::Independent => String::new(),
            }
        );
        builder = builder.ensemble(EnsembleSpec {
            n_chains: cli.chains,
            exchange,
            ensemble_seed: cli.seed as u64,
            ..EnsembleSpec::default()
        });
    }
    let mut session = builder.build().map_err(|e| format!("invalid configuration: {e}"))?;

    let mut rng = Mt19937::new(cli.seed);
    let estimate = session.run(&mut rng).map_err(|e| format!("estimation failed: {e}"))?;
    println!("\nfinal estimate of theta: {:.6}", estimate.theta);
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        print_usage();
        return ExitCode::SUCCESS;
    }
    match parse_args(&args) {
        Ok(cli) => match run(cli) {
            Ok(()) => ExitCode::SUCCESS,
            Err(message) => {
                eprintln!("error: {message}");
                ExitCode::FAILURE
            }
        },
        Err(message) => {
            eprintln!("error: {message}\n");
            print_usage();
            ExitCode::FAILURE
        }
    }
}
