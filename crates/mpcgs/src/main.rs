//! The `mpcgs` command-line program.
//!
//! Argument parsing and validation live in [`mpcgs::cli`] (unit-tested as a
//! library); this binary wires the parsed configuration into the [`Session`]
//! facade with an [`EmProgressPrinter`] observer streaming the per-iteration
//! history, and prints the device cost breakdown when the run dispatched
//! through the simulated accelerator backend.

use std::process::ExitCode;

use exec::Backend;
use mcmc::rng::Mt19937;
use phylo::likelihood::ExecutionMode;

use mpcgs::cli::{apply_rates, load_dataset, parse_args, print_usage, CliArgs};
use mpcgs::{EmProgressPrinter, ExchangePolicy, MpcgsConfig, Session};

fn run(cli: CliArgs) -> Result<(), String> {
    let dataset = apply_rates(load_dataset(&cli.phylip_paths)?, &cli.rates)?;
    println!(
        "mpcgs: {} locus/loci, {} sequences, {} total sites, initial theta {}",
        dataset.n_loci(),
        dataset.n_sequences(),
        dataset.total_sites(),
        cli.initial_theta
    );
    for locus in dataset.loci() {
        let rate = locus.relative_rate();
        if rate == 1.0 {
            println!("  locus {:<12} {} sites", locus.name(), locus.n_sites());
        } else {
            println!(
                "  locus {:<12} {} sites, relative rate {rate}",
                locus.name(),
                locus.n_sites()
            );
        }
    }

    let effective_kernel = cli.kernel.effective();
    if effective_kernel != cli.kernel {
        eprintln!(
            "note: --kernel {} requested but this binary was built without the `simd` \
             feature; falling back to the {} kernel \
             (rebuild with `--features simd` to enable it)",
            cli.kernel, effective_kernel
        );
    }
    let variant = cli.kernel.variant();
    if cli.kernel == phylo::likelihood::Kernel::Auto {
        let features = phylo::likelihood::host_cpu_features();
        println!(
            "  backend {}, {variant} kernel (auto; host cpu: {})",
            cli.backend,
            if features.is_empty() { "baseline".to_string() } else { features.join("+") }
        );
    } else {
        println!("  backend {}, {variant} kernel", cli.backend);
    }

    let config = MpcgsConfig {
        initial_theta: cli.initial_theta,
        em_iterations: cli.em_iterations,
        proposals_per_iteration: cli.proposals,
        draws_per_iteration: cli.proposals,
        burn_in_draws: cli.burn_in,
        sample_draws: cli.samples,
        backend: cli.backend,
        kernel: cli.kernel,
        ..MpcgsConfig::default()
    };
    // Within-locus site parallelism mirrors the backend choice; the device
    // backend schedules its own queue, so it keeps the serial mode.
    let execution = match cli.backend {
        Backend::Rayon => ExecutionMode::Parallel,
        _ => ExecutionMode::Serial,
    };
    let mut builder = Session::builder()
        .dataset(dataset)
        .strategy(cli.strategy)
        .config(config)
        .execution(execution)
        .observe(EmProgressPrinter::new());
    if let Some(spec) = cli.ensemble_spec()? {
        println!(
            "  ensemble: {} chains, {} exchange{}",
            spec.n_chains,
            spec.exchange.name(),
            match &spec.exchange {
                ExchangePolicy::TemperatureLadder { temperatures, swap_interval } => format!(
                    " (temperatures {:?}, swap every {} rounds)",
                    temperatures.iter().map(|t| (t * 100.0).round() / 100.0).collect::<Vec<_>>(),
                    swap_interval
                ),
                ExchangePolicy::Independent => String::new(),
            }
        );
        builder = builder.ensemble(spec);
    }
    let mut session = builder.build().map_err(|e| format!("invalid configuration: {e}"))?;

    let mut rng = Mt19937::new(cli.seed);
    let estimate = session.run(&mut rng).map_err(|e| format!("estimation failed: {e}"))?;
    if let Some(device) = &estimate.device {
        println!("\n{}", device.summary());
    }
    println!("\nfinal estimate of theta: {:.6}", estimate.theta);
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        print_usage();
        return ExitCode::SUCCESS;
    }
    match parse_args(&args) {
        Ok(cli) => match run(cli) {
            Ok(()) => ExitCode::SUCCESS,
            Err(message) => {
                eprintln!("error: {message}");
                ExitCode::FAILURE
            }
        },
        Err(message) => {
            eprintln!("error: {message}\n");
            print_usage();
            ExitCode::FAILURE
        }
    }
}
