//! The `mpcgs` command-line program.
//!
//! The original program is invoked as `./mpcgs <seqdata.phy> <init theta>`
//! (Section 5.1.1); this binary keeps that positional interface and adds a
//! few optional flags for chain sizing so the examples and benches can drive
//! short runs.

use std::process::ExitCode;

use exec::Backend;
use mcmc::rng::Mt19937;
use phylo::io::phylip::parse_phylip;
use phylo::likelihood::ExecutionMode;

use mpcgs::{MpcgsConfig, ThetaEstimator};

struct CliArgs {
    phylip_path: String,
    initial_theta: f64,
    samples: usize,
    burn_in: usize,
    proposals: usize,
    em_iterations: usize,
    seed: u32,
    serial: bool,
}

fn print_usage() {
    eprintln!(
        "usage: mpcgs <seqdata.phy> <init-theta> [options]\n\
         \n\
         options:\n\
           --samples <n>      retained genealogy samples per chain (default 10000)\n\
           --burn-in <n>      burn-in draws per chain (default 1000)\n\
           --proposals <n>    proposals per Generalized-MH iteration (default 32)\n\
           --em <n>           EM iterations (default 3)\n\
           --seed <n>         host RNG seed (default 20160401)\n\
           --serial           disable thread-level parallelism"
    );
}

fn parse_args(args: &[String]) -> Result<CliArgs, String> {
    if args.len() < 2 {
        return Err("expected a PHYLIP file and an initial theta".to_string());
    }
    let phylip_path = args[0].clone();
    let initial_theta: f64 =
        args[1].parse().map_err(|_| format!("invalid initial theta {:?}", args[1]))?;
    let mut cli = CliArgs {
        phylip_path,
        initial_theta,
        samples: 10_000,
        burn_in: 1_000,
        proposals: 32,
        em_iterations: 3,
        seed: 20_160_401,
        serial: false,
    };
    let mut i = 2;
    while i < args.len() {
        let flag = args[i].as_str();
        let mut take_value = |name: &str| -> Result<String, String> {
            i += 1;
            args.get(i).cloned().ok_or_else(|| format!("missing value for {name}"))
        };
        match flag {
            "--samples" => {
                cli.samples =
                    take_value("--samples")?.parse().map_err(|e| format!("--samples: {e}"))?
            }
            "--burn-in" => {
                cli.burn_in =
                    take_value("--burn-in")?.parse().map_err(|e| format!("--burn-in: {e}"))?
            }
            "--proposals" => {
                cli.proposals =
                    take_value("--proposals")?.parse().map_err(|e| format!("--proposals: {e}"))?
            }
            "--em" => {
                cli.em_iterations = take_value("--em")?.parse().map_err(|e| format!("--em: {e}"))?
            }
            "--seed" => {
                cli.seed = take_value("--seed")?.parse().map_err(|e| format!("--seed: {e}"))?
            }
            "--serial" => cli.serial = true,
            other => return Err(format!("unknown option {other:?}")),
        }
        i += 1;
    }
    Ok(cli)
}

fn run(cli: CliArgs) -> Result<(), String> {
    let text = std::fs::read_to_string(&cli.phylip_path)
        .map_err(|e| format!("cannot read {}: {e}", cli.phylip_path))?;
    let alignment = parse_phylip(&text).map_err(|e| format!("cannot parse PHYLIP input: {e}"))?;
    println!(
        "mpcgs: {} sequences x {} sites, initial theta {}",
        alignment.n_sequences(),
        alignment.n_sites(),
        cli.initial_theta
    );

    let config = MpcgsConfig {
        initial_theta: cli.initial_theta,
        em_iterations: cli.em_iterations,
        proposals_per_iteration: cli.proposals,
        draws_per_iteration: cli.proposals,
        burn_in_draws: cli.burn_in,
        sample_draws: cli.samples,
        backend: if cli.serial { Backend::Serial } else { Backend::Rayon },
        ..MpcgsConfig::default()
    };
    let estimator = ThetaEstimator::new(alignment, config)
        .map_err(|e| format!("invalid configuration: {e}"))?
        .with_execution(if cli.serial { ExecutionMode::Serial } else { ExecutionMode::Parallel });

    let mut rng = Mt19937::new(cli.seed);
    let estimate = estimator.estimate(&mut rng).map_err(|e| format!("estimation failed: {e}"))?;

    println!("\n  iter   driving-theta      estimate   move-rate   mean ln P(D|G)");
    for (i, it) in estimate.iterations.iter().enumerate() {
        println!(
            "  {:>4}   {:>13.6}   {:>11.6}   {:>9.3}   {:>14.3}",
            i + 1,
            it.driving_theta,
            it.estimate,
            it.move_rate,
            it.mean_log_data_likelihood
        );
    }
    println!("\nfinal estimate of theta: {:.6}", estimate.theta);
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        print_usage();
        return ExitCode::SUCCESS;
    }
    match parse_args(&args) {
        Ok(cli) => match run(cli) {
            Ok(()) => ExitCode::SUCCESS,
            Err(message) => {
                eprintln!("error: {message}");
                ExitCode::FAILURE
            }
        },
        Err(message) => {
            eprintln!("error: {message}\n");
            print_usage();
            ExitCode::FAILURE
        }
    }
}
