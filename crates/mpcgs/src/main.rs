//! The `mpcgs` command-line program.
//!
//! Argument parsing and validation live in [`mpcgs::cli`] (unit-tested as a
//! library); this binary wires the parsed configuration into the [`Session`]
//! facade with an [`EmProgressPrinter`] observer streaming the per-iteration
//! history, and prints the device cost breakdown when the run dispatched
//! through the simulated accelerator backend.

#![deny(unsafe_code)]

use std::process::ExitCode;

use exec::Backend;
use phylo::likelihood::ExecutionMode;

use mpcgs::cli::{
    apply_rates, load_dataset, parse_args, parse_job_file, parse_serve_args, print_usage, CliArgs,
};
use mpcgs::{
    EmProgressPrinter, ExchangePolicy, JobQueue, MpcgsConfig, ServeEvent, Session,
    SessionCheckpoint, SessionRunner,
};

fn run(cli: CliArgs) -> Result<(), String> {
    let dataset = apply_rates(load_dataset(&cli.phylip_paths)?, &cli.rates)?;
    println!(
        "mpcgs: {} locus/loci, {} sequences, {} total sites, initial theta {}",
        dataset.n_loci(),
        dataset.n_sequences(),
        dataset.total_sites(),
        cli.initial_theta
    );
    for locus in dataset.loci() {
        let rate = locus.relative_rate();
        // mpcgs-analyze: allow(d5, reason = "display-only branch: 1.0 is the exact default stored when no --rates flag was given, so the comparison never sees a computed value")
        if rate == 1.0 {
            println!("  locus {:<12} {} sites", locus.name(), locus.n_sites());
        } else {
            println!(
                "  locus {:<12} {} sites, relative rate {rate}",
                locus.name(),
                locus.n_sites()
            );
        }
    }

    let effective_kernel = cli.kernel.effective();
    if effective_kernel != cli.kernel {
        eprintln!(
            "note: --kernel {} requested but this binary was built without the `simd` \
             feature; falling back to the {} kernel \
             (rebuild with `--features simd` to enable it)",
            cli.kernel, effective_kernel
        );
    }
    let variant = cli.kernel.variant();
    if cli.kernel == phylo::likelihood::Kernel::Auto {
        let features = phylo::likelihood::host_cpu_features();
        println!(
            "  backend {}, {variant} kernel (auto; host cpu: {})",
            cli.backend,
            if features.is_empty() { "baseline".to_string() } else { features.join("+") }
        );
    } else {
        println!("  backend {}, {variant} kernel", cli.backend);
    }

    let config = MpcgsConfig {
        initial_theta: cli.initial_theta,
        em_iterations: cli.em_iterations,
        proposals_per_iteration: cli.proposals,
        draws_per_iteration: cli.proposals,
        burn_in_draws: cli.burn_in,
        sample_draws: cli.samples,
        backend: cli.backend,
        kernel: cli.kernel,
        ..MpcgsConfig::default()
    };
    // Within-locus site parallelism mirrors the backend choice; the device
    // backend schedules its own queue, so it keeps the serial mode.
    let execution = match cli.backend {
        Backend::Rayon => ExecutionMode::Parallel,
        _ => ExecutionMode::Serial,
    };
    let mut builder = Session::builder()
        .dataset(dataset)
        .strategy(cli.strategy)
        .config(config)
        .execution(execution)
        .observe(EmProgressPrinter::new());
    if let Some(spec) = cli.ensemble_spec()? {
        println!(
            "  ensemble: {} chains, {} exchange{}",
            spec.n_chains,
            spec.exchange.name(),
            match &spec.exchange {
                ExchangePolicy::TemperatureLadder { temperatures, swap_interval } => format!(
                    " (temperatures {:?}, swap every {} rounds)",
                    temperatures.iter().map(|t| (t * 100.0).round() / 100.0).collect::<Vec<_>>(),
                    swap_interval
                ),
                ExchangePolicy::Independent => String::new(),
            }
        );
        builder = builder.ensemble(spec);
    }
    let session = builder.build().map_err(|e| format!("invalid configuration: {e}"))?;

    // Build the resumable runner: fresh, or continued from --resume. Driving
    // the runner to completion is bit-identical to the pre-checkpoint
    // `Session::run` path with the same seed.
    let mut runner: SessionRunner = match &cli.resume {
        Some(path) => {
            let text = std::fs::read_to_string(path)
                .map_err(|e| format!("cannot read checkpoint {path}: {e}"))?;
            let checkpoint = SessionCheckpoint::parse(&text)
                .map_err(|e| format!("cannot load checkpoint {path}: {e}"))?;
            println!(
                "  resuming from {path}: EM round {}, driving theta {:.6}",
                checkpoint.em_round, checkpoint.theta
            );
            session.resume(&checkpoint).map_err(|e| format!("cannot resume: {e}"))?
        }
        None => {
            session.into_runner(cli.seed).map_err(|e| format!("estimation failed to start: {e}"))?
        }
    };

    let estimate = match cli.checkpoint_every {
        None => runner.run_to_completion().map_err(|e| format!("estimation failed: {e}"))?,
        Some(every) => {
            let path = cli
                .checkpoint_path
                .as_deref()
                .expect("parse_args rejects --checkpoint-every without --checkpoint-path");
            loop {
                let mut finished = false;
                for _ in 0..every {
                    finished = runner.step().map_err(|e| format!("estimation failed: {e}"))?;
                    if finished {
                        break;
                    }
                }
                if finished {
                    break;
                }
                let checkpoint =
                    runner.checkpoint().map_err(|e| format!("checkpoint failed: {e}"))?;
                write_atomically(path, &checkpoint.to_pretty())?;
            }
            runner.report().cloned().expect("a finished runner carries its report")
        }
    };
    if let Some(device) = &estimate.device {
        println!("\n{}", device.summary());
    }
    println!("\nfinal estimate of theta: {:.6}", estimate.theta);
    Ok(())
}

/// Write `text` to `path` via a sibling temp file + rename, so an interrupted
/// write can never leave a torn checkpoint behind.
fn write_atomically(path: &str, text: &str) -> Result<(), String> {
    let tmp = format!("{path}.tmp");
    std::fs::write(&tmp, text).map_err(|e| format!("cannot write checkpoint {tmp}: {e}"))?;
    std::fs::rename(&tmp, path).map_err(|e| format!("cannot finalise checkpoint {path}: {e}"))
}

/// The `mpcgs serve` driver: load the job spec document (file or stdin),
/// drain the queue over the configured pool, and stream tagged per-job
/// progress lines.
fn run_serve(args: &[String]) -> Result<(), String> {
    let serve_args = parse_serve_args(args)?;
    let text = if serve_args.job_path == "-" {
        use std::io::Read;
        let mut text = String::new();
        std::io::stdin()
            .read_to_string(&mut text)
            .map_err(|e| format!("cannot read job specs from stdin: {e}"))?;
        text
    } else {
        std::fs::read_to_string(&serve_args.job_path)
            .map_err(|e| format!("cannot read {}: {e}", serve_args.job_path))?
    };
    let (config, jobs) = parse_job_file(&text, &serve_args)?;
    println!(
        "mpcgs serve: {} job(s), {} worker(s) on the {} pool, quantum {}",
        jobs.len(),
        config.workers,
        config.backend,
        config.quantum
    );
    let mut queue = JobQueue::new(config);
    for job in jobs {
        queue.submit(job);
    }
    let report = queue.run_with(|event| match event {
        ServeEvent::JobStarted { job } => println!("[{job}] started"),
        ServeEvent::ChainStarted { job, chain_index } => {
            if *chain_index > 0 {
                println!("[{job}] chain {chain_index} started");
            }
        }
        ServeEvent::EmRound { job, iteration, driving_theta, estimate } => println!(
            "[{job}] EM round {iteration}: driving theta {driving_theta:.6} -> estimate \
             {estimate:.6}"
        ),
        ServeEvent::JobFinished { job, theta } => {
            println!("[{job}] finished: theta = {theta:.6}")
        }
        ServeEvent::JobFailed { job, error } => println!("[{job}] FAILED: {error}"),
    });
    println!(
        "\ndrained {} job(s) in {:.3}s: {:.2} jobs/s, latency p50 {:.3}s p99 {:.3}s, {} failed",
        report.outcomes.len(),
        report.wall_seconds,
        report.jobs_per_sec(),
        report.latency_quantile(0.5),
        report.latency_quantile(0.99),
        report.failed()
    );
    if report.failed() > 0 {
        return Err(format!("{} job(s) failed", report.failed()));
    }
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        print_usage();
        return ExitCode::SUCCESS;
    }
    if args.first().map(String::as_str) == Some("serve") {
        return match run_serve(&args[1..]) {
            Ok(()) => ExitCode::SUCCESS,
            Err(message) => {
                eprintln!("error: {message}");
                ExitCode::FAILURE
            }
        };
    }
    match parse_args(&args) {
        Ok(cli) => match run(cli) {
            Ok(()) => ExitCode::SUCCESS,
            Err(message) => {
                eprintln!("error: {message}");
                ExitCode::FAILURE
            }
        },
        Err(message) => {
            eprintln!("error: {message}\n");
            print_usage();
            ExitCode::FAILURE
        }
    }
}
