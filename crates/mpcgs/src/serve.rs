//! Sampler-as-a-service: a job queue scheduling many θ-estimation runs over
//! a fixed worker pool.
//!
//! The unit of work is a [`JobSpec`] — a dataset plus the full sampler
//! configuration (strategy, model, [`MpcgsConfig`], optional
//! [`EnsembleSpec`], host seed). A [`JobQueue`] accepts any number of specs
//! and [`JobQueue::run`] drains them over `workers` pool slots dispatched
//! through [`exec::Backend::map_mut`] — the same seam that shards ensemble
//! chains, so `Backend::Serial` gives a deterministic single-threaded drain
//! and `Backend::Rayon` one OS thread per worker slot.
//!
//! # Job lifecycle
//!
//! ```text
//! submit → queued ─pop─▶ running ──step×quantum──▶ finished → outcome
//!             ▲                        │
//!             └──────── preempted ◀────┘   (unfinished after a quantum:
//!                                           parked back on the queue)
//! ```
//!
//! Each job runs as a [`SessionRunner`] advanced in *quantum*-sized slices
//! (so many queued jobs share few workers fairly), and every runner
//! increment goes through the preemptible [`GenealogySampler`] seam — which
//! is also what makes any job checkpointable mid-flight. Because a
//! [`SessionRunner`] driven to completion is bit-identical to
//! [`Session::run`], a 1-job queue reproduces a plain session run exactly,
//! regardless of quantum or worker count.
//!
//! Progress surfaces as a [`ServeEvent`] stream: each job's session carries
//! a forwarding [`RunObserver`] that fans per-chain and per-EM-round events
//! into one shared sink tagged with the job name, and the queue drains the
//! sink to the caller's callback as workers go.
//!
//! [`GenealogySampler`]: lamarc::run::GenealogySampler

use std::collections::VecDeque;
use std::sync::{Arc, Mutex};
use std::time::Instant;

use exec::Backend;
use lamarc::run::{ChainInfo, EmUpdate, RunObserver};
use phylo::{Dataset, GeneTree, PhyloError};

use crate::config::MpcgsConfig;
use crate::ensemble::EnsembleSpec;
use crate::session::{ModelSpec, SamplerStrategy, Session, SessionReport, SessionRunner};

/// One queued estimation run: everything needed to build and drive a
/// [`Session`].
#[derive(Debug, Clone)]
pub struct JobSpec {
    /// The name progress events and the outcome are tagged with.
    pub name: String,
    /// The dataset to analyse.
    pub dataset: Dataset,
    /// Chain sizing, θ₀, EM rounds, backend, kernel.
    pub config: MpcgsConfig,
    /// The sampler strategy.
    pub strategy: SamplerStrategy,
    /// The substitution model.
    pub model: ModelSpec,
    /// Shard the job across an ensemble, when given.
    pub ensemble: Option<EnsembleSpec>,
    /// Override the starting genealogy G₀ (default: UPGMA).
    pub initial_tree: Option<GeneTree>,
    /// The host RNG seed.
    pub seed: u32,
}

impl JobSpec {
    /// A single-chain GMH job over `dataset` with the given config — the
    /// common case; adjust the public fields for anything richer.
    pub fn new(name: impl Into<String>, dataset: Dataset, config: MpcgsConfig, seed: u32) -> Self {
        JobSpec {
            name: name.into(),
            dataset,
            config,
            strategy: SamplerStrategy::default(),
            model: ModelSpec::default(),
            ensemble: None,
            initial_tree: None,
            seed,
        }
    }

    /// Build the job's session, fanning its observer events into `sink`
    /// tagged with the job name.
    fn build_session(&self, sink: &EventSink) -> Result<Session, PhyloError> {
        let mut builder = Session::builder()
            .dataset(self.dataset.clone())
            .model(self.model)
            .strategy(self.strategy)
            .config(self.config)
            .observe(JobTap { job: self.name.clone(), sink: Arc::clone(sink) });
        if let Some(spec) = &self.ensemble {
            builder = builder.ensemble(spec.clone());
        }
        if let Some(tree) = &self.initial_tree {
            builder = builder.initial_tree(tree.clone());
        }
        builder.build()
    }
}

/// How the pool schedules: dispatch backend, worker count, and the
/// preemption quantum.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServeConfig {
    /// The dispatch seam worker slots run through: [`Backend::Serial`] for a
    /// deterministic in-thread drain, [`Backend::Rayon`] for one OS thread
    /// per worker.
    pub backend: Backend,
    /// Pool size (clamped to at least 1).
    pub workers: usize,
    /// Runner increments (kernel steps / dispatch segments) a job gets per
    /// scheduling slice before it is parked back on the queue (clamped to at
    /// least 1). Small quanta share workers finely; large quanta amortise
    /// queue traffic.
    pub quantum: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig { backend: Backend::Serial, workers: 1, quantum: 64 }
    }
}

/// A progress event from the serve layer, tagged with the job it belongs to.
#[derive(Debug, Clone, PartialEq)]
pub enum ServeEvent {
    /// The job was picked up by a worker; emitted before any of the job's
    /// chain events (a job that fails to build emits this and then
    /// [`ServeEvent::JobFailed`]).
    JobStarted {
        /// The job's name.
        job: String,
    },
    /// One of the job's chains began (ensemble jobs emit one per rung).
    ChainStarted {
        /// The job's name.
        job: String,
        /// The rung index (0 for single-chain jobs).
        chain_index: usize,
    },
    /// The job finished an EM round's maximisation stage.
    EmRound {
        /// The job's name.
        job: String,
        /// The 0-based EM round.
        iteration: usize,
        /// The round's driving θ.
        driving_theta: f64,
        /// The maximiser (next round's driving value).
        estimate: f64,
    },
    /// The job completed.
    JobFinished {
        /// The job's name.
        job: String,
        /// The final θ̂.
        theta: f64,
    },
    /// The job failed; the queue keeps draining the others.
    JobFailed {
        /// The job's name.
        job: String,
        /// The failure rendered for display.
        error: String,
    },
}

type EventSink = Arc<Mutex<Vec<ServeEvent>>>;

/// Lock a serve-layer mutex, recovering from poisoning. A worker that
/// panicked while holding one of these locks has already been (or will be)
/// recorded as a per-job failure, and the protected data — an event buffer
/// or the outcome slot table — remains structurally valid, so the drain
/// keeps serving the surviving jobs instead of propagating the panic.
fn recover<T>(lock: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    lock.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// The forwarding [`RunObserver`] each job's session carries: fans the
/// session's event stream into the queue's shared sink, tagged by job name.
struct JobTap {
    job: String,
    sink: EventSink,
}

impl RunObserver for JobTap {
    fn on_chain_start(&mut self, info: &ChainInfo) {
        recover(&self.sink).push(ServeEvent::ChainStarted {
            job: self.job.clone(),
            chain_index: info.chain_index,
        });
    }

    fn on_em_update(&mut self, update: &EmUpdate) {
        recover(&self.sink).push(ServeEvent::EmRound {
            job: self.job.clone(),
            iteration: update.iteration,
            driving_theta: update.driving_theta,
            estimate: update.estimate,
        });
    }
}

/// How one job ended.
#[derive(Debug, Clone, PartialEq)]
pub struct JobOutcome {
    /// The job's name.
    pub name: String,
    /// The final report, or the failure rendered for display.
    pub result: Result<SessionReport, String>,
    /// Scheduling slices the job consumed (1 = never preempted).
    pub slices: usize,
    /// Seconds from [`JobQueue::run`] start to this job's completion.
    pub latency_seconds: f64,
}

impl JobOutcome {
    fn failed(name: &str, error: &PhyloError, slices: usize, latency_seconds: f64) -> JobOutcome {
        JobOutcome {
            name: name.to_string(),
            result: Err(error.to_string()),
            slices,
            latency_seconds,
        }
    }
}

/// The queue's drain summary: per-job outcomes (submission order) plus the
/// throughput figures benchkit's serve lane records.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeReport {
    /// Per-job outcomes, in submission order.
    pub outcomes: Vec<JobOutcome>,
    /// Wall-clock seconds for the whole drain.
    pub wall_seconds: f64,
    /// The pool size the drain ran with.
    pub workers: usize,
    /// The dispatch backend the drain ran with.
    pub backend: Backend,
}

impl ServeReport {
    /// Completed jobs per wall-clock second.
    pub fn jobs_per_sec(&self) -> f64 {
        if self.wall_seconds > 0.0 {
            self.outcomes.len() as f64 / self.wall_seconds
        } else {
            0.0
        }
    }

    /// The `q`-quantile (0 ≤ q ≤ 1) of per-job latency in seconds, by the
    /// nearest-rank method; 0 for an empty drain.
    pub fn latency_quantile(&self, q: f64) -> f64 {
        let mut latencies: Vec<f64> =
            self.outcomes.iter().map(|outcome| outcome.latency_seconds).collect();
        if latencies.is_empty() {
            return 0.0;
        }
        latencies.sort_by(|a, b| a.total_cmp(b));
        let rank = (q.clamp(0.0, 1.0) * (latencies.len() - 1) as f64).round() as usize;
        latencies[rank]
    }

    /// Number of jobs that completed successfully.
    pub fn completed(&self) -> usize {
        self.outcomes.iter().filter(|outcome| outcome.result.is_ok()).count()
    }

    /// Number of jobs that failed.
    pub fn failed(&self) -> usize {
        self.outcomes.len() - self.completed()
    }
}

/// A job parked on (or popped from) the scheduling queue.
struct Job {
    index: usize,
    spec: JobSpec,
    runner: Option<SessionRunner>,
    slices: usize,
}

/// The job queue: submit [`JobSpec`]s, then [`JobQueue::run`] drains them
/// over the configured worker pool. See the module docs for the lifecycle.
pub struct JobQueue {
    config: ServeConfig,
    pending: Vec<JobSpec>,
}

impl JobQueue {
    /// An empty queue over the given pool configuration.
    pub fn new(config: ServeConfig) -> JobQueue {
        JobQueue { config, pending: Vec::new() }
    }

    /// Park a job on the queue (runs in submission order, subject to
    /// preemption).
    pub fn submit(&mut self, spec: JobSpec) {
        self.pending.push(spec);
    }

    /// Number of jobs waiting.
    pub fn len(&self) -> usize {
        self.pending.len()
    }

    /// Whether no jobs are waiting.
    pub fn is_empty(&self) -> bool {
        self.pending.is_empty()
    }

    /// The pool configuration.
    pub fn config(&self) -> &ServeConfig {
        &self.config
    }

    /// Drain every queued job, discarding progress events.
    pub fn run(&mut self) -> ServeReport {
        self.run_with(|_| {})
    }

    /// Drain every queued job, streaming [`ServeEvent`]s to `on_event` as
    /// workers progress. Job failures become [`JobOutcome`]s (and
    /// [`ServeEvent::JobFailed`] events), never a queue-wide error — a bad
    /// job must not take down its neighbours.
    pub fn run_with<F>(&mut self, on_event: F) -> ServeReport
    where
        F: Fn(&ServeEvent) + Sync,
    {
        let sink: EventSink = Arc::default();
        let jobs: VecDeque<Job> = self
            .pending
            .drain(..)
            .enumerate()
            .map(|(index, spec)| Job { index, spec, runner: None, slices: 0 })
            .collect();
        let n_jobs = jobs.len();
        let names: Vec<String> = jobs.iter().map(|job| job.spec.name.clone()).collect();
        let quantum = self.config.quantum.max(1);
        let workers = self.config.workers.max(1).min(n_jobs.max(1));
        let queue = Mutex::new(jobs);
        let results: Mutex<Vec<Option<JobOutcome>>> =
            Mutex::new((0..n_jobs).map(|_| None).collect());
        let started = Instant::now();

        let drain_events = |sink: &EventSink| {
            let batch: Vec<ServeEvent> = std::mem::take(&mut *recover(sink));
            for event in &batch {
                on_event(event);
            }
        };

        let mut slots: Vec<usize> = (0..workers).collect();
        self.config.backend.map_mut(&mut slots, |_, _| {
            loop {
                let Some(mut job) = recover(&queue).pop_front() else {
                    break;
                };
                job.slices += 1;
                // First slice: build the session + runner (round 0 begins
                // here, so construction cost is part of the job's first
                // quantum, not the submit path).
                if job.runner.is_none() {
                    // Announce before building: the runner's construction
                    // already emits per-chain events through the tap, and
                    // those must arrive after the job's own start marker.
                    recover(&sink).push(ServeEvent::JobStarted { job: job.spec.name.clone() });
                    let built = job
                        .spec
                        .build_session(&sink)
                        .and_then(|session| session.into_runner(job.spec.seed));
                    match built {
                        Ok(runner) => {
                            job.runner = Some(runner);
                        }
                        Err(error) => {
                            record_failure(&results, &sink, &job, &error, &started);
                            drain_events(&sink);
                            continue;
                        }
                    }
                }
                let Some(runner) = job.runner.as_mut() else {
                    // Unreachable by construction (the build arm above either
                    // filled the slot or continued), but a scheduler bug must
                    // surface as this job's failure, not a pool panic.
                    let error = PhyloError::InvalidState {
                        message: format!("job `{}` scheduled without a runner", job.spec.name),
                    };
                    record_failure(&results, &sink, &job, &error, &started);
                    drain_events(&sink);
                    continue;
                };
                let mut finished = false;
                let mut failure: Option<PhyloError> = None;
                for _ in 0..quantum {
                    match runner.step() {
                        Ok(true) => {
                            finished = true;
                            break;
                        }
                        Ok(false) => {}
                        Err(error) => {
                            failure = Some(error);
                            break;
                        }
                    }
                }
                if let Some(error) = failure {
                    record_failure(&results, &sink, &job, &error, &started);
                } else if finished {
                    match runner.report().cloned() {
                        Some(report) => {
                            recover(&sink).push(ServeEvent::JobFinished {
                                job: job.spec.name.clone(),
                                theta: report.theta,
                            });
                            recover(&results)[job.index] = Some(JobOutcome {
                                name: job.spec.name.clone(),
                                result: Ok(report),
                                slices: job.slices,
                                latency_seconds: started.elapsed().as_secs_f64(),
                            });
                        }
                        None => {
                            let error = PhyloError::InvalidState {
                                message: format!(
                                    "job `{}` finished without producing a report",
                                    job.spec.name
                                ),
                            };
                            record_failure(&results, &sink, &job, &error, &started);
                        }
                    }
                } else {
                    recover(&queue).push_back(job);
                }
                drain_events(&sink);
            }
        });

        drain_events(&sink);
        let outcomes = results
            .into_inner()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
            .into_iter()
            .enumerate()
            .map(|(index, outcome)| {
                // A job that somehow left the drain without recording an
                // outcome is itself a failed job, not a queue-wide panic.
                outcome.unwrap_or_else(|| {
                    let error = PhyloError::InvalidState {
                        message: format!(
                            "job `{}` left the drain without an outcome",
                            names[index]
                        ),
                    };
                    JobOutcome::failed(&names[index], &error, 0, started.elapsed().as_secs_f64())
                })
            })
            .collect();
        ServeReport {
            outcomes,
            wall_seconds: started.elapsed().as_secs_f64(),
            workers,
            backend: self.config.backend,
        }
    }
}

fn record_failure(
    results: &Mutex<Vec<Option<JobOutcome>>>,
    sink: &EventSink,
    job: &Job,
    error: &PhyloError,
    started: &Instant,
) {
    recover(sink)
        .push(ServeEvent::JobFailed { job: job.spec.name.clone(), error: error.to_string() });
    recover(results)[job.index] = Some(JobOutcome::failed(
        &job.spec.name,
        error,
        job.slices,
        started.elapsed().as_secs_f64(),
    ));
}

#[cfg(test)]
mod tests {
    use super::*;
    use coalescent::{CoalescentSimulator, SequenceSimulator};
    use mcmc::rng::Mt19937;
    use phylo::model::Jc69;

    fn tiny_dataset(seed: u32) -> Dataset {
        let mut rng = Mt19937::new(seed);
        let tree = CoalescentSimulator::constant(1.0).unwrap().simulate(&mut rng, 5).unwrap();
        let alignment = SequenceSimulator::new(Jc69::new(), 40, 1.0)
            .unwrap()
            .simulate(&mut rng, &tree)
            .unwrap();
        Dataset::single(alignment)
    }

    fn tiny_config() -> MpcgsConfig {
        MpcgsConfig {
            initial_theta: 0.5,
            em_iterations: 1,
            proposals_per_iteration: 4,
            draws_per_iteration: 4,
            burn_in_draws: 8,
            sample_draws: 32,
            backend: Backend::Serial,
            ..MpcgsConfig::default()
        }
    }

    #[test]
    fn one_job_queue_is_bit_identical_to_session_run() {
        let dataset = tiny_dataset(11);
        let config = tiny_config();
        let mut direct =
            Session::builder().dataset(dataset.clone()).config(config).build().unwrap();
        let baseline = direct.run(&mut Mt19937::new(3)).unwrap();

        // Tiny quantum: the job is preempted many times along the way.
        for quantum in [1, 3, 1_000] {
            let mut queue = JobQueue::new(ServeConfig { quantum, ..ServeConfig::default() });
            queue.submit(JobSpec::new("solo", dataset.clone(), config, 3));
            let report = queue.run();
            assert_eq!(report.outcomes.len(), 1);
            let outcome = &report.outcomes[0];
            assert_eq!(outcome.result.as_ref().unwrap(), &baseline);
            if quantum == 1_000 {
                assert_eq!(outcome.slices, 1, "a huge quantum never preempts a tiny job");
            }
        }
    }

    #[test]
    fn serial_and_threaded_pools_produce_identical_outcomes() {
        let specs: Vec<JobSpec> = (0..6)
            .map(|k| {
                JobSpec::new(
                    format!("job-{k}"),
                    tiny_dataset(20 + k as u32),
                    tiny_config(),
                    k as u32,
                )
            })
            .collect();
        let run = |backend: Backend, workers: usize| {
            let mut queue = JobQueue::new(ServeConfig { backend, workers, quantum: 2 });
            for spec in &specs {
                queue.submit(spec.clone());
            }
            queue.run()
        };
        let serial = run(Backend::Serial, 1);
        let threaded = run(Backend::Rayon, 3);
        assert_eq!(serial.outcomes.len(), 6);
        assert_eq!(serial.completed(), 6);
        // Jobs own their RNG streams, so pool shape cannot change results.
        for (a, b) in serial.outcomes.iter().zip(&threaded.outcomes) {
            assert_eq!(a.name, b.name);
            assert_eq!(a.result, b.result);
        }
        assert!(serial.jobs_per_sec() > 0.0);
        assert!(serial.latency_quantile(0.99) >= serial.latency_quantile(0.5));
    }

    #[test]
    fn events_are_tagged_by_job_and_failures_do_not_poison_the_queue() {
        let mut queue = JobQueue::new(ServeConfig::default());
        queue.submit(JobSpec::new("good", tiny_dataset(31), tiny_config(), 1));
        // em_iterations = 0 fails session validation at build time.
        let bad_config = MpcgsConfig { em_iterations: 0, ..tiny_config() };
        queue.submit(JobSpec::new("bad", tiny_dataset(32), bad_config, 2));
        assert_eq!(queue.len(), 2);

        let events: Mutex<Vec<ServeEvent>> = Mutex::new(Vec::new());
        let report = queue.run_with(|event| events.lock().unwrap().push(event.clone()));
        assert!(queue.is_empty());
        assert_eq!(report.completed(), 1);
        assert_eq!(report.failed(), 1);
        assert!(report.outcomes[0].result.is_ok());
        let error = report.outcomes[1].result.as_ref().unwrap_err();
        assert!(!error.is_empty());

        let events = events.into_inner().unwrap();
        assert!(events.iter().any(|e| matches!(
            e,
            ServeEvent::EmRound { job, iteration: 0, .. } if job == "good"
        )));
        assert!(events.iter().any(|e| matches!(
            e,
            ServeEvent::JobFinished { job, .. } if job == "good"
        )));
        assert!(events
            .iter()
            .any(|e| matches!(e, ServeEvent::JobFailed { job, .. } if job == "bad")));
        // Start/chain events carry the tag too, and the start marker
        // precedes the job's chain events.
        let position = |pred: &dyn Fn(&ServeEvent) -> bool| {
            events.iter().position(pred).expect("event present")
        };
        let started = position(&|e| matches!(e, ServeEvent::JobStarted { job } if job == "good"));
        let chain = position(
            &|e| matches!(e, ServeEvent::ChainStarted { job, chain_index: 0 } if job == "good"),
        );
        assert!(started < chain, "JobStarted must precede the job's chain events");
    }

    #[test]
    fn ensemble_jobs_run_through_the_same_queue() {
        let mut queue = JobQueue::new(ServeConfig { quantum: 4, ..ServeConfig::default() });
        let mut spec = JobSpec::new("sharded", tiny_dataset(41), tiny_config(), 5);
        spec.ensemble = Some(EnsembleSpec::independent(2));
        queue.submit(spec);
        let report = queue.run();
        assert_eq!(report.completed(), 1);
        let session_report = report.outcomes[0].result.as_ref().unwrap();
        assert!(session_report.theta > 0.0 && session_report.theta.is_finite());
    }
}
