//! mpcgs — the multi-proposal coalescent genealogy sampler.
//!
//! This crate is the paper's primary contribution: a coalescent genealogy
//! sampler in which the conventional single-proposal Metropolis–Hastings
//! kernel of LAMARC is replaced by Calderhead's Generalized
//! Metropolis–Hastings so that the bulk of the work — proposal generation and
//! likelihood evaluation — becomes embarrassingly parallel (Sections 4 and
//! 5). The crate builds on the substrates in this workspace:
//!
//! * `phylo` for sequences, genealogies and the pruning likelihood;
//! * `coalescent` for the Kingman prior and the data simulators;
//! * `mcmc` for the random-number streams and log-domain arithmetic;
//! * `lamarc` for the shared neighborhood-resimulation proposal, the
//!   relative-likelihood maximiser and the baseline sampler;
//! * `exec` for the data-parallel backend and the simulated-device cost
//!   model.
//!
//! # Quick start
//!
//! ```
//! use coalescent::{CoalescentSimulator, SequenceSimulator};
//! use mcmc::rng::Mt19937;
//! use phylo::model::Jc69;
//! use mpcgs::{MpcgsConfig, ThetaEstimator};
//!
//! // Simulate a small data set with known theta = 1.0 (the paper's Section
//! // 6.1 workflow: ms + seq-gen).
//! let mut rng = Mt19937::new(42);
//! let tree = CoalescentSimulator::constant(1.0).unwrap().simulate(&mut rng, 6).unwrap();
//! let alignment = SequenceSimulator::new(Jc69::new(), 100, 1.0)
//!     .unwrap()
//!     .simulate(&mut rng, &tree)
//!     .unwrap();
//!
//! // Estimate theta with a deliberately small run (keep doctests fast).
//! let config = MpcgsConfig {
//!     initial_theta: 0.5,
//!     em_iterations: 1,
//!     burn_in_draws: 64,
//!     sample_draws: 256,
//!     proposals_per_iteration: 8,
//!     ..MpcgsConfig::default()
//! };
//! let estimate = ThetaEstimator::new(alignment, config).unwrap().estimate(&mut rng).unwrap();
//! assert!(estimate.theta > 0.0 && estimate.theta.is_finite());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod em;
pub mod perf;
pub mod sampler;

pub use config::MpcgsConfig;
pub use em::{MpcgsEstimate, MpcgsIteration, ThetaEstimator};
pub use perf::{CachingReport, SpeedupModel, Workload};
pub use sampler::{GmhRunStats, MultiProposalSampler, MultiProposalSamplerRun};

// Re-export the pieces of the shared machinery that form part of the public
// API surface of the sampler, so downstream users only need this crate.
pub use lamarc::mle::{maximize_relative_likelihood, GradientAscentConfig, RelativeLikelihood};
pub use lamarc::proposal::{GenealogyProposer, HazardModel, ProposalConfig};
pub use lamarc::sampler::GenealogySample;
