//! mpcgs — the multi-proposal coalescent genealogy sampler.
//!
//! This crate is the paper's primary contribution: a coalescent genealogy
//! sampler in which the conventional single-proposal Metropolis–Hastings
//! kernel of LAMARC is replaced by Calderhead's Generalized
//! Metropolis–Hastings so that the bulk of the work — proposal generation and
//! likelihood evaluation — becomes embarrassingly parallel (Sections 4 and
//! 5). The crate builds on the substrates in this workspace:
//!
//! * `phylo` for sequences, the multi-locus [`Dataset`] model, genealogies
//!   and the batched pruning likelihood;
//! * `coalescent` for the Kingman prior and the data simulators;
//! * `mcmc` for the random-number streams and log-domain arithmetic;
//! * `lamarc` for the shared neighborhood-resimulation proposal, the
//!   relative-likelihood maximiser, the baseline sampler and the unified
//!   [`GenealogySampler`] strategy API;
//! * `exec` for the data-parallel backend and the simulated-device cost
//!   model.
//!
//! Everything is driven through one facade: a [`Session`] built as
//! dataset → model → sampler strategy → backend → observers.
//!
//! # Quick start
//!
//! ```
//! use coalescent::{CoalescentSimulator, SequenceSimulator};
//! use mcmc::rng::Mt19937;
//! use phylo::model::Jc69;
//! use mpcgs::{MpcgsConfig, SamplerStrategy, Session};
//!
//! // Simulate a small data set with known theta = 1.0 (the paper's Section
//! // 6.1 workflow: ms + seq-gen).
//! let mut rng = Mt19937::new(42);
//! let tree = CoalescentSimulator::constant(1.0).unwrap().simulate(&mut rng, 6).unwrap();
//! let alignment = SequenceSimulator::new(Jc69::new(), 100, 1.0)
//!     .unwrap()
//!     .simulate(&mut rng, &tree)
//!     .unwrap();
//!
//! // Estimate theta with a deliberately small run (keep doctests fast).
//! let config = MpcgsConfig {
//!     initial_theta: 0.5,
//!     em_iterations: 1,
//!     burn_in_draws: 64,
//!     sample_draws: 256,
//!     proposals_per_iteration: 8,
//!     draws_per_iteration: 8,
//!     ..MpcgsConfig::default()
//! };
//! let mut session = Session::builder()
//!     .alignment(alignment)
//!     .strategy(SamplerStrategy::MultiProposal)
//!     .config(config)
//!     .build()
//!     .unwrap();
//! let estimate = session.run(&mut rng).unwrap();
//! assert!(estimate.theta > 0.0 && estimate.theta.is_finite());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod checkpoint;
pub mod cli;
pub mod config;
pub mod ensemble;
pub mod multi_chain;
pub mod observers;
pub mod perf;
pub mod sampler;
pub mod serve;
pub mod session;

pub use checkpoint::{CheckpointState, SessionCheckpoint, CHECKPOINT_FORMAT};
pub use config::MpcgsConfig;
pub use ensemble::{
    is_cold_rung, Ensemble, EnsembleBuilder, EnsembleReport, EnsembleSnapshot, EnsembleSpec,
    ExchangePolicy, ShardedSampler,
};
pub use multi_chain::{run_multi_chain, MultiChainConfig, MultiChainRun};
pub use observers::{ChainSummaryPrinter, EmProgressPrinter};
pub use perf::{CachingReport, SpeedupModel, Workload};
pub use sampler::MultiProposalSampler;
pub use serve::{JobOutcome, JobQueue, JobSpec, ServeConfig, ServeEvent, ServeReport};
pub use session::{
    EmIterationReport, ModelSpec, SamplerStrategy, Session, SessionBuilder, SessionReport,
    SessionRunner,
};

// Re-export the pieces of the shared machinery that form part of the public
// API surface of the sampler, so downstream users only need this crate.
pub use lamarc::mle::{maximize_relative_likelihood, GradientAscentConfig, RelativeLikelihood};
pub use lamarc::proposal::{GenealogyProposer, HazardModel, ProposalConfig};
pub use lamarc::run::{
    ChainInfo, ChainSnapshot, EmUpdate, GenealogySampler, NullObserver, RunCounters, RunObserver,
    RunReport, StepReport,
};
pub use lamarc::sampler::GenealogySample;
pub use phylo::{Dataset, Kernel, Locus};

// The execution-backend surface a driver needs to select and report on the
// simulated accelerator: the backend enum, its device spec presets, and the
// cost-breakdown report the runs attach.
pub use exec::{Backend, DeviceReport, DeviceSpec, DeviceStats};
