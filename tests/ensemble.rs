//! Integration tests of the ensemble layer: sharded multi-chain sampling
//! behind the `GenealogySampler` trait.
//!
//! The contracts pinned down here are the ones the ensemble API is built on:
//!
//! * **Backend determinism** — chains own their RNG streams, so serial and
//!   rayon chain dispatch produce bit-identical `EnsembleReport`s (and the
//!   result is therefore independent of thread count).
//! * **Single-chain compatibility** — a one-chain `Independent` ensemble is
//!   bit-identical to driving the same session through `Session::run_chain`
//!   with the ensemble's chain-0 stream.
//! * **Replica-exchange sanity** — with identical temperatures the Metropolis
//!   swap rule accepts every attempt; with a real ladder the acceptance rate
//!   is a proper fraction and the run still estimates θ.
//! * **Pooled diagnostics** — Gelman–Rubin R̂ over identical-target chains
//!   approaches 1 on long runs.

use std::sync::{Arc, Mutex};

use coalescent::{CoalescentSimulator, SequenceSimulator};
use exec::Backend;
use mcmc::rng::Mt19937;
use mpcgs::ensemble::{EnsembleBuilder, EnsembleSpec, ExchangePolicy, ShardedSampler};
use mpcgs::{
    ChainInfo, GenealogySampler, MpcgsConfig, RunObserver, RunReport, SamplerStrategy, Session,
};
use phylo::model::Jc69;
use phylo::{Alignment, Dataset};

fn simulated_dataset(seed: u32, n: usize, sites: usize, theta: f64) -> Dataset {
    let mut rng = Mt19937::new(seed);
    let tree = CoalescentSimulator::constant(theta).unwrap().simulate(&mut rng, n).unwrap();
    let alignment: Alignment =
        SequenceSimulator::new(Jc69::new(), sites, 1.0).unwrap().simulate(&mut rng, &tree).unwrap();
    Dataset::single(alignment)
}

fn small_config(backend: Backend) -> MpcgsConfig {
    MpcgsConfig {
        initial_theta: 1.0,
        em_iterations: 1,
        proposals_per_iteration: 8,
        draws_per_iteration: 8,
        burn_in_draws: 40,
        sample_draws: 160,
        backend,
        ..MpcgsConfig::default()
    }
}

fn session(dataset: &Dataset, backend: Backend, strategy: SamplerStrategy) -> Session {
    Session::builder()
        .dataset(dataset.clone())
        .strategy(strategy)
        .config(small_config(backend))
        .build()
        .unwrap()
}

#[test]
fn independent_ensemble_is_bit_identical_across_backends() {
    // The acceptance criterion of the ensemble redesign: a 4-chain
    // independent ensemble with a fixed seed produces bit-identical
    // EnsembleReports under serial (round-robin) and rayon (one scoped
    // thread per chain) dispatch — which also makes the result independent
    // of thread count, since every chain owns its RNG stream and engine.
    let dataset = simulated_dataset(211, 6, 80, 1.0);
    let spec = EnsembleSpec { n_chains: 4, ensemble_seed: 42, ..EnsembleSpec::independent(4) };
    for strategy in [SamplerStrategy::MultiProposal, SamplerStrategy::Baseline] {
        let mut serial = session(&dataset, Backend::Serial, strategy);
        serial.set_ensemble(Some(spec.clone()));
        let report_serial = serial.run_ensemble(&mut Mt19937::new(1)).unwrap();

        let mut rayon = session(&dataset, Backend::Rayon, strategy);
        rayon.set_ensemble(Some(spec.clone()));
        let report_rayon = rayon.run_ensemble(&mut Mt19937::new(999)).unwrap();

        assert_eq!(
            report_serial, report_rayon,
            "{strategy:?}: serial and rayon chain dispatch must be bit-identical"
        );

        // Decoupled dispatch — serial within-chain work sharded across one
        // scoped thread per chain — is the same ensemble too.
        let mut decoupled = session(&dataset, Backend::Serial, strategy);
        decoupled.set_ensemble(Some(EnsembleSpec {
            chain_dispatch: Some(Backend::Rayon),
            ..spec.clone()
        }));
        let report_decoupled = decoupled.run_ensemble(&mut Mt19937::new(7)).unwrap();
        assert_eq!(
            report_serial, report_decoupled,
            "{strategy:?}: chain_dispatch must not change results"
        );
        assert_eq!(report_serial.n_chains(), 4);
        assert_eq!(report_serial.pooled_samples.len(), 4 * 160);
        assert_eq!(report_serial.counters.swap_attempts, 0);
        assert!(report_serial.pooled_theta().unwrap() > 0.0);
        // Chains are genuinely decorrelated, not clones of one stream.
        assert_ne!(report_serial.chains[0].trace.all(), report_serial.chains[1].trace.all());
    }
}

#[test]
fn single_chain_independent_ensemble_matches_run_chain() {
    // A one-chain ensemble must collapse to exactly the single-chain code
    // path: same sampler construction (chain 0 keeps the configured proposal
    // stream seed, β = 1), same host randomness (the ensemble's chain-0
    // stream), bit-identical RunReport.
    let dataset = simulated_dataset(223, 5, 60, 1.0);
    let spec = EnsembleSpec { n_chains: 1, ensemble_seed: 77, ..EnsembleSpec::independent(1) };

    let mut ensemble_session = session(&dataset, Backend::Serial, SamplerStrategy::MultiProposal);
    ensemble_session.set_ensemble(Some(spec.clone()));
    let report = ensemble_session.run_ensemble(&mut Mt19937::new(5)).unwrap();
    assert_eq!(report.n_chains(), 1);

    let mut plain = session(&dataset, Backend::Serial, SamplerStrategy::MultiProposal);
    let mut chain0_rng = spec.chain_rngs().remove(0);
    let direct: RunReport = plain.run_chain(&mut chain0_rng).unwrap();

    assert_eq!(report.chains[0], direct, "1-chain ensemble must equal Session::run_chain");
    // The pooled view is the one chain's samples verbatim.
    assert_eq!(report.pooled_samples, direct.samples);
}

#[test]
fn identical_temperatures_accept_every_swap() {
    // With a flat ladder the swap rule's log acceptance is exactly zero, so
    // every attempted swap must be accepted — the Metropolis-in-log-domain
    // sanity check.
    let dataset = simulated_dataset(227, 5, 60, 1.0);
    let mut s = session(&dataset, Backend::Serial, SamplerStrategy::MultiProposal);
    s.set_ensemble(Some(EnsembleSpec {
        n_chains: 3,
        exchange: ExchangePolicy::TemperatureLadder {
            temperatures: vec![1.0, 1.0, 1.0],
            swap_interval: 1,
        },
        ensemble_seed: 9,
        chain_dispatch: None,
    }));
    let report = s.run_ensemble(&mut Mt19937::new(2)).unwrap();
    assert!(report.counters.swap_attempts > 0, "swaps must have been attempted");
    assert_eq!(
        report.counters.swaps_accepted, report.counters.swap_attempts,
        "identical temperatures must accept every swap"
    );
    assert_eq!(report.swap_acceptance_rate(), 1.0);
    // All rungs are cold here, so all chains pool.
    assert_eq!(report.pooled_samples.len(), 3 * 160);
}

#[test]
fn geometric_ladder_runs_and_swaps_sensibly() {
    let dataset = simulated_dataset(229, 6, 80, 1.0);
    let mut s = session(&dataset, Backend::Rayon, SamplerStrategy::MultiProposal);
    s.set_ensemble(Some(EnsembleSpec {
        n_chains: 4,
        exchange: ExchangePolicy::geometric_ladder(4, 4.0, 2).expect("valid ladder"),
        ensemble_seed: 13,
        chain_dispatch: None,
    }));
    let report = s.run_ensemble(&mut Mt19937::new(3)).unwrap();
    assert_eq!(report.temperatures.len(), 4);
    assert_eq!(report.temperatures[0], 1.0);
    assert!((report.temperatures[3] - 4.0).abs() < 1e-12);
    assert!(report.temperatures.windows(2).all(|w| w[0] < w[1]));
    assert!(report.counters.swap_attempts > 0);
    assert!(report.counters.swaps_accepted <= report.counters.swap_attempts);
    // Only the cold rung pools samples on a heated ladder.
    assert_eq!(report.pooled_samples.len(), 160);
    assert_eq!(report.pooled_samples, report.cold_chain().samples);
    assert!(report.pooled_theta().unwrap() > 0.0);
    // Heated rungs move at least as freely as the cold chain on average:
    // just sanity-check every chain made progress.
    for chain in &report.chains {
        assert!(chain.acceptance_rate() > 0.0);
        assert_eq!(chain.counters.draws, 200);
    }
}

#[test]
fn near_cold_rungs_classify_as_estimation_chains() {
    // A user-supplied ladder whose cold rungs carry float noise (1 ± 1e-12)
    // must not be silently dropped from pooling and diagnostics by an exact
    // t == 1.0 comparison: both near-cold rungs pool, feed R-hat, and count
    // toward the ideal parallel cost.
    let dataset = simulated_dataset(241, 6, 80, 1.0);
    let mut s = session(&dataset, Backend::Serial, SamplerStrategy::MultiProposal);
    s.set_ensemble(Some(EnsembleSpec {
        n_chains: 3,
        exchange: ExchangePolicy::TemperatureLadder {
            temperatures: vec![1.0 + 1e-12, 1.0 - 1e-12, 4.0],
            swap_interval: 4,
        },
        ensemble_seed: 23,
        chain_dispatch: None,
    }));
    let report = s.run_ensemble(&mut Mt19937::new(8)).unwrap();
    assert_eq!(report.cold_rungs, vec![true, true, false]);
    // Both near-cold rungs pool — 2 x 160 retained draws, not 0 and not 480.
    assert_eq!(report.pooled_samples.len(), 2 * 160);
    // Two estimation chains are enough for a between-chain R-hat.
    assert!(report.r_hat().is_some(), "near-cold rungs must feed R-hat");
    // And the ideal-cost accounting divides the pool by the two cold rungs.
    let expected = 40.0 + (2.0 * 160.0) / 2.0;
    assert!((report.ideal_parallel_cost() - expected).abs() < 1e-9);
    assert!(report.pooled_theta().unwrap() > 0.0);

    // Contrast: the same ladder with an exactly-cold rung 0 only is also
    // classified through the mask (1 estimation chain -> no R-hat).
    let mut single_cold = session(&dataset, Backend::Serial, SamplerStrategy::MultiProposal);
    single_cold.set_ensemble(Some(EnsembleSpec {
        n_chains: 3,
        exchange: ExchangePolicy::TemperatureLadder {
            temperatures: vec![1.0, 2.0, 4.0],
            swap_interval: 4,
        },
        ensemble_seed: 23,
        chain_dispatch: None,
    }));
    let single_report = single_cold.run_ensemble(&mut Mt19937::new(8)).unwrap();
    assert_eq!(single_report.cold_rungs, vec![true, false, false]);
    assert_eq!(single_report.pooled_samples.len(), 160);
    assert!(single_report.r_hat().is_none());
}

#[test]
fn r_hat_approaches_one_for_identical_target_chains() {
    let dataset = simulated_dataset(233, 6, 80, 1.0);
    let config =
        MpcgsConfig { burn_in_draws: 200, sample_draws: 1_200, ..small_config(Backend::Rayon) };
    let mut s = Session::builder()
        .dataset(dataset.clone())
        .config(config)
        .ensemble(EnsembleSpec { n_chains: 4, ensemble_seed: 17, ..EnsembleSpec::independent(4) })
        .build()
        .unwrap();
    let report = s.run_ensemble(&mut Mt19937::new(4)).unwrap();
    let r_hat = report.r_hat().expect("four estimation chains give an R-hat");
    assert!(r_hat < 1.2, "identical-target chains should converge: R-hat = {r_hat}");
    // A single estimation chain has no between-chain diagnostic.
    let mut single = session(&dataset, Backend::Serial, SamplerStrategy::MultiProposal);
    single.set_ensemble(Some(EnsembleSpec { n_chains: 1, ..EnsembleSpec::independent(1) }));
    let single_report = single.run_ensemble(&mut Mt19937::new(4)).unwrap();
    assert!(single_report.r_hat().is_none());
}

#[test]
fn ensemble_builder_and_em_estimation_run_end_to_end() {
    // The EnsembleBuilder facade plus the full EM loop over pooled samples:
    // Session::run shards every round and chains the pooled maximiser.
    let dataset = simulated_dataset(239, 6, 100, 1.0);
    let config = MpcgsConfig { em_iterations: 2, ..small_config(Backend::Rayon) };
    let base = Session::builder().dataset(dataset.clone()).config(config).build().unwrap();
    let ensemble = EnsembleBuilder::new()
        .session(base)
        .chains(3)
        .exchange(ExchangePolicy::Independent)
        .seed(21)
        .build()
        .unwrap();
    let mut em_session = ensemble.into_session();
    let estimate = em_session.run(&mut Mt19937::new(6)).unwrap();
    assert_eq!(estimate.iterations.len(), 2);
    assert!(estimate.theta > 0.0 && estimate.theta.is_finite());
    // Counters aggregate across all three chains: 200 draws per chain/round.
    for iteration in &estimate.iterations {
        assert_eq!(iteration.counters.draws, 3 * 200);
    }
}

/// Records which chain indices the observer saw start and end, plus the
/// per-iteration event stream.
#[derive(Clone, Default)]
struct ChainTagRecorder {
    started: Arc<Mutex<Vec<usize>>>,
    ended: Arc<Mutex<Vec<usize>>>,
    thetas: Arc<Mutex<Vec<f64>>>,
    iterations: Arc<Mutex<usize>>,
    burn_in_events: Arc<Mutex<usize>>,
}

impl RunObserver for ChainTagRecorder {
    fn on_chain_start(&mut self, info: &ChainInfo) {
        self.started.lock().unwrap().push(info.chain_index);
        self.thetas.lock().unwrap().push(info.theta);
    }

    fn on_burn_in_progress(&mut self, _draws_done: usize, _burn_in_total: usize) {
        *self.burn_in_events.lock().unwrap() += 1;
    }

    fn on_iteration(&mut self, _step: &mpcgs::StepReport) {
        *self.iterations.lock().unwrap() += 1;
    }

    fn on_chain_end(&mut self, report: &RunReport) {
        self.ended.lock().unwrap().push(report.counters.draws);
    }
}

#[test]
fn observers_see_tagged_per_chain_events() {
    let dataset = simulated_dataset(241, 5, 60, 1.0);
    let recorder = ChainTagRecorder::default();
    let mut s = Session::builder()
        .dataset(dataset)
        .config(small_config(Backend::Serial))
        .ensemble(EnsembleSpec { n_chains: 3, ensemble_seed: 23, ..EnsembleSpec::independent(3) })
        .observe(recorder.clone())
        .build()
        .unwrap();
    s.run_ensemble(&mut Mt19937::new(7)).unwrap();
    assert_eq!(*recorder.started.lock().unwrap(), vec![0, 1, 2], "starts are tagged in rung order");
    assert_eq!(recorder.ended.lock().unwrap().len(), 3, "one end event per chain");
    assert!(recorder.thetas.lock().unwrap().iter().all(|&t| t == 1.0));
    // Segmented dispatch must not starve per-iteration hooks: the observer
    // sees the cold chain's full event stream — one on_iteration per GMH
    // iteration (200 draws / 8 per iteration) and burn-in progress through
    // the 40 burn-in draws (5 iterations).
    assert_eq!(*recorder.iterations.lock().unwrap(), 200_usize.div_ceil(8));
    assert_eq!(*recorder.burn_in_events.lock().unwrap(), 40_usize.div_ceil(8));
}

#[test]
fn sharded_sampler_is_a_genealogy_sampler() {
    // Drive the ensemble through the trait surface directly: begin / step /
    // finish, current_state, and the pooled RunReport contract.
    let dataset = simulated_dataset(251, 5, 60, 1.0);
    let s = session(&dataset, Backend::Serial, SamplerStrategy::MultiProposal);
    let spec = EnsembleSpec { n_chains: 2, ensemble_seed: 31, ..EnsembleSpec::independent(2) };
    let mut sampler = ShardedSampler::from_session(&s, &spec, 1.0).unwrap();
    assert_eq!(sampler.strategy(), "ensemble");
    assert_eq!(sampler.n_chains(), 2);
    assert_eq!(sampler.temperatures(), &[1.0, 1.0]);
    let infos = sampler.chain_infos();
    assert_eq!(infos.len(), 2);
    assert_eq!(infos[0].chain_index, 0);
    assert_eq!(infos[1].chain_index, 1);

    // Stepping before begin errors, exactly like the single-chain samplers.
    let mut rng = Mt19937::new(8);
    assert!(sampler.is_done());
    assert!(sampler.step(&mut rng).is_err());
    assert!(sampler.current_state().is_none());

    sampler.begin(s.starting_tree().unwrap()).unwrap();
    let mut steps = 0;
    while !sampler.is_done() {
        let step = sampler.step(&mut rng).unwrap();
        assert!(step.draws_done <= step.total_draws);
        steps += 1;
    }
    // Independent chains need no synchronization barrier, so one dispatch
    // segment drives every chain to completion.
    assert_eq!(steps, 1, "independent ensembles run in a single dispatch segment");
    let (tree, loglik) = sampler.current_state().expect("state after stepping");
    tree.validate().unwrap();
    assert!(loglik.is_finite());
    let pooled = sampler.finish().unwrap();
    assert_eq!(pooled.samples.len(), 2 * 160);
    let report = sampler.take_ensemble_report().expect("finish leaves an ensemble report");
    assert_eq!(report.pooled_run_report().samples.len(), pooled.samples.len());
    assert_eq!(report.transitions_per_chain(), 200);
    assert_eq!(report.total_transitions(), 400);
    assert!((report.burn_in_fraction() - 80.0 / 400.0).abs() < 1e-12);
    assert_eq!(report.ideal_parallel_cost(), 40.0 + 160.0);
}

#[test]
fn invalid_specs_are_rejected() {
    let dataset = simulated_dataset(257, 4, 40, 1.0);
    let base = || session(&dataset, Backend::Serial, SamplerStrategy::MultiProposal);

    // Zero chains.
    assert!(EnsembleSpec { n_chains: 0, ..EnsembleSpec::default() }.validate().is_err());
    // Ladder length mismatch.
    assert!(EnsembleSpec {
        n_chains: 3,
        exchange: ExchangePolicy::TemperatureLadder {
            temperatures: vec![1.0, 2.0],
            swap_interval: 1
        },
        ..EnsembleSpec::default()
    }
    .validate()
    .is_err());
    // Hot rung 0.
    assert!(EnsembleSpec {
        n_chains: 2,
        exchange: ExchangePolicy::TemperatureLadder {
            temperatures: vec![2.0, 4.0],
            swap_interval: 1
        },
        ..EnsembleSpec::default()
    }
    .validate()
    .is_err());
    // Temperature below 1 or non-finite; zero swap interval.
    for temps in [vec![1.0, 0.5], vec![1.0, f64::NAN]] {
        assert!(EnsembleSpec {
            n_chains: 2,
            exchange: ExchangePolicy::TemperatureLadder { temperatures: temps, swap_interval: 1 },
            ..EnsembleSpec::default()
        }
        .validate()
        .is_err());
    }
    assert!(EnsembleSpec {
        n_chains: 2,
        exchange: ExchangePolicy::TemperatureLadder {
            temperatures: vec![1.0, 2.0],
            swap_interval: 0
        },
        ..EnsembleSpec::default()
    }
    .validate()
    .is_err());

    // SessionBuilder::ensemble validates at build time.
    assert!(Session::builder()
        .dataset(dataset.clone())
        .config(small_config(Backend::Serial))
        .ensemble(EnsembleSpec { n_chains: 0, ..EnsembleSpec::default() })
        .build()
        .is_err());
    // EnsembleBuilder requires a session.
    assert!(EnsembleBuilder::new().chains(2).build().is_err());
    // run_ensemble without a spec is an error.
    assert!(base().run_ensemble(&mut Mt19937::new(1)).is_err());
}
