//! Acceptance tests for the unified `Session` API:
//!
//! 1. single-locus sessions are *bit-identical* (fixed seed) to the
//!    pre-redesign drivers — the raw samplers driven by hand through the
//!    pre-facade EM loop;
//! 2. a multi-locus (3-locus) evaluation matches the sum of independent
//!    per-locus evaluations to 1e-10;
//! 3. both `GenealogySampler` strategies are interchangeable behind the
//!    trait and produce identical traces to their directly-constructed
//!    counterparts under a fixed seed;
//! 4. `RunObserver`s receive the documented event sequence.

use std::sync::{Arc, Mutex};

use coalescent::{CoalescentSimulator, SequenceSimulator};
use exec::Backend;
use lamarc::mle::{maximize_relative_likelihood, RelativeLikelihood};
use lamarc::run::{
    ChainInfo, EmUpdate, GenealogySampler, NullObserver, RunObserver, RunReport, StepReport,
};
use lamarc::sampler::{LamarcSampler, SamplerConfig};
use mcmc::rng::Mt19937;
use phylo::model::{Jc69, F81};
use phylo::{
    upgma_tree, Alignment, Dataset, FelsensteinPruner, LikelihoodEngine, Locus, MultiLocusEngine,
};

use mpcgs::sampler::MultiProposalSampler;
use mpcgs::{ModelSpec, MpcgsConfig, SamplerStrategy, Session};

fn simulated_alignment(seed: u32, n: usize, sites: usize) -> Alignment {
    let mut rng = Mt19937::new(seed);
    let tree = CoalescentSimulator::constant(1.0).unwrap().simulate(&mut rng, n).unwrap();
    SequenceSimulator::new(Jc69::new(), sites, 1.0).unwrap().simulate(&mut rng, &tree).unwrap()
}

fn small_config() -> MpcgsConfig {
    MpcgsConfig {
        initial_theta: 0.5,
        em_iterations: 2,
        proposals_per_iteration: 8,
        draws_per_iteration: 8,
        burn_in_draws: 60,
        sample_draws: 400,
        backend: Backend::Serial,
        ..MpcgsConfig::default()
    }
}

/// The pre-redesign EM driver loop (what `ThetaEstimator::estimate` used to
/// hard-code): fresh engine + raw `MultiProposalSampler` per round, relative
/// likelihood maximised over the interval summaries, driving value and
/// starting tree chained across rounds.
fn pre_redesign_gmh_em(
    alignment: &Alignment,
    config: MpcgsConfig,
    rng: &mut Mt19937,
) -> (f64, Vec<f64>, Vec<RunReport>) {
    let mut theta = config.initial_theta;
    let mut estimates = Vec::new();
    let mut reports = Vec::new();
    let mut current = Some(upgma_tree(alignment, 1.0).unwrap());
    for _ in 0..config.em_iterations {
        let engine =
            FelsensteinPruner::new(alignment, F81::normalized(alignment.base_frequencies()));
        let mut sampler = MultiProposalSampler::with_theta(engine, config, theta).unwrap();
        let initial = current.take().unwrap();
        let report = sampler.run(initial, rng, &mut NullObserver).unwrap();
        let summaries = report.interval_summaries();
        let relative = RelativeLikelihood::new(theta, &summaries).unwrap();
        let estimate = maximize_relative_likelihood(&relative, &config.ascent);
        estimates.push(estimate);
        theta = estimate.max(1e-9);
        current = Some(report.final_tree.clone());
        reports.push(report);
    }
    (theta, estimates, reports)
}

#[test]
fn session_is_bit_identical_to_the_pre_redesign_em_driver() {
    let alignment = simulated_alignment(20_170_529, 6, 90);
    let config = small_config();

    let mut manual_rng = Mt19937::new(1_000);
    let (manual_theta, manual_estimates, manual_reports) =
        pre_redesign_gmh_em(&alignment, config, &mut manual_rng);

    let mut session = Session::builder().alignment(alignment).config(config).build().unwrap();
    let mut session_rng = Mt19937::new(1_000);
    let estimate = session.run(&mut session_rng).unwrap();

    // Bit-identical: the facade adds no numerical drift of any kind.
    assert_eq!(estimate.theta, manual_theta);
    for (it, (manual_estimate, manual_report)) in
        estimate.iterations.iter().zip(manual_estimates.iter().zip(&manual_reports))
    {
        assert_eq!(it.estimate, *manual_estimate);
        assert_eq!(it.counters, manual_report.counters);
        assert_eq!(it.acceptance_rate, manual_report.acceptance_rate());
        assert_eq!(it.mean_log_data_likelihood, manual_report.mean_log_data_likelihood());
    }
}

#[test]
fn session_chains_are_bit_identical_to_directly_constructed_samplers() {
    let alignment = simulated_alignment(8_888, 6, 80);
    let config =
        MpcgsConfig { initial_theta: 1.0, burn_in_draws: 50, sample_draws: 300, ..small_config() };
    let initial = upgma_tree(&alignment, 1.0).unwrap();

    // Multi-proposal strategy vs the raw MultiProposalSampler.
    let mut raw_rng = Mt19937::new(55);
    let engine = FelsensteinPruner::new(&alignment, F81::normalized(alignment.base_frequencies()));
    let mut raw = MultiProposalSampler::with_theta(engine, config, config.initial_theta).unwrap();
    let raw_run = raw.run(initial.clone(), &mut raw_rng, &mut NullObserver).unwrap();

    let mut session =
        Session::builder().alignment(alignment.clone()).config(config).build().unwrap();
    let mut session_rng = Mt19937::new(55);
    let session_run = session.run_chain(&mut session_rng).unwrap();
    assert_eq!(session_run.trace.all(), raw_run.trace.all());
    assert_eq!(session_run.counters, raw_run.counters);

    // Baseline strategy vs the raw LamarcSampler.
    let mut raw_rng = Mt19937::new(77);
    let engine = FelsensteinPruner::new(&alignment, F81::normalized(alignment.base_frequencies()));
    let baseline_config = SamplerConfig {
        theta: config.initial_theta,
        burn_in: config.burn_in_draws,
        samples: config.sample_draws,
        thinning: config.thinning,
        proposal: config.proposal,
    };
    let mut raw = LamarcSampler::new(engine, baseline_config).unwrap();
    let raw_run = raw.run(initial, &mut raw_rng, &mut NullObserver).unwrap();

    let mut session = Session::builder()
        .alignment(alignment)
        .strategy(SamplerStrategy::Baseline)
        .config(config)
        .build()
        .unwrap();
    let mut session_rng = Mt19937::new(77);
    let session_run = session.run_chain(&mut session_rng).unwrap();
    assert_eq!(session_run.trace.all(), raw_run.trace.all());
    assert_eq!(session_run.counters, raw_run.counters);
    let raw_depths: Vec<f64> = raw_run.samples.iter().map(|s| s.intervals.depth()).collect();
    let session_depths: Vec<f64> =
        session_run.samples.iter().map(|s| s.intervals.depth()).collect();
    assert_eq!(raw_depths, session_depths);
}

#[test]
fn three_locus_run_matches_the_per_locus_sum() {
    // Three loci over the same five individuals, independently simulated.
    let base = simulated_alignment(31_337, 5, 70);
    let names: Vec<String> = base.names().iter().map(|s| s.to_string()).collect();
    let mut rng = Mt19937::new(606);
    let mut loci = vec![Locus::new("l0", base)];
    for (i, sites) in [(1usize, 50usize), (2, 110)] {
        let tree = CoalescentSimulator::constant(1.0)
            .unwrap()
            .simulate_labelled(&mut rng, &names)
            .unwrap();
        let alignment = SequenceSimulator::new(Jc69::new(), sites, 1.0)
            .unwrap()
            .simulate(&mut rng, &tree)
            .unwrap();
        loci.push(Locus::new(format!("l{i}"), alignment));
    }
    let dataset = Dataset::new(loci).unwrap();

    // Run a short 3-locus session chain to generate genealogies the engine
    // actually visits, then verify the multi-locus likelihood of each
    // visited state equals the sum of independent per-locus evaluations.
    let config = MpcgsConfig {
        initial_theta: 1.0,
        em_iterations: 1,
        burn_in_draws: 20,
        sample_draws: 120,
        ..small_config()
    };
    let mut session = Session::builder()
        .dataset(dataset.clone())
        .model(ModelSpec::F81Empirical)
        .config(config)
        .build()
        .unwrap();
    let run = session.run_chain(&mut rng).unwrap();
    assert_eq!(run.samples.len(), 120);

    let engine = MultiLocusEngine::new(&dataset, |a| F81::normalized(a.base_frequencies()));
    let per_locus_engines: Vec<_> = dataset
        .loci()
        .iter()
        .map(|locus| {
            FelsensteinPruner::new(
                locus.alignment(),
                F81::normalized(locus.alignment().base_frequencies()),
            )
        })
        .collect();
    // The final tree plus a fan of fresh trees over the same tips.
    let mut trees =
        vec![run.final_tree.clone(), upgma_tree(dataset.primary_alignment(), 1.0).unwrap()];
    for _ in 0..8 {
        trees.push(
            CoalescentSimulator::constant(1.0)
                .unwrap()
                .simulate_labelled(&mut rng, &names)
                .unwrap(),
        );
    }
    for tree in &trees {
        let multi = engine.log_likelihood(tree).unwrap();
        let sum: f64 = per_locus_engines.iter().map(|e| e.log_likelihood(tree).unwrap()).sum();
        assert!(
            (multi - sum).abs() < 1e-10,
            "multi-locus {multi} vs per-locus sum {sum} (diff {})",
            (multi - sum).abs()
        );
    }
    // The trace the chain recorded is made of exactly such sums: its final
    // entry equals the committed engine state for the final tree.
    let last = *run.trace.all().last().unwrap();
    let sum: f64 =
        per_locus_engines.iter().map(|e| e.log_likelihood(&run.final_tree).unwrap()).sum();
    assert!((last - sum).abs() < 1e-10, "final trace point {last} vs per-locus sum {sum}");
}

#[test]
fn strategies_are_interchangeable_behind_the_trait() {
    let alignment = simulated_alignment(99, 5, 60);
    let config = MpcgsConfig { burn_in_draws: 16, sample_draws: 64, ..small_config() };
    let session = Session::builder().alignment(alignment.clone()).config(config).build().unwrap();
    let initial = upgma_tree(&alignment, 1.0).unwrap();

    for strategy in [SamplerStrategy::Baseline, SamplerStrategy::MultiProposal] {
        let session = Session::builder()
            .alignment(alignment.clone())
            .strategy(strategy)
            .config(config)
            .build()
            .unwrap();
        let mut sampler: Box<dyn GenealogySampler> =
            session.make_sampler(config.initial_theta).unwrap();
        assert_eq!(sampler.strategy(), strategy.name());
        let info = sampler.chain_info();
        assert_eq!(info.burn_in_draws, 16);
        assert_eq!(info.total_draws, 80);
        // Drive the chain step by step through the trait object.
        let mut rng = Mt19937::new(13);
        sampler.begin(initial.clone()).unwrap();
        let mut last = None;
        while !sampler.is_done() {
            last = Some(sampler.step(&mut rng).unwrap());
        }
        let report = sampler.finish().unwrap();
        assert_eq!(last.unwrap().draws_done, 80);
        assert_eq!(report.counters.draws, 80);
        assert_eq!(report.samples.len(), 64);
        assert_eq!(report.trace.len(), 80);
    }
    drop(session);
}

/// Events recorded by the observer test, in arrival order.
#[derive(Debug, Clone, PartialEq)]
enum Event {
    ChainStart { strategy: String, total_draws: usize },
    BurnIn { draws_done: usize },
    Iteration { draws_done: usize },
    ChainEnd { draws: usize },
    Em { iteration: usize },
}

#[derive(Clone)]
struct Recorder(Arc<Mutex<Vec<Event>>>);

impl RunObserver for Recorder {
    fn on_chain_start(&mut self, info: &ChainInfo) {
        self.0.lock().unwrap().push(Event::ChainStart {
            strategy: info.strategy.to_string(),
            total_draws: info.total_draws,
        });
    }

    fn on_burn_in_progress(&mut self, draws_done: usize, _burn_in_total: usize) {
        self.0.lock().unwrap().push(Event::BurnIn { draws_done });
    }

    fn on_iteration(&mut self, step: &StepReport) {
        self.0.lock().unwrap().push(Event::Iteration { draws_done: step.draws_done });
    }

    fn on_em_update(&mut self, update: &EmUpdate) {
        self.0.lock().unwrap().push(Event::Em { iteration: update.iteration });
    }

    fn on_chain_end(&mut self, report: &RunReport) {
        self.0.lock().unwrap().push(Event::ChainEnd { draws: report.counters.draws });
    }
}

#[test]
fn observers_receive_the_expected_event_sequence() {
    let alignment = simulated_alignment(123, 4, 40);
    let config = MpcgsConfig {
        initial_theta: 1.0,
        em_iterations: 2,
        proposals_per_iteration: 4,
        draws_per_iteration: 4,
        burn_in_draws: 8,
        sample_draws: 16,
        backend: Backend::Serial,
        ..MpcgsConfig::default()
    };
    let events = Arc::new(Mutex::new(Vec::new()));
    let mut session = Session::builder()
        .alignment(alignment)
        .config(config)
        .observe(Recorder(events.clone()))
        .build()
        .unwrap();
    let mut rng = Mt19937::new(17);
    let estimate = session.run(&mut rng).unwrap();
    assert_eq!(estimate.iterations.len(), 2);

    // Each EM round: 24 draws at 4 per iteration = 6 kernel iterations, the
    // first two of which end inside burn-in.
    let expected_per_round = |total: usize| {
        let mut expected = vec![Event::ChainStart { strategy: "gmh".into(), total_draws: total }];
        for i in 1..=6usize {
            let draws_done = i * 4;
            if draws_done <= 8 {
                expected.push(Event::BurnIn { draws_done });
            }
            expected.push(Event::Iteration { draws_done });
        }
        expected.push(Event::ChainEnd { draws: total });
        expected
    };
    let mut expected = Vec::new();
    for round in 0..2usize {
        expected.extend(expected_per_round(24));
        expected.push(Event::Em { iteration: round });
    }
    assert_eq!(*events.lock().unwrap(), expected);
}
