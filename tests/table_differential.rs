//! Differential gate on the columnar genealogy port (`phylo::tables`).
//!
//! Randomized op tapes — proposals with accept/reject, replica swaps,
//! copy-on-write snapshots/restores, retiming, checkpoint round-trips — are
//! replayed against the columnar `GeneTree` and the legacy pointer arena in
//! lockstep, requiring bit-identical node records after every op and
//! bit-identical log-likelihoods and serialized checkpoint documents at
//! checkpoints (see `tests/harness/diff.rs`).
//!
//! The default sweep replays ≥ 10 000 op steps. `MPCGS_DIFF_TAPES` scales
//! the tape count (CI smoke runs 200); on failure the shrunk repro tape is
//! written to `MPCGS_REPRO_PATH` (default `target/diff-repro-tape.txt`) so
//! CI can upload it as an artifact.

#[path = "harness/mod.rs"]
mod harness;

use harness::diff::{replay, Op, Sabotage, Tape};
use harness::CaseDriver;
use std::sync::atomic::{AtomicUsize, Ordering};

const OPS_PER_TAPE: usize = 260;
const DEFAULT_TAPES: usize = 48;

fn tape_budget() -> usize {
    std::env::var("MPCGS_DIFF_TAPES").ok().and_then(|v| v.parse().ok()).unwrap_or(DEFAULT_TAPES)
}

fn repro_path() -> std::path::PathBuf {
    std::env::var_os("MPCGS_REPRO_PATH")
        .map(Into::into)
        .unwrap_or_else(|| std::path::PathBuf::from("target/diff-repro-tape.txt"))
}

#[test]
fn differential_tapes_replay_bit_identical() {
    let tapes = tape_budget();
    let steps = AtomicUsize::new(0);
    let driver = CaseDriver::new("table-differential", 0xD1FF).cases(tapes);
    let failure = driver.run_collect(
        |rng| Tape::generate(rng, 8, 3, OPS_PER_TAPE),
        |tape| {
            let executed = replay(tape, Sabotage::None)?;
            steps.fetch_add(executed, Ordering::Relaxed);
            Ok(())
        },
    );
    if let Some(failure) = failure {
        let path = repro_path();
        if let Some(parent) = path.parent() {
            let _ = std::fs::create_dir_all(parent);
        }
        let _ = std::fs::write(&path, failure.shrunk.to_repro_text());
        panic!(
            "representations diverged (case {}): {}\nshrunk tape ({} ops) written to {}",
            failure.case_index,
            failure.error,
            failure.shrunk.ops.len(),
            path.display(),
        );
    }
    let total = steps.load(Ordering::Relaxed);
    assert!(total >= tapes.min(DEFAULT_TAPES) * OPS_PER_TAPE, "sweep executed only {total} steps");
    if tapes >= DEFAULT_TAPES {
        // The acceptance bar of the port: at least 10k replayed steps.
        assert!(total >= 10_000, "default sweep must replay >= 10k steps, got {total}");
    }
}

#[test]
fn forced_failure_shrinks_to_a_minimal_tape() {
    // Sabotage the legacy mirror with a 2^-40 relative retiming error — far
    // below any tolerance, caught only by bitwise comparison — and require
    // the driver to (a) catch it and (b) shrink the repro to a single op.
    let driver = CaseDriver::new("table-differential-sabotage", 0x5AB0).cases(8);
    let failure = driver
        .run_collect(
            |rng| Tape::generate(rng, 6, 2, 120),
            |tape| replay(tape, Sabotage::PerturbRetime).map(|_| ()),
        )
        .expect("the sabotaged mirror must be caught by the bitwise gate");
    assert_eq!(
        failure.shrunk.ops.len(),
        1,
        "shrinking should isolate the sabotaged op exactly; got {:?}",
        failure.shrunk.ops
    );
    assert!(
        matches!(failure.shrunk.ops[0], Op::Retime(_)),
        "the minimal tape must be the sabotaged Retime, got {:?}",
        failure.shrunk.ops[0]
    );
    assert!(failure.error.contains("time bits"), "unexpected failure mode: {}", failure.error);
    // The shrunk tape still fails stand-alone (op seeds travel with ops).
    assert!(replay(&failure.shrunk, Sabotage::PerturbRetime).is_err());
    // …and the honest replay of the same tape passes.
    replay(&failure.shrunk, Sabotage::None).unwrap();
}

#[test]
fn snapshots_at_the_view_layer_are_o1() {
    // Acceptance criterion: GeneTree::clone (the snapshot path every sampler
    // layer uses — proposals, swap read-back, ChainSnapshot export) performs
    // no per-node copying, measured by the CoW op counters on a
    // sampler-sized tree.
    use mcmc::rng::Mt19937;
    use phylo::tables::cow_stats;

    let tree = coalescent::CoalescentSimulator::constant(1.0)
        .unwrap()
        .simulate(&mut Mt19937::new(7), 512)
        .unwrap();
    let before = cow_stats();
    let snapshots: Vec<phylo::GeneTree> = (0..64).map(|_| tree.clone()).collect();
    let delta = cow_stats().since(&before);
    assert_eq!(delta.snapshots, 64);
    assert_eq!(delta.slab_allocs, 0, "snapshots must not allocate slabs");
    assert_eq!(delta.slab_cow_clones, 0, "snapshots must not copy node data");
    drop(snapshots);

    // Divergence after the snapshots are gone costs nothing either — the
    // storage is unshared again.
    let mut tree = tree;
    let before = cow_stats();
    let root = tree.root();
    tree.set_time(root, tree.time(root) + 1.0);
    let delta = cow_stats().since(&before);
    assert_eq!(delta.slab_cow_clones, 0, "unshared mutation must be in place");
}
