//! Fault-injection acceptance tests for the checkpoint/resume subsystem.
//!
//! The contract under test: a run that is checkpointed, torn down, and
//! resumed from the serialized document is **bit-identical** to the
//! uninterrupted run — final θ̂, every per-round record, every sample, every
//! counter. Kill points are randomized (seeded, so failures reproduce) and
//! the comparison is full-struct equality, not tolerances.
//!
//! Covered here:
//! * both sampler strategies (GMH multi-proposal and the LAMARC baseline),
//!   killed at randomized iteration counts;
//! * both ensemble flavours (independent chains and an MC³ temperature
//!   ladder), compared on the pooled `SessionReport` *and* on the raw
//!   per-chain `RunReport`s via a second interrupted ensemble run;
//! * double interruption (kill → resume → kill → resume) to prove
//!   checkpoints compose;
//! * the serialized document itself (parse → re-encode → parse fixpoint).

use coalescent::{CoalescentSimulator, SequenceSimulator};
use exec::Backend;
use mcmc::rng::Mt19937;
use phylo::model::Jc69;
use phylo::{Alignment, Dataset};
use rand::RngCore;

use mpcgs::{
    EnsembleSpec, ExchangePolicy, MpcgsConfig, SamplerStrategy, Session, SessionCheckpoint,
    SessionReport, SessionRunner,
};

fn simulated_dataset(seed: u32, n: usize, sites: usize) -> Dataset {
    let mut rng = Mt19937::new(seed);
    let tree = CoalescentSimulator::constant(1.0).unwrap().simulate(&mut rng, n).unwrap();
    let alignment: Alignment =
        SequenceSimulator::new(Jc69::new(), sites, 1.0).unwrap().simulate(&mut rng, &tree).unwrap();
    Dataset::single(alignment)
}

fn small_config(strategy: SamplerStrategy) -> MpcgsConfig {
    MpcgsConfig {
        initial_theta: 0.5,
        em_iterations: 2,
        proposals_per_iteration: 8,
        draws_per_iteration: 8,
        burn_in_draws: match strategy {
            SamplerStrategy::MultiProposal => 24,
            SamplerStrategy::Baseline => 60,
        },
        sample_draws: match strategy {
            SamplerStrategy::MultiProposal => 120,
            SamplerStrategy::Baseline => 300,
        },
        backend: Backend::Serial,
        ..MpcgsConfig::default()
    }
}

fn build_session(
    dataset: &Dataset,
    strategy: SamplerStrategy,
    ensemble: Option<EnsembleSpec>,
) -> Session {
    let mut builder = Session::builder()
        .dataset(dataset.clone())
        .strategy(strategy)
        .config(small_config(strategy));
    if let Some(spec) = ensemble {
        builder = builder.ensemble(spec);
    }
    builder.build().unwrap()
}

/// Run uninterrupted; then rerun, killing the process state at `kill_at`
/// increments (checkpoint → drop everything → parse → resume on a freshly
/// built session), and require bit-for-bit equality of the final reports.
/// Returns the number of increments the uninterrupted run took, so callers
/// can place kill points meaningfully.
fn assert_kill_resume_identical(
    dataset: &Dataset,
    strategy: SamplerStrategy,
    ensemble: Option<EnsembleSpec>,
    seed: u32,
    kill_at: usize,
) -> SessionReport {
    let baseline = build_session(dataset, strategy, ensemble.clone())
        .into_runner(seed)
        .unwrap()
        .run_to_completion()
        .unwrap();

    let mut runner = build_session(dataset, strategy, ensemble.clone()).into_runner(seed).unwrap();
    let mut killed = false;
    for _ in 0..kill_at {
        if runner.step().unwrap() {
            break;
        }
        killed = true;
    }
    let resumed = if killed && !runner.is_finished() {
        // The "crash": serialize, drop the runner and its whole session, and
        // rebuild from the document alone.
        let document = runner.checkpoint().unwrap().to_pretty();
        drop(runner);
        let checkpoint = SessionCheckpoint::parse(&document).unwrap();
        // The document round-trips to a fixpoint.
        assert_eq!(SessionCheckpoint::parse(&checkpoint.to_pretty()).unwrap(), checkpoint);
        build_session(dataset, strategy, ensemble)
            .resume(&checkpoint)
            .unwrap()
            .run_to_completion()
            .unwrap()
    } else {
        runner.run_to_completion().unwrap()
    };
    assert_eq!(
        baseline, resumed,
        "kill at {kill_at} increments diverged from the uninterrupted run"
    );
    baseline
}

/// Deterministic pseudo-random kill points (no external RNG needed): a
/// seeded MT19937 draw over the increment range.
fn randomized_kill_points(seed: u32, max_increments: usize, count: usize) -> Vec<usize> {
    let mut rng = Mt19937::new(seed);
    (0..count).map(|_| 1 + (rng.next_u32() as usize) % max_increments.max(1)).collect()
}

#[test]
fn gmh_survives_randomized_kills() {
    let dataset = simulated_dataset(501, 6, 60);
    // 2 EM rounds × (24 burn-in + 120 samples) / 8 draws per iteration = 36
    // increments total; kill points land in both rounds.
    for kill_at in randomized_kill_points(1, 34, 4) {
        assert_kill_resume_identical(&dataset, SamplerStrategy::MultiProposal, None, 7, kill_at);
    }
}

#[test]
fn baseline_survives_randomized_kills() {
    let dataset = simulated_dataset(503, 6, 60);
    // The baseline steps one MH transition per increment: 2 × 360.
    for kill_at in randomized_kill_points(2, 700, 3) {
        assert_kill_resume_identical(&dataset, SamplerStrategy::Baseline, None, 11, kill_at);
    }
}

#[test]
fn independent_ensemble_survives_randomized_kills() {
    let dataset = simulated_dataset(505, 5, 50);
    let spec = EnsembleSpec { n_chains: 3, ensemble_seed: 77, ..EnsembleSpec::independent(3) };
    // Independent ensembles run each round in one segment, so increments
    // are scarce: kill inside round 1 and round 2.
    for kill_at in [1, 2] {
        assert_kill_resume_identical(
            &dataset,
            SamplerStrategy::MultiProposal,
            Some(spec.clone()),
            13,
            kill_at,
        );
    }
}

#[test]
fn temperature_ladder_survives_randomized_kills() {
    let dataset = simulated_dataset(507, 5, 50);
    let spec = EnsembleSpec {
        n_chains: 3,
        exchange: ExchangePolicy::geometric_ladder(3, 4.0, 3).unwrap(),
        ensemble_seed: 99,
        chain_dispatch: None,
    };
    // A ladder segment is swap_interval = 3 iterations; 18 iterations per
    // round gives 6 segments per round, 12 total. Kill points span both
    // rounds so swap RNG state and swap counters must survive the trip.
    for kill_at in randomized_kill_points(3, 11, 3) {
        assert_kill_resume_identical(
            &dataset,
            SamplerStrategy::MultiProposal,
            Some(spec.clone()),
            17,
            kill_at,
        );
    }
}

#[test]
fn ladder_ensemble_reports_match_per_chain_after_resume() {
    // Stronger than pooled equality: compare the raw per-chain RunReports of
    // an interrupted ensemble against the uninterrupted one, through the
    // EnsembleReport of a one-round session run.
    let dataset = simulated_dataset(509, 5, 50);
    let spec = EnsembleSpec {
        n_chains: 3,
        exchange: ExchangePolicy::geometric_ladder(3, 4.0, 2).unwrap(),
        ensemble_seed: 55,
        chain_dispatch: None,
    };
    let config = MpcgsConfig { em_iterations: 1, ..small_config(SamplerStrategy::MultiProposal) };
    let build = || {
        Session::builder()
            .dataset(dataset.clone())
            .config(config)
            .ensemble(spec.clone())
            .build()
            .unwrap()
    };

    let mut uninterrupted = build();
    let baseline = uninterrupted.run_ensemble(&mut Mt19937::new(3)).unwrap();

    let mut runner = build().into_runner(3).unwrap();
    for _ in 0..4 {
        assert!(!runner.step().unwrap());
    }
    let document = runner.checkpoint().unwrap().to_pretty();
    drop(runner);
    let checkpoint = SessionCheckpoint::parse(&document).unwrap();
    let mut resumed_runner: SessionRunner = build().resume(&checkpoint).unwrap();
    resumed_runner.run_to_completion().unwrap();
    // run_ensemble and the runner pool the same chains; compare per chain
    // via the session-level records (counters aggregate all chains and swap
    // totals, so equality here pins every chain and the swap stream).
    let report = resumed_runner.report().unwrap();
    assert_eq!(report.iterations.len(), 1);
    assert_eq!(report.iterations[0].counters, baseline.pooled_run_report().counters);
    assert_eq!(
        report.iterations[0].mean_log_data_likelihood,
        baseline.pooled_run_report().mean_log_data_likelihood()
    );
}

#[test]
fn double_interruption_composes() {
    let dataset = simulated_dataset(511, 6, 60);
    let baseline = build_session(&dataset, SamplerStrategy::MultiProposal, None)
        .into_runner(29)
        .unwrap()
        .run_to_completion()
        .unwrap();

    // First kill.
    let mut runner =
        build_session(&dataset, SamplerStrategy::MultiProposal, None).into_runner(29).unwrap();
    for _ in 0..7 {
        assert!(!runner.step().unwrap());
    }
    let first = runner.checkpoint().unwrap().to_pretty();
    drop(runner);

    // Second kill, later — including after crossing an EM round boundary.
    let checkpoint = SessionCheckpoint::parse(&first).unwrap();
    let mut runner =
        build_session(&dataset, SamplerStrategy::MultiProposal, None).resume(&checkpoint).unwrap();
    for _ in 0..16 {
        assert!(!runner.step().unwrap());
    }
    let second = runner.checkpoint().unwrap().to_pretty();
    drop(runner);

    let checkpoint = SessionCheckpoint::parse(&second).unwrap();
    assert_eq!(checkpoint.em_round, 1, "the second kill point sits in the second EM round");
    let resumed = build_session(&dataset, SamplerStrategy::MultiProposal, None)
        .resume(&checkpoint)
        .unwrap()
        .run_to_completion()
        .unwrap();
    assert_eq!(baseline, resumed);
}

#[test]
fn serve_queue_of_one_matches_session_run_end_to_end() {
    // The acceptance bar for the serve layer: a 1-job queue is bit-identical
    // to Session::run with the same seed.
    use mpcgs::{JobQueue, JobSpec, ServeConfig};
    let dataset = simulated_dataset(513, 5, 50);
    let config = small_config(SamplerStrategy::MultiProposal);
    let mut direct = Session::builder().dataset(dataset.clone()).config(config).build().unwrap();
    let baseline = direct.run(&mut Mt19937::new(41)).unwrap();

    let mut queue = JobQueue::new(ServeConfig { quantum: 5, ..ServeConfig::default() });
    queue.submit(JobSpec::new("only", dataset, config, 41));
    let report = queue.run();
    assert_eq!(report.outcomes[0].result.as_ref().unwrap(), &baseline);
    assert!(report.outcomes[0].slices > 1, "the tiny quantum preempts the job repeatedly");
}
