//! Exactness tests for the likelihood-cache counters across copy-on-write
//! snapshots.
//!
//! `GeneTree::clone()` is a CoW snapshot over the columnar `phylo::tables`
//! storage: clones alias slabs until a mutation diverges them. The engine's
//! generator memo and per-workspace [`EdgeMatrixCache`] key on tree *values*
//! (with a storage-pointer fast path), so aliasing must be invisible to the
//! cache accounting:
//!
//! * a snapshot of the cached generator is a cache **hit** with zero matrix
//!   consults — never a re-count of the edges it shares;
//! * a mutated snapshot is a cache **miss**, and its rebuild consults each
//!   edge exactly once, recomputing exactly the retimed edges;
//! * mutating a snapshot never corrupts the memo keyed to the original;
//! * at the sampler level the per-round counters obey the conservation
//!   identity `generator_cache_hits + full_prunes == iterations`, and taking
//!   a checkpoint (which snapshots every chain tree) after *every* runner
//!   step leaves all counters bit-identical to an uninterrupted run.
//!
//! The matrix-consult arithmetic leans on two facts pinned here: a full
//! (re)build consults every non-root edge exactly once
//! (`transition_matrices_cached`), and a dirty-path rescore consults exactly
//! the unique children of the dirty interior set (`mark_dirty_region`
//! dedups by child slot).

use std::collections::BTreeSet;

use coalescent::{CoalescentSimulator, SequenceSimulator};
use exec::Backend;
use lamarc::GenealogyProposer;
use mcmc::rng::Mt19937;
use phylo::likelihood::{effective_branch_length, LikelihoodEngine, TreeProposal};
use phylo::model::Jc69;
use phylo::tree::NodeId;
use phylo::{Alignment, Dataset, FelsensteinPruner, GeneTree};

use mpcgs::{EnsembleSpec, ExchangePolicy, MpcgsConfig, SamplerStrategy, Session, SessionReport};

/// A simulated genealogy plus sequences evolved along it, so the tree itself
/// can serve as the engine's generator.
fn sim_world(seed: u32, n_tips: usize, sites: usize) -> (GeneTree, Alignment) {
    let mut rng = Mt19937::new(seed);
    let tree = CoalescentSimulator::constant(1.0).unwrap().simulate(&mut rng, n_tips).unwrap();
    let alignment =
        SequenceSimulator::new(Jc69::new(), sites, 1.0).unwrap().simulate(&mut rng, &tree).unwrap();
    (tree, alignment)
}

/// The [`EdgeMatrixCache`] key of `node`'s parent edge (`None` at the root),
/// at the engine's default relative rate.
fn edge_key(tree: &GeneTree, node: NodeId) -> Option<u64> {
    tree.branch_length(node).map(|t| effective_branch_length(t, 1.0).to_bits())
}

/// Non-root nodes whose parent-edge key differs between the two trees — the
/// exact set a seeded workspace rebuild must recompute.
fn changed_edges(a: &GeneTree, b: &GeneTree) -> usize {
    (0..a.n_nodes()).filter(|&n| edge_key(a, n) != edge_key(b, n)).count()
}

/// The dirty interior set of an edit, exactly as the engine derives it: every
/// edited node plus all of its ancestors.
fn dirty_interior(tree: &GeneTree, edited: &[NodeId]) -> Vec<NodeId> {
    let mut mark = vec![false; tree.n_nodes()];
    for &edit in edited {
        let mut cursor = Some(edit);
        while let Some(node) = cursor {
            if !tree.is_tip(node) {
                if mark[node] {
                    break;
                }
                mark[node] = true;
            }
            cursor = tree.parent(node);
        }
    }
    (0..tree.n_nodes()).filter(|&n| mark[n]).collect()
}

/// Score `generator` with a single identity proposal (an empty edit adds no
/// dirty nodes and no matrix consults), so every counter in the evaluation
/// describes the generator workspace alone.
fn score(
    engine: &FelsensteinPruner<Jc69>,
    generator: &GeneTree,
) -> phylo::likelihood::BatchEvaluation {
    engine
        .log_likelihood_batch(
            Backend::Serial,
            generator,
            &[TreeProposal { tree: generator, edited: &[] }],
        )
        .unwrap()
}

#[test]
fn generator_memo_is_exact_across_cow_snapshots() {
    let (generator, alignment) = sim_world(8101, 6, 60);
    let engine = FelsensteinPruner::new(&alignment, Jc69::new());
    let n_internal = generator.n_internal();
    let n_edges = generator.n_nodes() - 1;

    // Cold build: one full prune, every edge recomputed exactly once.
    let cold = score(&engine, &generator);
    assert!(!cold.generator_cache_hit);
    assert_eq!(cold.nodes_full_pruned, n_internal);
    assert_eq!((cold.matrix_cache_hits, cold.matrix_cache_misses), (0, n_edges));

    // A CoW snapshot *is* the cached generator: the equality check rides the
    // shared-storage fast path, and no edge is consulted (in particular, the
    // aliased slabs are not re-counted as fresh hits).
    let alias = generator.clone();
    assert!(alias.tables().shares_storage_with(generator.tables()));
    let warm = score(&engine, &alias);
    assert!(warm.generator_cache_hit);
    assert_eq!(warm.nodes_full_pruned, 0);
    assert_eq!((warm.matrix_cache_hits, warm.matrix_cache_misses), (0, 0));
    assert_eq!(warm.generator_log_likelihood.to_bits(), cold.generator_log_likelihood.to_bits());

    // Mutate a snapshot: push the root deeper into the past. Exactly the two
    // edges below the root change; everything else keeps its slabs shared
    // with the cached tree.
    let mut mutated = generator.clone();
    let root = mutated.root();
    mutated.set_time(root, generator.time(root) * 1.5);
    let changed = changed_edges(&generator, &mutated);
    assert_eq!(changed, 2, "retiming the root touches exactly its two child edges");

    // The divergence stays on the snapshot's side of the CoW boundary: the
    // memo keyed to the original is untouched and still hits.
    let untouched = score(&engine, &generator);
    assert!(untouched.generator_cache_hit);
    assert_eq!((untouched.matrix_cache_hits, untouched.matrix_cache_misses), (0, 0));

    // The mutated snapshot must MISS — shared slabs are not a value match —
    // and its seeded rebuild consults each edge exactly once: the unchanged
    // edges hit, the two retimed edges recompute. No double counting in
    // either direction.
    let rebuilt = score(&engine, &mutated);
    assert!(!rebuilt.generator_cache_hit);
    assert_eq!(rebuilt.nodes_full_pruned, n_internal);
    assert_eq!(
        (rebuilt.matrix_cache_hits, rebuilt.matrix_cache_misses),
        (n_edges - changed, changed)
    );
    // The memo serves stored values, never approximations: the rebuilt
    // likelihood equals a cold engine's, bit for bit. Both sides go through
    // the batch path so the comparison isolates the memo — the reference
    // path would also drag in kernel-vs-reference rounding (FMA contraction
    // under runtime AVX2 dispatch), which is host-dependent and bounded by
    // tolerance elsewhere.
    let fresh = FelsensteinPruner::new(&alignment, Jc69::new());
    assert_eq!(
        rebuilt.generator_log_likelihood.to_bits(),
        score(&fresh, &mutated).generator_log_likelihood.to_bits()
    );
    // And against the reference scalar path, to kernel tolerance.
    assert!(
        (rebuilt.generator_log_likelihood - fresh.log_likelihood(&mutated).unwrap()).abs() < 1e-10
    );

    // And the memo is now keyed to the mutated tree.
    let rekeyed = score(&engine, &mutated);
    assert!(rekeyed.generator_cache_hit);
    assert_eq!((rekeyed.matrix_cache_hits, rekeyed.matrix_cache_misses), (0, 0));
}

#[test]
fn dirty_path_rescore_and_commit_count_each_edge_exactly_once() {
    let (generator, alignment) = sim_world(8103, 8, 60);
    let engine = FelsensteinPruner::new(&alignment, Jc69::new());
    let n_edges = generator.n_nodes() - 1;
    score(&engine, &generator); // warm the memo

    // A real proposal: clone-as-snapshot, then retime/rewire the target's
    // neighborhood — the exact snapshot-then-mutate sequence the samplers
    // perform every transition.
    let proposer = GenealogyProposer::new(1.0).unwrap();
    let mut rng = Mt19937::new(17);
    let target = proposer.sample_target(&generator, &mut rng);
    let (proposal, edited) = proposer.propose_with_edit(&generator, target, &mut rng);
    assert!(
        !proposal.tables().shares_storage_with(generator.tables()),
        "a mutated snapshot must not register as the same storage"
    );

    // Expected consults: the unique children of the dirty interior set, a
    // hit exactly when the proposal kept the edge's effective length (the
    // warm cache's keys describe the generator).
    let dirty = dirty_interior(&proposal, &edited);
    let mut consulted = BTreeSet::new();
    for &node in &dirty {
        let (a, b) = proposal.children(node).expect("dirty nodes are interior");
        consulted.insert(a);
        consulted.insert(b);
    }
    let want_hits =
        consulted.iter().filter(|&&c| edge_key(&proposal, c) == edge_key(&generator, c)).count();
    let want_misses = consulted.len() - want_hits;

    let eval = engine
        .log_likelihood_batch(
            Backend::Serial,
            &generator,
            &[TreeProposal { tree: &proposal, edited: &edited }],
        )
        .unwrap();
    assert!(eval.generator_cache_hit);
    assert_eq!(eval.nodes_repruned, dirty.len());
    assert_eq!((eval.matrix_cache_hits, eval.matrix_cache_misses), (want_hits, want_misses));

    // Commit-on-accept promotes exactly the dirty path and re-keys the memo
    // to the accepted tree…
    let committed = engine.commit_accepted(&generator, &proposal, &edited).unwrap();
    assert_eq!(committed, Some(dirty.len()));
    let hit = score(&engine, &proposal);
    assert!(hit.generator_cache_hit);
    assert_eq!((hit.matrix_cache_hits, hit.matrix_cache_misses), (0, 0));

    // …so the pre-accept generator — which still shares most slabs with the
    // accepted tree — is now a miss, and its rebuild reuses exactly the
    // unchanged edges. Aliasing earns no hit; value identity earns them all.
    let changed = changed_edges(&generator, &proposal);
    let back = score(&engine, &generator);
    assert!(!back.generator_cache_hit);
    assert_eq!((back.matrix_cache_hits, back.matrix_cache_misses), (n_edges - changed, changed));
}

fn simulated_dataset(seed: u32, n: usize, sites: usize) -> Dataset {
    let (_, alignment) = sim_world(seed, n, sites);
    Dataset::single(alignment)
}

fn small_config() -> MpcgsConfig {
    MpcgsConfig {
        initial_theta: 0.5,
        em_iterations: 2,
        proposals_per_iteration: 8,
        draws_per_iteration: 8,
        burn_in_draws: 24,
        sample_draws: 120,
        backend: Backend::Serial,
        ..MpcgsConfig::default()
    }
}

/// Every batch evaluation either reuses the memoised generator workspace or
/// pays one full prune of `n_internal` nodes — so at the sampler level,
/// per round and per pooled ensemble alike:
/// `generator_cache_hits + nodes_full_pruned / n_internal == iterations`.
/// A CoW bug that double-counted an aliased generator (or missed one) breaks
/// this identity immediately.
fn assert_cache_conservation(report: &SessionReport, n_tips: usize, label: &str) {
    let n_internal = n_tips - 1;
    let n_edges = 2 * n_tips - 2;
    for (round, iteration) in report.iterations.iter().enumerate() {
        let c = &iteration.counters;
        assert_eq!(
            c.nodes_full_pruned % n_internal,
            0,
            "{label} round {round}: full-prune node count is not a whole number of prunes"
        );
        let full_prunes = c.nodes_full_pruned / n_internal;
        assert_eq!(
            c.generator_cache_hits + full_prunes,
            c.iterations,
            "{label} round {round}: every iteration is exactly one hit or one full prune"
        );
        // Each full prune consults every edge exactly once; dirty-path
        // rescores only add consults on top.
        assert!(
            c.matrix_cache_hits + c.matrix_cache_misses >= full_prunes * n_edges,
            "{label} round {round}: fewer matrix consults than the full prunes alone require"
        );
        assert!(c.matrix_cache_hits > 0, "{label} round {round}: the edge memo never hit");
    }
}

#[test]
fn sampler_counters_satisfy_the_cache_conservation_identity() {
    let n_tips = 5;
    for (strategy, label) in
        [(SamplerStrategy::MultiProposal, "gmh"), (SamplerStrategy::Baseline, "baseline")]
    {
        let dataset = simulated_dataset(8105, n_tips, 50);
        let mut session = Session::builder()
            .dataset(dataset)
            .strategy(strategy)
            .config(small_config())
            .build()
            .unwrap();
        let report = session.run(&mut Mt19937::new(31)).unwrap();
        assert_cache_conservation(&report, n_tips, label);
        for iteration in &report.iterations {
            let c = &iteration.counters;
            match strategy {
                // GMH scores the whole proposal set in one batch per
                // iteration; the baseline scores one proposal per transition.
                SamplerStrategy::MultiProposal => {
                    assert_eq!(c.likelihood_evaluations, c.iterations * 8)
                }
                SamplerStrategy::Baseline => assert_eq!(c.likelihood_evaluations, c.iterations),
            }
        }
    }

    // The pooled ladder counters obey the same identity: swapped-in
    // generators (installed as CoW snapshots of a sibling chain's tree) are
    // full prunes, never spurious hits.
    let n_tips = 5;
    let dataset = simulated_dataset(8107, n_tips, 50);
    let mut session = Session::builder()
        .dataset(dataset)
        .strategy(SamplerStrategy::MultiProposal)
        .config(small_config())
        .ensemble(EnsembleSpec {
            n_chains: 3,
            exchange: ExchangePolicy::geometric_ladder(3, 4.0, 3).unwrap(),
            ensemble_seed: 99,
            chain_dispatch: None,
        })
        .build()
        .unwrap();
    let report = session.run(&mut Mt19937::new(37)).unwrap();
    assert_cache_conservation(&report, n_tips, "ladder");
    let swaps: usize = report.iterations.iter().map(|i| i.counters.swap_attempts).sum();
    assert!(swaps > 0, "the ladder config must actually attempt exchanges");
}

#[test]
fn checkpoint_snapshots_do_not_perturb_cache_accounting() {
    // A checkpoint snapshots every chain's tree and the engine's cached
    // generator (all CoW clones of live sampler state); the sampler then
    // keeps mutating the originals. Taking one after *every* runner step
    // must leave the run — every counter included — bit-identical to an
    // uninterrupted run.
    let dataset = simulated_dataset(8109, 5, 50);
    let spec = EnsembleSpec {
        n_chains: 3,
        exchange: ExchangePolicy::geometric_ladder(3, 4.0, 3).unwrap(),
        ensemble_seed: 55,
        chain_dispatch: None,
    };
    let build = || {
        Session::builder()
            .dataset(dataset.clone())
            .strategy(SamplerStrategy::MultiProposal)
            .config(small_config())
            .ensemble(spec.clone())
            .build()
            .unwrap()
    };

    let baseline = build().into_runner(43).unwrap().run_to_completion().unwrap();

    let mut runner = build().into_runner(43).unwrap();
    while !runner.step().unwrap() {
        if !runner.is_finished() {
            let _snapshot = runner.checkpoint().unwrap();
        }
    }
    let snapshotted = runner.run_to_completion().unwrap();
    assert_eq!(
        baseline, snapshotted,
        "mid-run snapshots changed the run (cache counters included)"
    );
    assert_cache_conservation(&snapshotted, 5, "snapshotted ladder");
}
