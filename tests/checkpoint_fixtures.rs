//! Golden-fixture tests for the `mpcgs-checkpoint/v1` document format.
//!
//! Two small checkpoint documents are committed under `tests/fixtures/`:
//! one mid-run single-chain GMH session and one mid-run MC³ temperature
//! ladder. The tests assert, without running a sampler first, that
//!
//! 1. each document still parses,
//! 2. parse → re-encode reproduces the committed bytes **exactly** (so any
//!    codec drift — field order, float formatting, a renamed key — fails
//!    immediately), and
//! 3. resuming a session from the committed document completes and is
//!    bit-identical to the uninterrupted run,
//!
//! which together pin the on-disk format across refactors of the tree
//! storage (the documents were generated before/alongside the columnar
//! `phylo::tables` port and must keep resuming unchanged).
//!
//! Regenerate with
//! `MPCGS_REGEN_FIXTURES=1 cargo test --test checkpoint_fixtures` after an
//! *intentional* format change, and say so in the commit message.

use coalescent::{CoalescentSimulator, SequenceSimulator};
use exec::Backend;
use mcmc::rng::Mt19937;
use phylo::likelihood::Kernel;
use phylo::model::Jc69;
use phylo::{Alignment, Dataset};

use mpcgs::{
    EnsembleSpec, ExchangePolicy, MpcgsConfig, SamplerStrategy, Session, SessionCheckpoint,
};

const GMH_FIXTURE: &str = "tests/fixtures/checkpoint_gmh_v1.json";
const LADDER_FIXTURE: &str = "tests/fixtures/checkpoint_ladder_v1.json";

fn simulated_dataset(seed: u32, n: usize, sites: usize) -> Dataset {
    let mut rng = Mt19937::new(seed);
    let tree = CoalescentSimulator::constant(1.0).unwrap().simulate(&mut rng, n).unwrap();
    let alignment: Alignment =
        SequenceSimulator::new(Jc69::new(), sites, 1.0).unwrap().simulate(&mut rng, &tree).unwrap();
    Dataset::single(alignment)
}

fn small_config() -> MpcgsConfig {
    MpcgsConfig {
        initial_theta: 0.5,
        em_iterations: 2,
        proposals_per_iteration: 8,
        draws_per_iteration: 8,
        burn_in_draws: 24,
        sample_draws: 120,
        backend: Backend::Serial,
        // Pinned: the committed bytes contain sampled likelihoods, and
        // Kernel::Auto resolves per host (AVX2+FMA contraction shifts the
        // low bits). Scalar makes the goldens host- and feature-independent.
        kernel: Kernel::Scalar,
        ..MpcgsConfig::default()
    }
}

/// The deterministic recipe behind each fixture: dataset seed, session
/// builder, runner seed, and the number of increments to take before
/// checkpointing.
struct FixtureRecipe {
    path: &'static str,
    dataset_seed: u32,
    ensemble: Option<EnsembleSpec>,
    runner_seed: u32,
    increments: usize,
}

fn recipes() -> Vec<FixtureRecipe> {
    vec![
        FixtureRecipe {
            path: GMH_FIXTURE,
            dataset_seed: 601,
            ensemble: None,
            runner_seed: 19,
            increments: 5,
        },
        FixtureRecipe {
            path: LADDER_FIXTURE,
            dataset_seed: 603,
            ensemble: Some(EnsembleSpec {
                n_chains: 3,
                exchange: ExchangePolicy::geometric_ladder(3, 4.0, 3).unwrap(),
                ensemble_seed: 99,
                chain_dispatch: None,
            }),
            runner_seed: 23,
            increments: 4,
        },
    ]
}

fn build_session(recipe: &FixtureRecipe) -> Session {
    let dataset = simulated_dataset(recipe.dataset_seed, 5, 50);
    let mut builder = Session::builder()
        .dataset(dataset)
        .strategy(SamplerStrategy::MultiProposal)
        .config(small_config());
    if let Some(spec) = &recipe.ensemble {
        builder = builder.ensemble(spec.clone());
    }
    builder.build().unwrap()
}

/// Produce the checkpoint document the fixture pins: run `increments` runner
/// steps, then serialize.
fn generate_document(recipe: &FixtureRecipe) -> String {
    let mut runner = build_session(recipe).into_runner(recipe.runner_seed).unwrap();
    for _ in 0..recipe.increments {
        assert!(!runner.step().unwrap(), "fixture kill point must sit mid-run");
    }
    runner.checkpoint().unwrap().to_pretty()
}

#[test]
fn golden_fixtures_reencode_byte_exact_and_resume() {
    if std::env::var_os("MPCGS_REGEN_FIXTURES").is_some() {
        std::fs::create_dir_all("tests/fixtures").unwrap();
        for recipe in recipes() {
            std::fs::write(recipe.path, generate_document(&recipe)).unwrap();
        }
    }
    for recipe in recipes() {
        let committed = std::fs::read_to_string(recipe.path)
            .unwrap_or_else(|e| panic!("missing fixture {} ({e}); see module docs", recipe.path));

        // 1. The document parses and declares the pinned format.
        let checkpoint = SessionCheckpoint::parse(&committed)
            .unwrap_or_else(|e| panic!("fixture {} no longer parses: {e}", recipe.path));

        // 2. Byte-exact re-encode: any codec drift fails here.
        assert_eq!(
            checkpoint.to_pretty(),
            committed,
            "fixture {} re-encodes differently — the checkpoint codec drifted",
            recipe.path
        );

        // 3. The current code still produces these exact bytes…
        assert_eq!(
            generate_document(&recipe),
            committed,
            "fixture {} is no longer what a fresh run checkpoints — \
             sampler or codec behaviour drifted",
            recipe.path
        );

        // 4. …and resuming from the committed document is bit-identical to
        // the uninterrupted run.
        let baseline = build_session(&recipe)
            .into_runner(recipe.runner_seed)
            .unwrap()
            .run_to_completion()
            .unwrap();
        let resumed =
            build_session(&recipe).resume(&checkpoint).unwrap().run_to_completion().unwrap();
        assert_eq!(baseline, resumed, "fixture {} resume diverged", recipe.path);
    }
}
