//! End-to-end integration: simulate data (coalescent + sequence evolution),
//! write and re-read it through the PHYLIP layer, run the full session-based
//! estimator on it, and check the output is a sane θ estimate. This exercises
//! every crate in the workspace along the same path the `mpcgs` binary takes.

use coalescent::{CoalescentSimulator, SequenceSimulator};
use exec::Backend;
use mcmc::rng::Mt19937;
use phylo::io::phylip::{parse_phylip, write_phylip};
use phylo::likelihood::ExecutionMode;
use phylo::model::Jc69;

use mpcgs::{MpcgsConfig, Session};

fn small_config() -> MpcgsConfig {
    MpcgsConfig {
        initial_theta: 0.5,
        em_iterations: 2,
        proposals_per_iteration: 8,
        draws_per_iteration: 8,
        burn_in_draws: 100,
        sample_draws: 800,
        backend: Backend::Serial,
        ..MpcgsConfig::default()
    }
}

#[test]
fn simulate_roundtrip_estimate() {
    let mut rng = Mt19937::new(20_160_401);
    let true_theta = 1.0;
    let tree = CoalescentSimulator::constant(true_theta).unwrap().simulate(&mut rng, 8).unwrap();
    let alignment =
        SequenceSimulator::new(Jc69::new(), 120, 1.0).unwrap().simulate(&mut rng, &tree).unwrap();

    // Round-trip the data through the PHYLIP format, as the CLI does.
    let text = write_phylip(&alignment);
    let reread = parse_phylip(&text).unwrap();
    assert_eq!(reread, alignment);

    let mut session = Session::builder().alignment(reread).config(small_config()).build().unwrap();
    let estimate = session.run(&mut rng).unwrap();
    assert_eq!(estimate.iterations.len(), 2);
    assert!(
        estimate.theta > 0.02 && estimate.theta < 20.0,
        "theta estimate {} is not in a plausible range for data at theta = {true_theta}",
        estimate.theta
    );
    // The EM loop must chain its driving values.
    assert!((estimate.iterations[1].driving_theta - estimate.iterations[0].estimate).abs() < 1e-12);
    // Work counters are consistent with the configuration.
    let counters = estimate.iterations[0].counters;
    assert_eq!(counters.draws, 900);
    assert_eq!(counters.proposals_generated, counters.iterations * 8);
}

#[test]
fn parallel_likelihood_and_rayon_backend_agree_with_serial() {
    let mut rng = Mt19937::new(77);
    let tree = CoalescentSimulator::constant(1.0).unwrap().simulate(&mut rng, 6).unwrap();
    let alignment =
        SequenceSimulator::new(Jc69::new(), 100, 1.0).unwrap().simulate(&mut rng, &tree).unwrap();

    let mut serial_session = Session::builder()
        .alignment(alignment.clone())
        .config(small_config())
        .execution(ExecutionMode::Serial)
        .build()
        .unwrap();
    let mut parallel_session = Session::builder()
        .alignment(alignment)
        .config(MpcgsConfig { backend: Backend::Rayon, ..small_config() })
        .execution(ExecutionMode::Parallel)
        .build()
        .unwrap();

    let mut rng_a = Mt19937::new(5);
    let serial = serial_session.run(&mut rng_a).unwrap();
    let mut rng_b = Mt19937::new(5);
    let parallel = parallel_session.run(&mut rng_b).unwrap();

    // Identical host RNG seeds and identical per-proposal streams: the two
    // runs are deterministic replicas, so the estimates must agree exactly.
    assert!(
        (serial.theta - parallel.theta).abs() < 1e-9,
        "serial {} vs parallel {}",
        serial.theta,
        parallel.theta
    );
}

#[test]
fn cli_binary_runs_on_phylip_files() {
    // Build the same artefacts the CLI consumes and run the binary itself,
    // single-locus first, then multi-locus with a --backend override.
    let mut rng = Mt19937::new(3);
    let tree = CoalescentSimulator::constant(1.0).unwrap().simulate(&mut rng, 6).unwrap();
    let alignment =
        SequenceSimulator::new(Jc69::new(), 80, 1.0).unwrap().simulate(&mut rng, &tree).unwrap();
    let second =
        SequenceSimulator::new(Jc69::new(), 60, 1.0).unwrap().simulate(&mut rng, &tree).unwrap();
    let dir = std::env::temp_dir().join("mpcgs_integration_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("toy.phy");
    std::fs::write(&path, write_phylip(&alignment)).unwrap();
    let path2 = dir.join("toy2.phy");
    std::fs::write(&path2, write_phylip(&second)).unwrap();

    // The binary belongs to the `mpcgs` crate, not this integration crate, so
    // `CARGO_BIN_EXE_*` is not available here; run it through cargo instead.
    let cargo = std::env::var("CARGO").unwrap_or_else(|_| "cargo".into());
    let output = std::process::Command::new(&cargo)
        .args([
            "run",
            "-q",
            "-p",
            "mpcgs",
            "--bin",
            "mpcgs",
            "--",
            path.to_str().unwrap(),
            "0.5",
            "--samples",
            "400",
            "--burn-in",
            "50",
            "--proposals",
            "8",
            "--em",
            "1",
            "--backend",
            "serial",
        ])
        .output()
        .expect("the mpcgs binary runs");
    assert!(output.status.success(), "stderr: {}", String::from_utf8_lossy(&output.stderr));
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(stdout.contains("final estimate of theta"), "unexpected output:\n{stdout}");

    // Multi-locus invocation: two PHYLIP files, baseline strategy.
    let multi = std::process::Command::new(&cargo)
        .args([
            "run",
            "-q",
            "-p",
            "mpcgs",
            "--bin",
            "mpcgs",
            "--",
            path.to_str().unwrap(),
            path2.to_str().unwrap(),
            "0.5",
            "--samples",
            "300",
            "--burn-in",
            "50",
            "--em",
            "1",
            "--strategy",
            "baseline",
            "--backend",
            "serial",
        ])
        .output()
        .expect("the mpcgs binary runs");
    assert!(multi.status.success(), "stderr: {}", String::from_utf8_lossy(&multi.stderr));
    let stdout = String::from_utf8_lossy(&multi.stdout);
    assert!(stdout.contains("2 locus/loci"), "unexpected output:\n{stdout}");
    assert!(stdout.contains("final estimate of theta"), "unexpected output:\n{stdout}");

    // Bad invocations fail cleanly.
    let bad = std::process::Command::new(&cargo)
        .args(["run", "-q", "-p", "mpcgs", "--bin", "mpcgs", "--", "missing.phy"])
        .output()
        .unwrap();
    assert!(!bad.status.success());
}
