//! The central claim of the paper, as an integration test: the multi-proposal
//! (Generalized Metropolis–Hastings) sampler targets the same posterior as
//! the conventional single-proposal sampler, so their post-burn-in sampled
//! genealogy distributions must agree — while the multi-proposal sampler
//! exposes its work as parallelisable proposal batches. Both run through the
//! same `Session` facade, differing only in the configured strategy.

use coalescent::{CoalescentSimulator, SequenceSimulator};
use exec::Backend;
use mcmc::diagnostics::{gelman_rubin, Summary};
use mcmc::rng::Mt19937;
use phylo::model::Jc69;
use phylo::Alignment;

use mpcgs::{ModelSpec, MpcgsConfig, RunReport, SamplerStrategy, Session};

fn simulated_alignment(seed: u32) -> Alignment {
    let mut rng = Mt19937::new(seed);
    let tree = CoalescentSimulator::constant(1.0).unwrap().simulate(&mut rng, 8).unwrap();
    SequenceSimulator::new(Jc69::new(), 150, 1.0).unwrap().simulate(&mut rng, &tree).unwrap()
}

fn run_chain(
    alignment: &Alignment,
    strategy: SamplerStrategy,
    model: ModelSpec,
    config: MpcgsConfig,
    seed: u32,
) -> RunReport {
    let mut rng = Mt19937::new(seed);
    Session::builder()
        .alignment(alignment.clone())
        .strategy(strategy)
        .model(model)
        .config(config)
        .build()
        .unwrap()
        .run_chain(&mut rng)
        .unwrap()
}

#[test]
fn sampled_distributions_agree_between_the_two_samplers() {
    let alignment = simulated_alignment(2_017);
    let config = MpcgsConfig {
        initial_theta: 1.0,
        proposals_per_iteration: 8,
        draws_per_iteration: 8,
        burn_in_draws: 300,
        sample_draws: 2_500,
        backend: Backend::Serial,
        ..MpcgsConfig::default()
    };

    let baseline =
        run_chain(&alignment, SamplerStrategy::Baseline, ModelSpec::F81Empirical, config, 1);
    let gmh =
        run_chain(&alignment, SamplerStrategy::MultiProposal, ModelSpec::F81Empirical, config, 2);

    let base_depths: Vec<f64> = baseline.samples.iter().map(|s| s.intervals.depth()).collect();
    let gmh_depths: Vec<f64> = gmh.samples.iter().map(|s| s.intervals.depth()).collect();
    let base_lengths: Vec<f64> =
        baseline.samples.iter().map(|s| s.intervals.total_branch_length()).collect();
    let gmh_lengths: Vec<f64> =
        gmh.samples.iter().map(|s| s.intervals.total_branch_length()).collect();

    // Means of the two key tree statistics agree within 20%.
    let base_depth_mean = Summary::of(&base_depths).unwrap().mean;
    let gmh_depth_mean = Summary::of(&gmh_depths).unwrap().mean;
    assert!(
        (gmh_depth_mean / base_depth_mean - 1.0).abs() < 0.2,
        "tree depth means disagree: baseline {base_depth_mean} vs GMH {gmh_depth_mean}"
    );
    let base_len_mean = Summary::of(&base_lengths).unwrap().mean;
    let gmh_len_mean = Summary::of(&gmh_lengths).unwrap().mean;
    assert!(
        (gmh_len_mean / base_len_mean - 1.0).abs() < 0.2,
        "tree length means disagree: baseline {base_len_mean} vs GMH {gmh_len_mean}"
    );

    // Treat the two samplers as two "chains" over the same statistic: the
    // Gelman-Rubin statistic must not flag a disagreement.
    let r_hat = gelman_rubin(&[base_depths, gmh_depths]).unwrap();
    assert!(r_hat < 1.25, "R-hat between the samplers is {r_hat}");

    // The data-likelihood levels explored must also be comparable.
    let base_lik_mean =
        Summary::of(&baseline.samples.iter().map(|s| s.log_data_likelihood).collect::<Vec<_>>())
            .unwrap()
            .mean;
    let gmh_lik_mean =
        Summary::of(&gmh.samples.iter().map(|s| s.log_data_likelihood).collect::<Vec<_>>())
            .unwrap()
            .mean;
    assert!(
        (base_lik_mean - gmh_lik_mean).abs() < 0.05 * base_lik_mean.abs(),
        "mean log-likelihood levels disagree: {base_lik_mean} vs {gmh_lik_mean}"
    );
}

#[test]
fn multi_proposal_work_is_batched_for_parallel_execution() {
    // The structural property that enables the paper's parallelisation: the
    // number of likelihood evaluations per output draw is fixed by N and does
    // not depend on acceptance behaviour, so the work arrives in
    // embarrassingly parallel batches of N.
    let alignment = simulated_alignment(2_018);
    for n in [2usize, 8, 16] {
        let config = MpcgsConfig {
            initial_theta: 1.0,
            proposals_per_iteration: n,
            draws_per_iteration: n,
            burn_in_draws: 0,
            sample_draws: 160,
            backend: Backend::Serial,
            ..MpcgsConfig::default()
        };
        let run = run_chain(
            &alignment,
            SamplerStrategy::MultiProposal,
            ModelSpec::Jc69,
            config,
            n as u32,
        );
        assert_eq!(run.counters.iterations, 160 / n);
        assert_eq!(run.counters.likelihood_evaluations, run.counters.iterations * n);
        assert_eq!(run.counters.draws, 160);
    }
}
