//! Integration tests of the simulated accelerator backend
//! (`Backend::Device`, `--features device`).
//!
//! The load-bearing contract: the device backend changes *where and in what
//! order batches are accounted*, never the arithmetic — so every likelihood,
//! every `RunReport` and every pooled ensemble result must be **bit
//! identical** to `Backend::Serial`, while the run additionally carries a
//! `DeviceReport` cost breakdown whose accounting reproduces the paper's
//! qualitative speedup shapes.

#![cfg(feature = "device")]

use coalescent::{CoalescentSimulator, SequenceSimulator};
use exec::{Backend, DeviceReport, DeviceSpec, Queue};
use lamarc::GenealogyProposer;
use mcmc::rng::Mt19937;
use mpcgs::ensemble::{EnsembleSpec, ExchangePolicy};
use mpcgs::{MpcgsConfig, SamplerStrategy, Session};
use phylo::likelihood::{LikelihoodEngine, MultiLocusEngine};
use phylo::model::Jc69;
use phylo::{Alignment, Dataset, GeneTree, Locus, TreeProposal};

fn simulate(rng: &mut Mt19937, n: usize, sites: usize) -> (Alignment, GeneTree) {
    let tree = CoalescentSimulator::constant(1.0).unwrap().simulate(rng, n).unwrap();
    let alignment =
        SequenceSimulator::new(Jc69::new(), sites, 1.0).unwrap().simulate(rng, &tree).unwrap();
    (alignment, tree)
}

/// A dataset of `n_loci` independently simulated loci over one shared set of
/// individuals, plus a genealogy over those individuals.
fn multi_locus_dataset(seed: u32, n_loci: usize, n: usize) -> (Dataset, GeneTree) {
    let mut rng = Mt19937::new(seed);
    let (first, tree) = simulate(&mut rng, n, 40 + 17 * n_loci);
    let names: Vec<String> = first.names().iter().map(|s| s.to_string()).collect();
    let mut loci = vec![Locus::new("locus0", first)];
    for l in 1..n_loci {
        let tree_l = CoalescentSimulator::constant(1.0)
            .unwrap()
            .simulate_labelled(&mut rng, &names)
            .unwrap();
        let alignment = SequenceSimulator::new(Jc69::new(), 30 + 13 * l, 1.0)
            .unwrap()
            .simulate(&mut rng, &tree_l)
            .unwrap();
        loci.push(Locus::new(format!("locus{l}"), alignment));
    }
    (Dataset::new(loci).unwrap(), tree)
}

fn small_config(backend: Backend) -> MpcgsConfig {
    MpcgsConfig {
        initial_theta: 1.0,
        em_iterations: 1,
        proposals_per_iteration: 8,
        draws_per_iteration: 8,
        burn_in_draws: 30,
        sample_draws: 120,
        backend,
        ..MpcgsConfig::default()
    }
}

#[test]
fn device_grid_is_bit_identical_to_serial_across_loci_and_proposals() {
    // The full (locus × proposal) matrix of the flattened grid dispatch:
    // 1–4 loci × 1–8 proposals, device vs serial, exact equality.
    let device = Backend::device(DeviceSpec::kepler());
    let proposer = GenealogyProposer::new(1.0).unwrap();
    for n_loci in 1..=4usize {
        let (dataset, tree) = multi_locus_dataset(500 + n_loci as u32, n_loci, 6);
        let serial_engine = MultiLocusEngine::new(&dataset, |_| Jc69::new());
        let device_engine = MultiLocusEngine::new(&dataset, |_| Jc69::new());
        let mut rng = Mt19937::new(9_000 + n_loci as u32);
        for n_proposals in 1..=8usize {
            let edits: Vec<(GeneTree, Vec<usize>)> = (0..n_proposals)
                .map(|_| {
                    let phi = proposer.sample_target(&tree, &mut rng);
                    proposer.propose_with_edit(&tree, phi, &mut rng)
                })
                .collect();
            let views: Vec<TreeProposal<'_>> =
                edits.iter().map(|(t, e)| TreeProposal { tree: t, edited: e }).collect();
            let a = serial_engine.log_likelihood_batch(Backend::Serial, &tree, &views).unwrap();
            let b = device_engine.log_likelihood_batch(device, &tree, &views).unwrap();
            assert_eq!(
                a.log_likelihoods, b.log_likelihoods,
                "{n_loci} loci x {n_proposals} proposals must be bit-identical"
            );
            assert_eq!(a.generator_log_likelihood, b.generator_log_likelihood);
            assert_eq!(a.nodes_repruned, b.nodes_repruned);
        }
    }
}

#[test]
fn device_chain_runs_are_bit_identical_to_serial_for_both_strategies() {
    let (dataset, _) = multi_locus_dataset(601, 2, 6);
    for strategy in [SamplerStrategy::MultiProposal, SamplerStrategy::Baseline] {
        let mut serial = Session::builder()
            .dataset(dataset.clone())
            .strategy(strategy)
            .config(small_config(Backend::Serial))
            .build()
            .unwrap();
        let serial_report = serial.run_chain(&mut Mt19937::new(3)).unwrap();

        let mut device = Session::builder()
            .dataset(dataset.clone())
            .strategy(strategy)
            .config(small_config(Backend::device(DeviceSpec::kepler())))
            .build()
            .unwrap();
        let device_report = device.run_chain(&mut Mt19937::new(3)).unwrap();

        assert_eq!(
            serial_report, device_report,
            "{strategy:?}: serial and device runs must be bit-identical"
        );
    }
}

#[test]
fn parallel_execution_mode_does_not_clobber_the_device_backend() {
    // `with_mode(Parallel)` upgrades serial dispatch to rayon, but must
    // never silently replace the device backend — that would drop every
    // likelihood launch from the queue's accounting while still attaching
    // a (now misleading) DeviceReport to the run.
    use phylo::likelihood::ExecutionMode;
    let (dataset, _) = multi_locus_dataset(659, 2, 6);
    let mut serial = Session::builder()
        .dataset(dataset.clone())
        .config(small_config(Backend::Serial))
        .build()
        .unwrap();
    let serial_report = serial.run_chain(&mut Mt19937::new(5)).unwrap();

    let mut device = Session::builder()
        .dataset(dataset)
        .config(small_config(Backend::device(DeviceSpec::kepler())))
        .execution(ExecutionMode::Parallel)
        .build()
        .unwrap();
    let baseline = Queue::stats();
    let device_report = device.run_chain(&mut Mt19937::new(5)).unwrap();
    let stats = Queue::stats().delta(&baseline);

    assert_eq!(serial_report, device_report);
    // The likelihood grids were submitted to the queue, not rerouted to
    // rayon: batched-grid launches are present.
    assert!(stats.grid_batches > 0, "likelihood grids must stay on the device queue");
}

#[test]
fn device_session_reports_theta_and_cost_breakdown() {
    let (dataset, _) = multi_locus_dataset(617, 1, 6);
    let mut serial = Session::builder()
        .dataset(dataset.clone())
        .config(small_config(Backend::Serial))
        .build()
        .unwrap();
    let serial_estimate = serial.run(&mut Mt19937::new(11)).unwrap();
    assert!(serial_estimate.device.is_none());

    let mut device = Session::builder()
        .dataset(dataset)
        .config(small_config(Backend::device(DeviceSpec::modern())))
        .build()
        .unwrap();
    let device_estimate = device.run(&mut Mt19937::new(11)).unwrap();

    // Identical estimation, plus the cost section.
    assert_eq!(serial_estimate.theta, device_estimate.theta);
    assert_eq!(serial_estimate.iterations, device_estimate.iterations);
    let report = device_estimate.device.expect("device runs carry a DeviceReport");
    assert_eq!(report.spec, DeviceSpec::modern());
    assert!(report.stats.launches > 0);
    assert!(report.stats.grid_batches > 0);
    assert!(report.stats.logical_threads > report.stats.host_items);
    assert!(report.stats.modelled_device_us > 0.0);
    assert!(report.modelled_host_us > 0.0);
    assert!(report.stats.measured_host_us > 0.0);
    assert!(report.mean_occupancy() > 0.0 && report.mean_occupancy() <= 1.0);
    assert!(report.summary().contains("modern"));
}

#[test]
fn device_ensemble_matches_serial_and_reports_device_costs() {
    let (dataset, _) = multi_locus_dataset(631, 1, 6);
    let ladder = ExchangePolicy::geometric_ladder(3, 4.0, 5).unwrap();
    let spec =
        EnsembleSpec { n_chains: 3, exchange: ladder, ensemble_seed: 19, chain_dispatch: None };

    let mut serial = Session::builder()
        .dataset(dataset.clone())
        .config(small_config(Backend::Serial))
        .build()
        .unwrap();
    serial.set_ensemble(Some(spec.clone()));
    let serial_report = serial.run_ensemble(&mut Mt19937::new(2)).unwrap();
    assert!(serial_report.device.is_none());

    let mut device = Session::builder()
        .dataset(dataset)
        .config(small_config(Backend::device(DeviceSpec::kepler())))
        .build()
        .unwrap();
    device.set_ensemble(Some(spec));
    let device_report = device.run_ensemble(&mut Mt19937::new(2)).unwrap();

    // Everything the sampler computed is bit-identical; only the device
    // section differs (present vs absent).
    assert_eq!(serial_report.chains, device_report.chains);
    assert_eq!(serial_report.temperatures, device_report.temperatures);
    assert_eq!(serial_report.cold_rungs, device_report.cold_rungs);
    assert_eq!(serial_report.pooled_samples, device_report.pooled_samples);
    assert_eq!(serial_report.counters, device_report.counters);
    let section = device_report.device.expect("device ensemble carries a DeviceReport");
    assert!(section.stats.launches > 0);
    assert!(section.stats.grid_batches > 0);
}

#[test]
fn device_backend_rejects_rayon_chain_dispatch() {
    let (dataset, _) = multi_locus_dataset(647, 1, 5);
    let mut session = Session::builder()
        .dataset(dataset)
        .config(small_config(Backend::device(DeviceSpec::kepler())))
        .build()
        .unwrap();
    session.set_ensemble(Some(EnsembleSpec {
        chain_dispatch: Some(Backend::Rayon),
        ..EnsembleSpec::independent(2)
    }));
    let err = session.run_ensemble(&mut Mt19937::new(1)).unwrap_err();
    assert!(err.to_string().contains("command queue"), "unhelpful error: {err}");

    // Serial chain dispatch over device within-chain work is fine.
    let (dataset, _) = multi_locus_dataset(653, 1, 5);
    let mut session = Session::builder()
        .dataset(dataset)
        .config(small_config(Backend::device(DeviceSpec::kepler())))
        .build()
        .unwrap();
    session.set_ensemble(Some(EnsembleSpec {
        chain_dispatch: Some(Backend::Serial),
        ..EnsembleSpec::independent(2)
    }));
    let report = session.run_ensemble(&mut Mt19937::new(1)).unwrap();
    assert!(report.device.is_some());
}

#[test]
fn device_accounting_reproduces_the_sequence_length_trend() {
    // The Figure 16 mechanism in miniature: more sites mean more logical
    // (proposal, site) threads per launch, better latency hiding, higher
    // sustained speedup. (The full three-figure regeneration lives in
    // crates/bench/benches/device.rs.)
    let spec = DeviceSpec::kepler();
    let mut reports = Vec::new();
    for &sites in &[40usize, 400] {
        let mut rng = Mt19937::new(701);
        let (alignment, _) = simulate(&mut rng, 6, sites);
        let mut session = Session::builder()
            .alignment(alignment)
            .config(small_config(Backend::device(spec)))
            .build()
            .unwrap();
        let baseline = Queue::stats();
        session.run_chain(&mut Mt19937::new(1)).unwrap();
        reports.push(DeviceReport::new(spec, Queue::stats().delta(&baseline)));
    }
    assert!(
        reports[1].mean_occupancy() > reports[0].mean_occupancy(),
        "longer sequences must raise occupancy"
    );
    assert!(
        reports[1].kernel_speedup() > reports[0].kernel_speedup(),
        "longer sequences must raise the sustained speedup: {} vs {}",
        reports[0].kernel_speedup(),
        reports[1].kernel_speedup()
    );
}
