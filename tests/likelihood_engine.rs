//! Correctness of the batched, dirty-path-cached likelihood engine against
//! the naive serial pruner, on randomly simulated genealogies and alignments
//! (the property the whole multi-proposal speedup rests on: caching must be
//! invisible in the numbers).

use coalescent::{CoalescentSimulator, SequenceSimulator};
use exec::Backend;
use lamarc::GenealogyProposer;
use mcmc::rng::Mt19937;
use phylo::likelihood::LikelihoodEngine;
use phylo::model::{Jc69, F81};
use phylo::{Alignment, FelsensteinPruner, GeneTree, TreeProposal};

fn simulate(rng: &mut Mt19937, n: usize, sites: usize, theta: f64) -> (Alignment, GeneTree) {
    let tree = CoalescentSimulator::constant(theta).unwrap().simulate(rng, n).unwrap();
    let alignment =
        SequenceSimulator::new(Jc69::new(), sites, 1.0).unwrap().simulate(rng, &tree).unwrap();
    (alignment, tree)
}

/// Batched + dirty-path-cached likelihoods match the naive serial pruner to
/// 1e-10 across random trees, alignments, proposal sets, and both backends.
#[test]
fn batched_engine_matches_naive_pruner_on_random_instances() {
    let mut rng = Mt19937::new(20_260_731);
    let theta = 1.0;
    let proposer = GenealogyProposer::new(theta).unwrap();
    for &(n, sites) in &[(4usize, 120usize), (8, 300), (16, 500)] {
        let (alignment, generator) = simulate(&mut rng, n, sites, theta);
        let engine =
            FelsensteinPruner::new(&alignment, F81::normalized(alignment.base_frequencies()));
        let naive =
            FelsensteinPruner::new(&alignment, F81::normalized(alignment.base_frequencies()));

        // Several rounds against the same generator so the memoised workspace
        // path (cache hit) is exercised as well as the cold build.
        for round in 0..3 {
            let edits: Vec<(GeneTree, Vec<usize>)> = (0..8)
                .map(|_| {
                    let phi = proposer.sample_target(&generator, &mut rng);
                    proposer.propose_with_edit(&generator, phi, &mut rng)
                })
                .collect();
            let proposals: Vec<TreeProposal<'_>> =
                edits.iter().map(|(tree, edited)| TreeProposal { tree, edited }).collect();
            let backend = if round % 2 == 0 { Backend::Serial } else { Backend::Rayon };
            let eval = engine.log_likelihood_batch(backend, &generator, &proposals).unwrap();
            assert_eq!(eval.generator_cache_hit, round > 0, "round {round}");

            let naive_generator = naive.log_likelihood(&generator).unwrap();
            assert!(
                (eval.generator_log_likelihood - naive_generator).abs() < 1e-10,
                "generator: batched {} vs naive {naive_generator}",
                eval.generator_log_likelihood
            );
            for ((tree, edited), &batched) in edits.iter().zip(&eval.log_likelihoods) {
                let reference = naive.log_likelihood(tree).unwrap();
                assert!(
                    (batched - reference).abs() < 1e-10,
                    "n={n} sites={sites} round={round} edited={edited:?}: \
                     batched {batched} vs naive {reference}"
                );
            }
        }
    }
}

/// A φ-neighborhood edit reprunes only the edited nodes plus the path from
/// them to the root — O(path-to-root), not O(n).
#[test]
fn neighborhood_edits_reprune_only_the_path_to_the_root() {
    let mut rng = Mt19937::new(424_243);
    let theta = 1.0;
    let proposer = GenealogyProposer::new(theta).unwrap();
    let (alignment, generator) = simulate(&mut rng, 24, 200, theta);
    let engine = FelsensteinPruner::new(&alignment, Jc69::new());
    let workspace = engine.build_workspace(Backend::Serial, &generator).unwrap();

    let mut max_repruned = 0usize;
    for _ in 0..200 {
        let phi = proposer.sample_target(&generator, &mut rng);
        let (proposal, edited) = proposer.propose_with_edit(&generator, phi, &mut rng);
        let eval = engine.rescore_with_workspace(&workspace, &proposal, &edited).unwrap();

        // Expected dirty set: the edited interior nodes plus every ancestor.
        let mut dirty: Vec<usize> = Vec::new();
        for &edit in &edited {
            let mut cursor = Some(edit);
            while let Some(node) = cursor {
                if !proposal.is_tip(node) && !dirty.contains(&node) {
                    dirty.push(node);
                }
                cursor = proposal.parent(node);
            }
        }
        assert_eq!(
            eval.nodes_repruned,
            dirty.len(),
            "edited {edited:?} should reprune exactly its path to the root"
        );
        max_repruned = max_repruned.max(eval.nodes_repruned);
    }
    // O(path-to-root): strictly below the interior-node count for a 24-tip
    // tree (23 interior nodes) on every single proposal.
    assert!(
        max_repruned < generator.n_internal(),
        "worst case repruned {max_repruned} of {} interior nodes",
        generator.n_internal()
    );
}

/// The engine-level counters aggregate exactly over a batch.
#[test]
fn batch_counters_aggregate_per_proposal_work() {
    let mut rng = Mt19937::new(99);
    let theta = 1.0;
    let proposer = GenealogyProposer::new(theta).unwrap();
    let (alignment, generator) = simulate(&mut rng, 8, 100, theta);
    let engine = FelsensteinPruner::new(&alignment, Jc69::new());
    let workspace = engine.build_workspace(Backend::Serial, &generator).unwrap();

    let edits: Vec<(GeneTree, Vec<usize>)> = (0..16)
        .map(|_| {
            let phi = proposer.sample_target(&generator, &mut rng);
            proposer.propose_with_edit(&generator, phi, &mut rng)
        })
        .collect();
    let proposals: Vec<TreeProposal<'_>> =
        edits.iter().map(|(tree, edited)| TreeProposal { tree, edited }).collect();

    let per_proposal: usize = proposals
        .iter()
        .map(|p| {
            engine.rescore_with_workspace(&workspace, p.tree, p.edited).unwrap().nodes_repruned
        })
        .sum();
    engine.clear_cache();
    let eval = engine.log_likelihood_batch(Backend::Rayon, &generator, &proposals).unwrap();
    assert_eq!(eval.nodes_repruned, per_proposal);
    assert_eq!(eval.nodes_full_pruned, generator.n_internal());
    assert_eq!(eval.log_likelihoods.len(), 16);
}

/// The flattened (locus × proposal) grid dispatch of `MultiLocusEngine`
/// equals the serial per-locus loop (independent per-locus engines, summed
/// by hand) to 1e-10 for every grid shape from 1×1 to 4×8, on both backends.
#[test]
fn flattened_locus_proposal_grid_matches_the_serial_per_locus_loop() {
    use phylo::likelihood::MultiLocusEngine;
    use phylo::{Dataset, Locus};

    let mut rng = Mt19937::new(20_260_801);
    let theta = 1.0;
    let proposer = GenealogyProposer::new(theta).unwrap();

    for n_loci in 1..=4usize {
        // One genealogy over shared individuals; loci of different lengths
        // simulated independently on their own trees (unlinked loci).
        let (first, generator) = simulate(&mut rng, 6, 90, theta);
        let names: Vec<String> = first.names().iter().map(|s| s.to_string()).collect();
        let mut loci = vec![Locus::new("l0", first)];
        for l in 1..n_loci {
            let locus_tree = CoalescentSimulator::constant(theta)
                .unwrap()
                .simulate_labelled(&mut rng, &names)
                .unwrap();
            let alignment = SequenceSimulator::new(Jc69::new(), 40 + 25 * l, 1.0)
                .unwrap()
                .simulate(&mut rng, &locus_tree)
                .unwrap();
            loci.push(Locus::new(format!("l{l}"), alignment));
        }
        let dataset = Dataset::new(loci).unwrap();

        for n_proposals in 1..=8usize {
            let edits: Vec<(GeneTree, Vec<usize>)> = (0..n_proposals)
                .map(|_| {
                    let phi = proposer.sample_target(&generator, &mut rng);
                    proposer.propose_with_edit(&generator, phi, &mut rng)
                })
                .collect();
            let proposals: Vec<TreeProposal<'_>> =
                edits.iter().map(|(tree, edited)| TreeProposal { tree, edited }).collect();

            // The serial reference: one independent engine per locus, each
            // batch evaluated on its own, summed element-wise by hand.
            let mut reference_generator = 0.0;
            let mut reference = vec![0.0; n_proposals];
            for locus in dataset.loci() {
                let engine = FelsensteinPruner::new(
                    locus.alignment(),
                    F81::normalized(locus.alignment().base_frequencies()),
                );
                let eval =
                    engine.log_likelihood_batch(Backend::Serial, &generator, &proposals).unwrap();
                reference_generator += eval.generator_log_likelihood;
                for (sum, term) in reference.iter_mut().zip(&eval.log_likelihoods) {
                    *sum += term;
                }
            }

            for backend in [Backend::Serial, Backend::Rayon] {
                let engine =
                    MultiLocusEngine::new(&dataset, |a| F81::normalized(a.base_frequencies()));
                let flat = engine.log_likelihood_batch(backend, &generator, &proposals).unwrap();
                assert!(
                    (flat.generator_log_likelihood - reference_generator).abs() < 1e-10,
                    "{n_loci} loci x {n_proposals} proposals on {backend}: generator {} vs {}",
                    flat.generator_log_likelihood,
                    reference_generator
                );
                assert_eq!(flat.log_likelihoods.len(), n_proposals);
                for (p, (&flattened, &serial)) in
                    flat.log_likelihoods.iter().zip(&reference).enumerate()
                {
                    assert!(
                        (flattened - serial).abs() < 1e-10,
                        "{n_loci} loci x {n_proposals} proposals on {backend}, proposal {p}: \
                         flattened {flattened} vs serial {serial}"
                    );
                }
                assert!(!flat.generator_cache_hit, "fresh engines start cold");
                assert_eq!(flat.nodes_full_pruned, n_loci * generator.n_internal());

                // A second evaluation is served entirely from the per-locus
                // workspace shards.
                let again = engine.log_likelihood_batch(backend, &generator, &proposals).unwrap();
                assert!(again.generator_cache_hit);
                assert_eq!(again.nodes_full_pruned, 0);
                assert_eq!(again.log_likelihoods, flat.log_likelihoods);
            }
        }
    }
}
