//! Shared property-test harness for the integration suites.
//!
//! Two layers live here:
//!
//! * [`CaseDriver`] — a hand-rolled, dependency-free property-test driver:
//!   seeded MT19937 case generation, a fixed case budget, and greedy
//!   shrink-on-failure via the [`Shrinkable`] trait. Failures panic with the
//!   driver label, the master seed, the case index, and the *shrunk* case,
//!   so every red run is reproducible from its message alone. This is the
//!   promotion of the ad-hoc "randomized kill points" pattern that used to
//!   live inside `tests/checkpoint_resume.rs`.
//! * [`diff`] — the differential op-tape machinery gating the columnar
//!   genealogy port: randomized proposal/accept/swap/snapshot/checkpoint
//!   tapes replayed against both tree representations with bit-identical
//!   assertions at every step.
//!
//! Integration-test binaries include the harness with
//! `#[path = "harness/mod.rs"] mod harness;` — `tests/harness/` itself is
//! not a test target (no `main.rs`), so the module compiles once into each
//! suite that uses it.

// Each test binary uses a different subset of the harness surface.
#![allow(dead_code)]

pub mod diff;

use mcmc::rng::{Mt19937, SplitMix64};

/// A test case the driver knows how to shrink. The default implementation
/// offers no candidates (no shrinking), which is fine for scalar cases like
/// a kill point; structured cases (op tapes) override it.
pub trait Shrinkable: Clone + std::fmt::Debug {
    /// Strictly "smaller" variants of this case, most aggressive first. The
    /// driver keeps any candidate that still fails and recurses; candidates
    /// must eventually bottom out or shrinking is cut off by the driver's
    /// attempt budget.
    fn shrink_candidates(&self) -> Vec<Self> {
        Vec::new()
    }
}

// Parameter tuples shrink element-wise only where it makes sense; the
// blanket impls below keep scalar-tuple cases (seeds, sizes, rates) usable
// with the driver without inventing meaningless "smaller" variants.
impl<A, B> Shrinkable for (A, B)
where
    A: Clone + std::fmt::Debug,
    B: Clone + std::fmt::Debug,
{
}

impl<A, B, C> Shrinkable for (A, B, C)
where
    A: Clone + std::fmt::Debug,
    B: Clone + std::fmt::Debug,
    C: Clone + std::fmt::Debug,
{
}

impl<A, B, C, D> Shrinkable for (A, B, C, D)
where
    A: Clone + std::fmt::Debug,
    B: Clone + std::fmt::Debug,
    C: Clone + std::fmt::Debug,
    D: Clone + std::fmt::Debug,
{
}

impl Shrinkable for usize {
    fn shrink_candidates(&self) -> Vec<Self> {
        let mut out = Vec::new();
        if *self > 1 {
            out.push(1);
            if self / 2 > 1 {
                out.push(self / 2);
            }
            out.push(self - 1);
        }
        out.dedup();
        out
    }
}

/// A failing case as reported by [`CaseDriver::run_collect`]: the original
/// failure, the shrunk (minimal surviving) case, and the check's message.
#[derive(Debug)]
pub struct Failure<T> {
    /// Index of the failing case within the driver's budget.
    pub case_index: usize,
    /// The case exactly as generated.
    pub original: T,
    /// The smallest still-failing case shrinking reached.
    pub shrunk: T,
    /// The error returned by the check for `shrunk`.
    pub error: String,
    /// How many shrink candidates were evaluated.
    pub shrink_attempts: usize,
}

/// Seeded property-test driver: generates `cases` cases from a MT19937
/// stream derived from (`label`, `seed`), checks each, and shrinks the first
/// failure to a minimal reproducing case.
pub struct CaseDriver {
    label: &'static str,
    seed: u32,
    cases: usize,
    max_shrink_attempts: usize,
}

impl CaseDriver {
    /// A driver producing 16 cases by default.
    pub fn new(label: &'static str, seed: u32) -> Self {
        CaseDriver { label, seed, cases: 16, max_shrink_attempts: 512 }
    }

    /// Set the case budget.
    pub fn cases(mut self, cases: usize) -> Self {
        self.cases = cases;
        self
    }

    /// Set the shrink attempt budget.
    pub fn max_shrink_attempts(mut self, attempts: usize) -> Self {
        self.max_shrink_attempts = attempts;
        self
    }

    /// Per-case RNG: the label hash and master seed feed a SplitMix64 that
    /// spaces the MT19937 streams, so adding cases or reordering tests never
    /// shifts another case's randomness.
    fn case_rng(&self, case_index: usize) -> Mt19937 {
        let mut mix = SplitMix64::new(
            (label_hash(self.label) ^ u64::from(self.seed)).wrapping_add(case_index as u64 * 2),
        );
        Mt19937::new(mix.next_seed32())
    }

    /// Run every case, panicking on the first failure with the shrunk
    /// reproduction. This is the entry point the suites use.
    pub fn run<T: Shrinkable>(
        &self,
        generate: impl Fn(&mut Mt19937) -> T,
        check: impl Fn(&T) -> Result<(), String>,
    ) {
        if let Some(failure) = self.run_collect(generate, check) {
            panic!(
                "[{label} seed={seed} case={index}] check failed: {error}\n\
                 shrunk case ({attempts} shrink attempts): {shrunk:?}\n\
                 original case: {original:?}",
                label = self.label,
                seed = self.seed,
                index = failure.case_index,
                error = failure.error,
                attempts = failure.shrink_attempts,
                shrunk = failure.shrunk,
                original = failure.original,
            );
        }
    }

    /// Like [`CaseDriver::run`], but return the shrunk failure instead of
    /// panicking — used by the forced-failure tests that assert on the
    /// shrinking itself, and by callers that want to dump a repro artifact.
    pub fn run_collect<T: Shrinkable>(
        &self,
        generate: impl Fn(&mut Mt19937) -> T,
        check: impl Fn(&T) -> Result<(), String>,
    ) -> Option<Failure<T>> {
        for case_index in 0..self.cases {
            let mut rng = self.case_rng(case_index);
            let case = generate(&mut rng);
            if let Err(first_error) = check(&case) {
                let (shrunk, error, shrink_attempts) =
                    self.shrink(case.clone(), first_error, &check);
                return Some(Failure {
                    case_index,
                    original: case,
                    shrunk,
                    error,
                    shrink_attempts,
                });
            }
        }
        None
    }

    /// Greedy shrink: repeatedly adopt the first candidate that still fails,
    /// until no candidate fails or the attempt budget runs out.
    fn shrink<T: Shrinkable>(
        &self,
        mut current: T,
        mut error: String,
        check: &impl Fn(&T) -> Result<(), String>,
    ) -> (T, String, usize) {
        let mut attempts = 0;
        'outer: loop {
            for candidate in current.shrink_candidates() {
                if attempts >= self.max_shrink_attempts {
                    break 'outer;
                }
                attempts += 1;
                if let Err(candidate_error) = check(&candidate) {
                    current = candidate;
                    error = candidate_error;
                    continue 'outer;
                }
            }
            break;
        }
        (current, error, attempts)
    }
}

/// FNV-1a over the label, to keep distinct drivers on distinct MT19937
/// streams even when they share a numeric seed.
fn label_hash(label: &str) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for byte in label.bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}
