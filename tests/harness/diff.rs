//! Differential op tapes: the gate on the columnar genealogy port.
//!
//! A [`Tape`] is a seeded sequence of sampler-shaped operations — proposals
//! with accept/reject, replica swaps, copy-on-write snapshots and restores,
//! whole-tree retiming, and checkpoint round-trips. [`replay`] drives the
//! tape through **both** tree representations in lockstep:
//!
//! * the columnar [`phylo::GeneTree`] (a view over `phylo::tables`), and
//! * the legacy pointer arena [`LegacyTree`](phylo::tree::legacy::LegacyTree)
//!   the tables replaced, kept as the oracle;
//!
//! asserting after every operation that node records (topology, `f64` time
//! *bits*, labels) are identical, and periodically that log-likelihoods and
//! serialized checkpoint documents are bit-identical too.
//!
//! Every op carries its own RNG seed, so deleting ops during shrinking never
//! shifts the randomness of the ops that remain — a shrunk tape fails for
//! the same reason the original did. [`Sabotage`] deliberately breaks the
//! legacy mirror so the forced-failure test can demonstrate shrinking to a
//! minimal reproducing tape.

use super::Shrinkable;
use coalescent::{CoalescentSimulator, SequenceSimulator};
use codec::Json;
use lamarc::GenealogyProposer;
use mcmc::rng::{Mt19937, SplitMix64};
use phylo::model::Jc69;
use phylo::tree::legacy::LegacyTree;
use phylo::{assert_valid_genealogy, FelsensteinPruner, GeneTree, NodeRecord};
use rand::RngCore;

/// One operation of a differential tape. The embedded seed fully determines
/// the op's randomness (replica choice, proposal draws, accept coin).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// Propose on one replica via the real `GenealogyProposer`, flip an
    /// accept coin, and on accept commit to the columnar tree while applying
    /// the recorded `(node, time, children)` edits to the legacy mirror.
    Propose(u64),
    /// Exchange the trees of two replicas (the MC³ swap move).
    Swap(u64),
    /// Push a copy-on-write snapshot of one replica onto the snapshot stack.
    Snapshot(u64),
    /// Pop the snapshot stack and reinstate that state on its replica (the
    /// swap read-back / rejection path).
    Restore(u64),
    /// Rescale every node time of one replica by a factor near 1.
    Retime(u64),
    /// Serialize both representations of one replica, require byte-equal
    /// documents, then rebuild each representation from the *other* side's
    /// records (cross-pollinated round-trip).
    Checkpoint(u64),
}

impl Op {
    fn seed(&self) -> u64 {
        match *self {
            Op::Propose(s)
            | Op::Swap(s)
            | Op::Snapshot(s)
            | Op::Restore(s)
            | Op::Retime(s)
            | Op::Checkpoint(s) => s,
        }
    }

    /// The op's private RNG.
    fn rng(&self) -> Mt19937 {
        Mt19937::new(SplitMix64::new(self.seed()).next_seed32())
    }
}

/// A full differential test case: the world seed (initial trees + data) and
/// the self-seeded op sequence.
#[derive(Debug, Clone, PartialEq)]
pub struct Tape {
    /// Seed for the initial replica trees and the scoring alignment.
    pub world_seed: u32,
    /// Number of tips per genealogy.
    pub n_tips: usize,
    /// Number of chain replicas (the mini ladder the swaps move over).
    pub n_replicas: usize,
    /// The operations, replayed in order.
    pub ops: Vec<Op>,
}

impl Tape {
    /// Generate a tape of `n_ops` operations from the driver's case RNG.
    pub fn generate(rng: &mut Mt19937, n_tips: usize, n_replicas: usize, n_ops: usize) -> Tape {
        let world_seed = rng.next_u32();
        let mut seeder =
            SplitMix64::new(u64::from(rng.next_u32()) << 32 | u64::from(rng.next_u32()));
        let ops = (0..n_ops)
            .map(|_| {
                let seed = seeder.next();
                // Weighted mix: proposals dominate, exactly like a sampler.
                match seed % 100 {
                    0..=54 => Op::Propose(seed),
                    55..=69 => Op::Snapshot(seed),
                    70..=79 => Op::Restore(seed),
                    80..=91 => Op::Swap(seed),
                    92..=95 => Op::Retime(seed),
                    _ => Op::Checkpoint(seed),
                }
            })
            .collect();
        Tape { world_seed, n_tips, n_replicas, ops }
    }

    /// Render the tape as a plain-text repro artifact (one op per line),
    /// uploadable from CI on failure and sufficient to rebuild the tape by
    /// hand.
    pub fn to_repro_text(&self) -> String {
        let mut out = format!(
            "# differential repro tape\nworld_seed = {}\nn_tips = {}\nn_replicas = {}\n",
            self.world_seed, self.n_tips, self.n_replicas
        );
        for op in &self.ops {
            out.push_str(&format!("{op:?}\n"));
        }
        out
    }
}

impl Shrinkable for Tape {
    /// Delta-debugging candidates: drop large spans first (halves, quarters,
    /// eighths), then individual ops. Op seeds travel with their ops, so
    /// every candidate replays the surviving ops identically.
    fn shrink_candidates(&self) -> Vec<Self> {
        let n = self.ops.len();
        if n <= 1 {
            return Vec::new();
        }
        let mut candidates = Vec::new();
        let mut span = n.div_ceil(2);
        loop {
            let mut start = 0;
            while start < n {
                let end = (start + span).min(n);
                let mut ops = Vec::with_capacity(n - (end - start));
                ops.extend_from_slice(&self.ops[..start]);
                ops.extend_from_slice(&self.ops[end..]);
                if !ops.is_empty() || n == 1 {
                    candidates.push(Tape { ops, ..self.clone() });
                }
                start += span;
            }
            if span == 1 {
                break;
            }
            span = span.div_ceil(2).max(1);
        }
        candidates
    }
}

/// Ways to deliberately corrupt the legacy mirror, so the harness can prove
/// it catches divergence and shrinks it to a minimal tape.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Sabotage {
    /// Honest replay.
    None,
    /// `Retime` multiplies the legacy side by an extra 1 + 2⁻⁴⁰ — a
    /// single-ULP-scale error only bitwise comparison catches.
    PerturbRetime,
}

/// One replica's state in both representations.
struct Replica {
    columnar: GeneTree,
    legacy: LegacyTree,
}

/// Replay `tape`, asserting bit-identical behaviour of the two
/// representations after every op. Returns the number of ops executed.
pub fn replay(tape: &Tape, sabotage: Sabotage) -> Result<usize, String> {
    let mut world_rng = Mt19937::new(tape.world_seed);
    let simulator = CoalescentSimulator::constant(1.0).map_err(|e| e.to_string())?;
    let mut replicas: Vec<Replica> = (0..tape.n_replicas)
        .map(|r| {
            let columnar = simulator
                .simulate(&mut world_rng, tape.n_tips)
                .map_err(|e| format!("replica {r} simulation: {e}"))?;
            let legacy = LegacyTree::from_node_records(columnar.node_records(), columnar.root())
                .map_err(|e| format!("replica {r} legacy mirror: {e}"))?;
            Ok(Replica { columnar, legacy })
        })
        .collect::<Result<_, String>>()?;
    // One alignment scores every replica (all trees share the tip labels).
    let alignment = SequenceSimulator::new(Jc69::new(), 40, 1.0)
        .map_err(|e| e.to_string())?
        .simulate(&mut world_rng, &replicas[0].columnar)
        .map_err(|e| e.to_string())?;
    let pruner = FelsensteinPruner::new(&alignment, Jc69::new());
    let proposer = GenealogyProposer::new(1.0).map_err(|e| e.to_string())?;

    let mut snapshots: Vec<(usize, GeneTree, LegacyTree)> = Vec::new();
    for (step, op) in tape.ops.iter().enumerate() {
        let mut rng = op.rng();
        let r = rng.next_u32() as usize % tape.n_replicas;
        match op {
            Op::Propose(_) => {
                let replica = &mut replicas[r];
                let target = proposer.sample_target(&replica.columnar, &mut rng);
                let (proposed, edited) =
                    proposer.propose_with_edit(&replica.columnar, target, &mut rng);
                let accept = rng.next_u32() % 4 != 0; // 75% accept
                if accept {
                    // Mirror the recorded edit set onto the legacy tree, in
                    // edit order — exactly the writes the proposal made.
                    for &node in &edited {
                        replica.legacy.set_time(node, proposed.time(node));
                        if let Some((a, b)) = proposed.children(node) {
                            replica.legacy.set_children(node, a, b);
                        }
                    }
                    replica.columnar = proposed;
                }
            }
            Op::Swap(_) => {
                let j = rng.next_u32() as usize % tape.n_replicas;
                if r != j {
                    // Trees move between rungs; with columnar storage this is
                    // a pointer move, with the legacy arena a struct move.
                    replicas.swap(r, j);
                }
            }
            Op::Snapshot(_) => {
                let replica = &replicas[r];
                snapshots.push((r, replica.columnar.clone(), replica.legacy.clone()));
                if snapshots.len() > 8 {
                    snapshots.remove(0);
                }
            }
            Op::Restore(_) => {
                if let Some((home, columnar, legacy)) = snapshots.pop() {
                    replicas[home] = Replica { columnar, legacy };
                }
            }
            Op::Retime(_) => {
                let factor = 0.9 + 0.2 * (f64::from(rng.next_u32()) / f64::from(u32::MAX));
                let legacy_factor = match sabotage {
                    Sabotage::None => factor,
                    Sabotage::PerturbRetime => factor * (1.0 + 2f64.powi(-40)),
                };
                let replica = &mut replicas[r];
                replica.columnar.scale_times(factor);
                replica.legacy.scale_times(legacy_factor);
            }
            Op::Checkpoint(_) => {
                let replica = &mut replicas[r];
                let columnar_doc = encode_checkpoint_tree(
                    &replica.columnar.node_records(),
                    replica.columnar.root(),
                );
                let legacy_doc =
                    encode_checkpoint_tree(&replica.legacy.node_records(), replica.legacy.root());
                if columnar_doc != legacy_doc {
                    return Err(format!(
                        "step {step}: serialized checkpoints diverged on replica {r}"
                    ));
                }
                // Cross-pollinated rebuild: each side resumes from the other
                // side's records.
                let columnar_records = replica.columnar.node_records();
                let columnar_root = replica.columnar.root();
                replica.columnar = GeneTree::from_node_records(
                    replica.legacy.node_records(),
                    replica.legacy.root(),
                )
                .map_err(|e| format!("step {step}: columnar resume failed: {e}"))?;
                replica.legacy = LegacyTree::from_node_records(columnar_records, columnar_root)
                    .map_err(|e| format!("step {step}: legacy resume failed: {e}"))?;
            }
        }

        // The gate: bit-identical node records after every op, on every
        // replica the op could have touched.
        for (index, replica) in replicas.iter().enumerate() {
            records_bit_identical(&replica.columnar.node_records(), &replica.legacy.node_records())
                .map_err(|e| format!("step {step} ({op:?}): replica {index}: {e}"))?;
            if replica.columnar.root() != replica.legacy.root() {
                return Err(format!(
                    "step {step} ({op:?}): replica {index}: roots diverged ({} vs {})",
                    replica.columnar.root(),
                    replica.legacy.root()
                ));
            }
        }
        // Periodically: bit-identical log-likelihoods and full validity.
        if step % 8 == 0 {
            let replica = &replicas[r];
            let legacy_view =
                GeneTree::from_node_records(replica.legacy.node_records(), replica.legacy.root())
                    .map_err(|e| format!("step {step}: legacy records are invalid: {e}"))?;
            let columnar_lnl = pruner
                .log_likelihood(&replica.columnar)
                .map_err(|e| format!("step {step}: columnar likelihood: {e}"))?;
            let legacy_lnl = pruner
                .log_likelihood(&legacy_view)
                .map_err(|e| format!("step {step}: legacy likelihood: {e}"))?;
            if columnar_lnl.to_bits() != legacy_lnl.to_bits() {
                return Err(format!(
                    "step {step}: log-likelihood bits diverged: {columnar_lnl:?} vs {legacy_lnl:?}"
                ));
            }
            assert_valid_genealogy(&replica.columnar);
            replica.legacy.validate().map_err(|e| format!("step {step}: legacy invalid: {e}"))?;
        }
    }
    Ok(tape.ops.len())
}

/// Compare two record vectors for bit identity: topology and labels by
/// equality, times by `f64::to_bits` (so `-0.0` vs `0.0` or a 1-ULP drift
/// cannot hide behind `==`).
pub fn records_bit_identical(a: &[NodeRecord], b: &[NodeRecord]) -> Result<(), String> {
    if a.len() != b.len() {
        return Err(format!("node counts diverged: {} vs {}", a.len(), b.len()));
    }
    for (node, (ra, rb)) in a.iter().zip(b).enumerate() {
        if ra.parent != rb.parent {
            return Err(format!("node {node}: parents {:?} vs {:?}", ra.parent, rb.parent));
        }
        if ra.children != rb.children {
            return Err(format!("node {node}: children {:?} vs {:?}", ra.children, rb.children));
        }
        if ra.time.to_bits() != rb.time.to_bits() {
            return Err(format!("node {node}: time bits {:?} vs {:?}", ra.time, rb.time));
        }
        if ra.label != rb.label {
            return Err(format!("node {node}: labels {:?} vs {:?}", ra.label, rb.label));
        }
    }
    Ok(())
}

/// Encode a genealogy exactly like the `mpcgs-checkpoint/v1` tree codec:
/// one object per node (parent/children/time/label) plus the root id, times
/// as exact decimal strings. Byte equality of two documents implies the
/// checkpoint subsystem cannot tell the representations apart.
pub fn encode_checkpoint_tree(records: &[NodeRecord], root: usize) -> String {
    let nodes: Vec<Json> = records
        .iter()
        .map(|record| {
            let mut fields = vec![(
                "parent".to_string(),
                record.parent.map_or(Json::Null, |p| Json::Number(p as f64)),
            )];
            fields.push((
                "children".to_string(),
                record.children.map_or(Json::Null, |(a, b)| {
                    Json::Array(vec![Json::Number(a as f64), Json::Number(b as f64)])
                }),
            ));
            fields.push(("time".to_string(), Json::exact_f64(record.time)));
            fields.push((
                "label".to_string(),
                record.label.as_ref().map_or(Json::Null, Json::string),
            ));
            Json::Object(fields)
        })
        .collect();
    Json::Object(vec![
        ("root".to_string(), Json::Number(root as f64)),
        ("nodes".to_string(), Json::Array(nodes)),
    ])
    .to_pretty()
}
