//! Property-based integration tests of the sampler invariants: every
//! genealogy the samplers touch stays structurally valid, tips are never
//! created or destroyed, interval summaries stay consistent with the trees
//! they were taken from, and the proposal mechanism preserves the coalescent
//! prior for arbitrary (small) problem sizes.
//!
//! The properties are exercised by a small hand-rolled case driver (the build
//! environment cannot fetch `proptest`): each property runs over a couple of
//! dozen randomly drawn parameter tuples from the same ranges the original
//! proptest strategies used, with the failing tuple reported on panic.

use coalescent::{CoalescentSimulator, KingmanPrior};
use lamarc::{GenealogyProposer, HazardModel, ProposalConfig};
use mcmc::rng::Mt19937;
use rand::Rng;

/// Number of random parameter tuples per property.
const CASES: usize = 24;

/// Draw a usize uniformly from `[lo, hi)`.
fn draw(rng: &mut Mt19937, lo: usize, hi: usize) -> usize {
    rng.gen_range(lo..hi)
}

/// Draw an f64 uniformly from `[lo, hi)`.
fn draw_f64(rng: &mut Mt19937, lo: f64, hi: f64) -> f64 {
    lo + rng.gen::<f64>() * (hi - lo)
}

/// Any number of proposals applied to any simulated starting tree keeps the
/// genealogy valid and the tip set fixed.
#[test]
fn proposals_preserve_structure() {
    let mut meta = Mt19937::new(0xBEEF);
    for case in 0..CASES {
        let seed = meta.gen_range(0..10_000u32);
        let n_tips = draw(&mut meta, 3, 20);
        let theta = draw_f64(&mut meta, 0.1, 5.0);
        let steps = draw(&mut meta, 1, 40);
        let context =
            format!("case {case}: seed={seed} n_tips={n_tips} theta={theta} steps={steps}");

        let mut rng = Mt19937::new(seed);
        let sim = CoalescentSimulator::constant(theta).unwrap();
        let mut tree = sim.simulate(&mut rng, n_tips).unwrap();
        let labels = tree.tip_labels();
        let proposer = GenealogyProposer::new(theta).unwrap();
        for _ in 0..steps {
            let target = proposer.sample_target(&tree, &mut rng);
            tree = proposer.propose(&tree, target, &mut rng);
            assert!(tree.validate().is_ok(), "invalid tree ({context})");
            assert_eq!(tree.n_tips(), n_tips, "tip count changed ({context})");
        }
        assert_eq!(tree.tip_labels(), labels, "tip labels changed ({context})");
    }
}

/// Interval summaries agree with the trees they are extracted from: the
/// number of coalescences is n-1, the depth equals the TMRCA, and the total
/// branch length matches.
#[test]
fn interval_summaries_are_consistent() {
    let mut meta = Mt19937::new(0xCAFE);
    for case in 0..CASES {
        let seed = meta.gen_range(0..10_000u32);
        let n_tips = draw(&mut meta, 2, 30);
        let theta = draw_f64(&mut meta, 0.1, 4.0);
        let context = format!("case {case}: seed={seed} n_tips={n_tips} theta={theta}");

        let mut rng = Mt19937::new(seed);
        let tree =
            CoalescentSimulator::constant(theta).unwrap().simulate(&mut rng, n_tips).unwrap();
        let intervals = tree.intervals();
        assert_eq!(intervals.n_coalescences(), n_tips - 1, "{context}");
        assert!((intervals.depth() - tree.tmrca()).abs() < 1e-9, "{context}");
        assert!(
            (intervals.total_branch_length() - tree.total_branch_length()).abs() < 1e-6,
            "{context}"
        );
        // The Kingman prior computed from the tree and from the summary agree.
        let prior = KingmanPrior::new(theta).unwrap();
        assert!(
            (prior.log_prior(&tree) - prior.log_prior_intervals(&intervals)).abs() < 1e-9,
            "{context}"
        );
    }
}

/// Both hazard models keep event times inside the window imposed by the
/// ancestor node (when one exists).
#[test]
fn proposals_respect_the_ancestor_bound() {
    let mut meta = Mt19937::new(0xF00D);
    for case in 0..CASES {
        let seed = meta.gen_range(0..10_000u32);
        let n_tips = draw(&mut meta, 4, 16);
        let hazard_conditional = meta.gen_bool(0.5);
        let context =
            format!("case {case}: seed={seed} n_tips={n_tips} conditional={hazard_conditional}");

        let mut rng = Mt19937::new(seed);
        let theta = 1.0;
        let tree =
            CoalescentSimulator::constant(theta).unwrap().simulate(&mut rng, n_tips).unwrap();
        let hazard =
            if hazard_conditional { HazardModel::Conditional } else { HazardModel::ActiveOnly };
        let proposer =
            GenealogyProposer::with_config(theta, ProposalConfig { hazard, ..Default::default() })
                .unwrap();
        for _ in 0..10 {
            let target = proposer.sample_target(&tree, &mut rng);
            let parent = tree.parent(target).unwrap();
            let proposal = proposer.propose(&tree, target, &mut rng);
            if let Some(ancestor) = tree.parent(parent) {
                assert!(proposal.time(parent) <= tree.time(ancestor) + 1e-9, "{context}");
            }
            assert!(proposal.time(target) <= proposal.time(parent), "{context}");
        }
    }
}

/// The long-run Gibbs check on a fixed size (kept out of the case driver so
/// its cost is paid once): repeatedly accepted proposals must preserve the
/// Kingman prior's mean TMRCA.
#[test]
fn gibbs_chain_matches_kingman_expectation_for_five_tips() {
    let theta = 1.0;
    let n_tips = 5;
    let mut rng = Mt19937::new(424_242);
    let proposer = GenealogyProposer::new(theta).unwrap();
    let mut tree = CoalescentSimulator::constant(5.0).unwrap().simulate(&mut rng, n_tips).unwrap();
    let (burn_in, samples) = (1_000, 12_000);
    let mut sum = 0.0;
    for step in 0..(burn_in + samples) {
        let target = proposer.sample_target(&tree, &mut rng);
        tree = proposer.propose(&tree, target, &mut rng);
        if step >= burn_in {
            sum += tree.tmrca();
        }
    }
    let mean = sum / samples as f64;
    let expected = KingmanPrior::new(theta).unwrap().expected_tmrca(n_tips);
    assert!(
        (mean / expected - 1.0).abs() < 0.15,
        "Gibbs mean TMRCA {mean} vs Kingman expectation {expected}"
    );
}
