//! Property-based integration tests of the sampler invariants: every
//! genealogy the samplers touch stays structurally valid, tips are never
//! created or destroyed, interval summaries stay consistent with the trees
//! they were taken from, and the proposal mechanism preserves the coalescent
//! prior for arbitrary (small) problem sizes.

use coalescent::{CoalescentSimulator, KingmanPrior};
use lamarc::{GenealogyProposer, HazardModel, ProposalConfig};
use mcmc::rng::Mt19937;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// Any number of proposals applied to any simulated starting tree keeps
    /// the genealogy valid and the tip set fixed.
    #[test]
    fn proposals_preserve_structure(
        seed in 0u32..10_000,
        n_tips in 3usize..20,
        theta in 0.1f64..5.0,
        steps in 1usize..40,
    ) {
        let mut rng = Mt19937::new(seed);
        let sim = CoalescentSimulator::constant(theta).unwrap();
        let mut tree = sim.simulate(&mut rng, n_tips).unwrap();
        let labels = tree.tip_labels();
        let proposer = GenealogyProposer::new(theta).unwrap();
        for _ in 0..steps {
            let target = proposer.sample_target(&tree, &mut rng);
            tree = proposer.propose(&tree, target, &mut rng);
            prop_assert!(tree.validate().is_ok());
            prop_assert_eq!(tree.n_tips(), n_tips);
        }
        prop_assert_eq!(tree.tip_labels(), labels);
    }

    /// Interval summaries agree with the trees they are extracted from: the
    /// number of coalescences is n-1, the depth equals the TMRCA, and the
    /// total branch length matches.
    #[test]
    fn interval_summaries_are_consistent(
        seed in 0u32..10_000,
        n_tips in 2usize..30,
        theta in 0.1f64..4.0,
    ) {
        let mut rng = Mt19937::new(seed);
        let tree = CoalescentSimulator::constant(theta).unwrap().simulate(&mut rng, n_tips).unwrap();
        let intervals = tree.intervals();
        prop_assert_eq!(intervals.n_coalescences(), n_tips - 1);
        prop_assert!((intervals.depth() - tree.tmrca()).abs() < 1e-9);
        prop_assert!((intervals.total_branch_length() - tree.total_branch_length()).abs() < 1e-6);
        // The Kingman prior computed from the tree and from the summary agree.
        let prior = KingmanPrior::new(theta).unwrap();
        prop_assert!((prior.log_prior(&tree) - prior.log_prior_intervals(&intervals)).abs() < 1e-9);
    }

    /// Both hazard models keep event times inside the window imposed by the
    /// ancestor node (when one exists).
    #[test]
    fn proposals_respect_the_ancestor_bound(
        seed in 0u32..10_000,
        n_tips in 4usize..16,
        hazard_conditional in proptest::bool::ANY,
    ) {
        let mut rng = Mt19937::new(seed);
        let theta = 1.0;
        let tree = CoalescentSimulator::constant(theta).unwrap().simulate(&mut rng, n_tips).unwrap();
        let hazard = if hazard_conditional { HazardModel::Conditional } else { HazardModel::ActiveOnly };
        let proposer = GenealogyProposer::with_config(
            theta,
            ProposalConfig { hazard, ..Default::default() },
        )
        .unwrap();
        for _ in 0..10 {
            let target = proposer.sample_target(&tree, &mut rng);
            let parent = tree.parent(target).unwrap();
            let proposal = proposer.propose(&tree, target, &mut rng);
            if let Some(ancestor) = tree.parent(parent) {
                prop_assert!(proposal.time(parent) <= tree.time(ancestor) + 1e-9);
            }
            prop_assert!(proposal.time(target) <= proposal.time(parent));
        }
    }
}

/// The long-run Gibbs check on a fixed size (kept out of proptest so its cost
/// is paid once): repeatedly accepted proposals must preserve the Kingman
/// prior's mean TMRCA.
#[test]
fn gibbs_chain_matches_kingman_expectation_for_five_tips() {
    let theta = 1.0;
    let n_tips = 5;
    let mut rng = Mt19937::new(424_242);
    let proposer = GenealogyProposer::new(theta).unwrap();
    let mut tree =
        CoalescentSimulator::constant(5.0).unwrap().simulate(&mut rng, n_tips).unwrap();
    let (burn_in, samples) = (1_000, 12_000);
    let mut sum = 0.0;
    for step in 0..(burn_in + samples) {
        let target = proposer.sample_target(&tree, &mut rng);
        tree = proposer.propose(&tree, target, &mut rng);
        if step >= burn_in {
            sum += tree.tmrca();
        }
    }
    let mean = sum / samples as f64;
    let expected = KingmanPrior::new(theta).unwrap().expected_tmrca(n_tips);
    assert!(
        (mean / expected - 1.0).abs() < 0.15,
        "Gibbs mean TMRCA {mean} vs Kingman expectation {expected}"
    );
}
