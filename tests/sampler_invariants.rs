//! Property-based integration tests of the sampler invariants: every
//! genealogy the samplers touch stays structurally valid, tips are never
//! created or destroyed, interval summaries stay consistent with the trees
//! they were taken from, and the proposal mechanism preserves the coalescent
//! prior for arbitrary (small) problem sizes.
//!
//! The properties run on the shared [`harness::CaseDriver`] (the build
//! environment cannot fetch `proptest`): each property draws a couple of
//! dozen parameter tuples from the same ranges the original proptest
//! strategies used, with seeded generation and the failing (shrunk) tuple
//! reported on panic.

#[path = "harness/mod.rs"]
mod harness;

use coalescent::{CoalescentSimulator, KingmanPrior};
use harness::CaseDriver;
use lamarc::{GenealogyProposer, HazardModel, ProposalConfig};
use mcmc::rng::Mt19937;
use phylo::assert_valid_genealogy;
use rand::Rng;

/// Number of random parameter tuples per property.
const CASES: usize = 24;

/// Draw a usize uniformly from `[lo, hi)`.
fn draw(rng: &mut Mt19937, lo: usize, hi: usize) -> usize {
    rng.gen_range(lo..hi)
}

/// Draw an f64 uniformly from `[lo, hi)`.
fn draw_f64(rng: &mut Mt19937, lo: f64, hi: f64) -> f64 {
    lo + rng.gen::<f64>() * (hi - lo)
}

/// Any number of proposals applied to any simulated starting tree keeps the
/// genealogy valid and the tip set fixed.
#[test]
fn proposals_preserve_structure() {
    CaseDriver::new("proposals-preserve-structure", 0xBEEF).cases(CASES).run(
        |meta| {
            (
                meta.gen_range(0..10_000u32),
                draw(meta, 3, 20),
                draw_f64(meta, 0.1, 5.0),
                draw(meta, 1, 40),
            )
        },
        |&(seed, n_tips, theta, steps)| {
            let mut rng = Mt19937::new(seed);
            let sim = CoalescentSimulator::constant(theta).unwrap();
            let mut tree = sim.simulate(&mut rng, n_tips).unwrap();
            let labels = tree.tip_labels();
            let proposer = GenealogyProposer::new(theta).unwrap();
            for _ in 0..steps {
                let target = proposer.sample_target(&tree, &mut rng);
                tree = proposer.propose(&tree, target, &mut rng);
                tree.validate().map_err(|e| format!("invalid tree: {e}"))?;
                // The full structural contract, shared with the legacy
                // representation's suite.
                assert_valid_genealogy(&tree);
                if tree.n_tips() != n_tips {
                    return Err(format!("tip count changed to {}", tree.n_tips()));
                }
            }
            if tree.tip_labels() != labels {
                return Err("tip labels changed".to_string());
            }
            Ok(())
        },
    );
}

/// Interval summaries agree with the trees they are extracted from: the
/// number of coalescences is n-1, the depth equals the TMRCA, and the total
/// branch length matches.
#[test]
fn interval_summaries_are_consistent() {
    CaseDriver::new("interval-summaries", 0xCAFE).cases(CASES).run(
        |meta| (meta.gen_range(0..10_000u32), draw(meta, 2, 30), draw_f64(meta, 0.1, 4.0)),
        |&(seed, n_tips, theta)| {
            let mut rng = Mt19937::new(seed);
            let tree =
                CoalescentSimulator::constant(theta).unwrap().simulate(&mut rng, n_tips).unwrap();
            let intervals = tree.intervals();
            if intervals.n_coalescences() != n_tips - 1 {
                return Err(format!("{} coalescences", intervals.n_coalescences()));
            }
            if (intervals.depth() - tree.tmrca()).abs() >= 1e-9 {
                return Err(format!("depth {} vs tmrca {}", intervals.depth(), tree.tmrca()));
            }
            if (intervals.total_branch_length() - tree.total_branch_length()).abs() >= 1e-6 {
                return Err("total branch length diverged".to_string());
            }
            // The Kingman prior computed from the tree and from the summary
            // agree.
            let prior = KingmanPrior::new(theta).unwrap();
            let from_tree = prior.log_prior(&tree);
            let from_intervals = prior.log_prior_intervals(&intervals);
            if (from_tree - from_intervals).abs() >= 1e-9 {
                return Err(format!("prior {from_tree} vs interval prior {from_intervals}"));
            }
            Ok(())
        },
    );
}

/// Both hazard models keep event times inside the window imposed by the
/// ancestor node (when one exists).
#[test]
fn proposals_respect_the_ancestor_bound() {
    CaseDriver::new("ancestor-bound", 0xF00D).cases(CASES).run(
        |meta| (meta.gen_range(0..10_000u32), draw(meta, 4, 16), meta.gen_bool(0.5)),
        |&(seed, n_tips, hazard_conditional)| {
            let mut rng = Mt19937::new(seed);
            let theta = 1.0;
            let tree =
                CoalescentSimulator::constant(theta).unwrap().simulate(&mut rng, n_tips).unwrap();
            let hazard =
                if hazard_conditional { HazardModel::Conditional } else { HazardModel::ActiveOnly };
            let proposer = GenealogyProposer::with_config(
                theta,
                ProposalConfig { hazard, ..Default::default() },
            )
            .unwrap();
            for _ in 0..10 {
                let target = proposer.sample_target(&tree, &mut rng);
                let parent = tree.parent(target).unwrap();
                let proposal = proposer.propose(&tree, target, &mut rng);
                if let Some(ancestor) = tree.parent(parent) {
                    if proposal.time(parent) > tree.time(ancestor) + 1e-9 {
                        return Err(format!(
                            "parent time {} above ancestor time {}",
                            proposal.time(parent),
                            tree.time(ancestor)
                        ));
                    }
                }
                if proposal.time(target) > proposal.time(parent) {
                    return Err("target proposed above its parent".to_string());
                }
            }
            Ok(())
        },
    );
}

/// The long-run Gibbs check on a fixed size (kept out of the case driver so
/// its cost is paid once): repeatedly accepted proposals must preserve the
/// Kingman prior's mean TMRCA.
#[test]
fn gibbs_chain_matches_kingman_expectation_for_five_tips() {
    let theta = 1.0;
    let n_tips = 5;
    let mut rng = Mt19937::new(424_242);
    let proposer = GenealogyProposer::new(theta).unwrap();
    let mut tree = CoalescentSimulator::constant(5.0).unwrap().simulate(&mut rng, n_tips).unwrap();
    let (burn_in, samples) = (1_000, 12_000);
    let mut sum = 0.0;
    for step in 0..(burn_in + samples) {
        let target = proposer.sample_target(&tree, &mut rng);
        tree = proposer.propose(&tree, target, &mut rng);
        if step >= burn_in {
            sum += tree.tmrca();
        }
    }
    let mean = sum / samples as f64;
    let expected = KingmanPrior::new(theta).unwrap().expected_tmrca(n_tips);
    assert!(
        (mean / expected - 1.0).abs() < 0.15,
        "Gibbs mean TMRCA {mean} vs Kingman expectation {expected}"
    );
}
