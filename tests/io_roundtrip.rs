//! Cross-crate I/O round trips: simulated genealogies and alignments survive
//! Newick and PHYLIP serialisation, and the statistics the samplers depend on
//! (interval summaries, likelihoods) are preserved across the round trip.

use coalescent::{CoalescentSimulator, KingmanPrior, SequenceSimulator};
use mcmc::rng::Mt19937;
use phylo::io::newick::{parse_newick, write_newick};
use phylo::io::phylip::{parse_phylip, write_phylip};
use phylo::model::Jc69;
use phylo::FelsensteinPruner;

#[test]
fn newick_round_trip_preserves_coalescent_statistics() {
    let mut rng = Mt19937::new(11);
    let sim = CoalescentSimulator::constant(1.5).unwrap();
    let prior = KingmanPrior::new(1.5).unwrap();
    for n in [3usize, 6, 12, 25] {
        let tree = sim.simulate(&mut rng, n).unwrap();
        let parsed = parse_newick(&write_newick(&tree)).unwrap();
        parsed.validate().unwrap();
        assert_eq!(parsed.n_tips(), tree.n_tips());
        assert!((parsed.tmrca() - tree.tmrca()).abs() < 1e-6);
        assert!((parsed.total_branch_length() - tree.total_branch_length()).abs() < 1e-5);
        // The coalescent prior (which depends only on intervals) must agree.
        assert!((prior.log_prior(&parsed) - prior.log_prior(&tree)).abs() < 1e-5);
    }
}

#[test]
fn phylip_round_trip_preserves_the_likelihood() {
    let mut rng = Mt19937::new(13);
    let tree = CoalescentSimulator::constant(1.0).unwrap().simulate(&mut rng, 8).unwrap();
    let alignment =
        SequenceSimulator::new(Jc69::new(), 150, 1.0).unwrap().simulate(&mut rng, &tree).unwrap();
    let reread = parse_phylip(&write_phylip(&alignment)).unwrap();
    assert_eq!(reread, alignment);

    // The data likelihood of the generating tree is identical before and
    // after the round trip (the engines see exactly the same data).
    let direct = FelsensteinPruner::new(&alignment, Jc69::new()).log_likelihood(&tree).unwrap();
    let roundtripped = FelsensteinPruner::new(&reread, Jc69::new()).log_likelihood(&tree).unwrap();
    assert_eq!(direct, roundtripped);
}

#[test]
fn simulated_newick_feeds_the_sequence_simulator() {
    // The paper's pipeline: ms writes Newick, seq-gen reads it. Make sure a
    // tree that has been through the text format still drives the sequence
    // simulator and produces data tied to its tip labels.
    let mut rng = Mt19937::new(17);
    let sim = CoalescentSimulator::constant(1.0).unwrap();
    let newick = sim.simulate_newick(&mut rng, 10).unwrap();
    let tree = parse_newick(&newick).unwrap();
    let alignment =
        SequenceSimulator::new(Jc69::new(), 60, 1.0).unwrap().simulate(&mut rng, &tree).unwrap();
    assert_eq!(alignment.n_sequences(), 10);
    for label in tree.tip_labels() {
        assert!(alignment.by_name(&label).is_some(), "missing sequence for tip {label}");
    }
    // And the pruning engine accepts the (parsed) tree against that data.
    let lnl = FelsensteinPruner::new(&alignment, Jc69::new()).log_likelihood(&tree).unwrap();
    assert!(lnl.is_finite() && lnl < 0.0);
}
