//! Accuracy integration test (a scaled-down Table 1): both estimators must
//! track the true θ across data sets simulated at different values, and must
//! agree with each other. The full-size sweep lives in the
//! `table1_accuracy` bench harness; this test keeps the chains short enough
//! for CI while still distinguishing a θ = 0.4 population from a θ = 3.0 one.

use coalescent::{CoalescentSimulator, SequenceSimulator};
use exec::Backend;
use mcmc::rng::Mt19937;
use phylo::model::Jc69;
use phylo::Alignment;

use mpcgs::{MpcgsConfig, SamplerStrategy, Session};

fn simulate(seed: u32, true_theta: f64, n: usize, sites: usize) -> Alignment {
    let mut rng = Mt19937::new(seed);
    let tree = CoalescentSimulator::constant(true_theta).unwrap().simulate(&mut rng, n).unwrap();
    SequenceSimulator::new(Jc69::new(), sites, 1.0).unwrap().simulate(&mut rng, &tree).unwrap()
}

fn estimate(alignment: &Alignment, strategy: SamplerStrategy, seed: u32) -> f64 {
    let config = MpcgsConfig {
        initial_theta: 1.0,
        em_iterations: 2,
        proposals_per_iteration: 8,
        draws_per_iteration: 8,
        burn_in_draws: 150,
        sample_draws: 1_200,
        backend: Backend::Serial,
        ..MpcgsConfig::default()
    };
    let mut rng = Mt19937::new(seed);
    Session::builder()
        .alignment(alignment.clone())
        .strategy(strategy)
        .config(config)
        .build()
        .unwrap()
        .run(&mut rng)
        .unwrap()
        .theta
}

fn mpcgs_estimate(alignment: &Alignment, seed: u32) -> f64 {
    estimate(alignment, SamplerStrategy::MultiProposal, seed)
}

fn baseline_estimate(alignment: &Alignment, seed: u32) -> f64 {
    estimate(alignment, SamplerStrategy::Baseline, seed)
}

#[test]
fn both_estimators_separate_low_theta_from_high_theta() {
    // Average over two replicates per theta to damp sampling noise; the data
    // sets are deliberately information-rich (10 sequences x 250 sites).
    let low_data: Vec<Alignment> = (0..2).map(|r| simulate(100 + r, 0.4, 10, 250)).collect();
    let high_data: Vec<Alignment> = (0..2).map(|r| simulate(200 + r, 3.0, 10, 250)).collect();

    let low_mpcgs: f64 =
        low_data.iter().enumerate().map(|(i, a)| mpcgs_estimate(a, 1_000 + i as u32)).sum::<f64>()
            / low_data.len() as f64;
    let high_mpcgs: f64 =
        high_data.iter().enumerate().map(|(i, a)| mpcgs_estimate(a, 2_000 + i as u32)).sum::<f64>()
            / high_data.len() as f64;
    assert!(
        high_mpcgs > 2.0 * low_mpcgs,
        "mpcgs must separate theta = 3.0 data ({high_mpcgs:.3}) from theta = 0.4 data ({low_mpcgs:.3})"
    );

    let low_baseline: f64 = low_data
        .iter()
        .enumerate()
        .map(|(i, a)| baseline_estimate(a, 3_000 + i as u32))
        .sum::<f64>()
        / low_data.len() as f64;
    let high_baseline: f64 = high_data
        .iter()
        .enumerate()
        .map(|(i, a)| baseline_estimate(a, 4_000 + i as u32))
        .sum::<f64>()
        / high_data.len() as f64;
    assert!(
        high_baseline > 2.0 * low_baseline,
        "the baseline must separate theta = 3.0 ({high_baseline:.3}) from theta = 0.4 ({low_baseline:.3})"
    );

    // The two estimators must agree with each other (Figure 13's diagonal)
    // within a factor of two on every aggregate.
    for (a, b) in [(low_mpcgs, low_baseline), (high_mpcgs, high_baseline)] {
        let ratio = a / b;
        assert!(
            (0.5..=2.0).contains(&ratio),
            "estimators disagree: mpcgs {a:.3} vs baseline {b:.3}"
        );
    }
}
