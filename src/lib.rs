//! Workspace-level integration crate for the mpcgs reproduction.
//!
//! The substance of the system lives in the member crates:
//!
//! * [`phylo`] — sequences, genealogies, substitution models, and the
//!   batched, dirty-path-cached Felsenstein likelihood engine;
//! * [`mcmc`] — RNG streams, log-domain arithmetic, chain diagnostics;
//! * [`coalescent`] — the Kingman prior and data simulators;
//! * [`lamarc`] — the single-proposal baseline sampler, the shared proposal
//!   mechanism, and the unified `GenealogySampler` strategy API;
//! * [`mpcgs`] — the multi-proposal (Generalized Metropolis–Hastings)
//!   sampler, the paper's contribution, and the `Session` facade every
//!   driver (CLI, examples, benches) runs through;
//! * [`exec`] — the data-parallel backend and simulated-device cost models.
//!
//! This crate exists to own the cross-crate integration tests (`tests/`) and
//! runnable examples (`examples/`), and re-exports the member crates for
//! convenience.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use coalescent;
pub use exec;
pub use lamarc;
pub use mcmc;
pub use mpcgs;
pub use phylo;
