//! Data simulation: the `ms` + `seq-gen` substitute workflow (Section 6.1).
//!
//! Simulates a coalescent genealogy, prints it as a Newick string (what
//! `ms 12 1 -T` would emit), evolves sequences along it under the F84 model
//! (what `seq-gen -mF84 -l 200` would do), and prints the alignment in PHYLIP
//! format (what the `mpcgs` binary accepts as input).
//!
//! Run with `cargo run --release -p mpcgs --example simulate_data`.

use coalescent::{CoalescentSimulator, Demography, SequenceSimulator};
use mcmc::rng::Mt19937;
use phylo::io::newick::write_newick;
use phylo::io::phylip::write_phylip;
use phylo::model::{BaseFrequencies, F84};
use phylo::{Dataset, Locus};

fn main() {
    let mut rng = Mt19937::new(7);

    // A constant-size population with theta = 1.0, 12 samples.
    let sim = CoalescentSimulator::constant(1.0).expect("valid theta");
    let tree = sim.simulate(&mut rng, 12).expect("simulation succeeds");
    println!("# simulated genealogy (Newick, as `ms 12 1 -T` would print):");
    println!("{}\n", write_newick(&tree));
    println!("# tree height (TMRCA): {:.4}", tree.tmrca());
    println!("# total branch length: {:.4}\n", tree.total_branch_length());

    // Sequence evolution under F84 with a transition bias.
    let freqs = BaseFrequencies::new(0.3, 0.2, 0.2, 0.3).expect("valid frequencies");
    let model = F84::new(freqs, 2.0).expect("valid kappa");
    let seqsim = SequenceSimulator::new(model, 200, 1.0).expect("valid simulator");
    let alignment = seqsim.simulate(&mut rng, &tree).expect("sequence simulation succeeds");
    println!("# alignment (PHYLIP, as seq-gen would write and mpcgs reads):");
    print!("{}", write_phylip(&alignment));
    println!("\n# variable sites: {} of {}", alignment.variable_sites(), alignment.n_sites());

    // The same machinery supports non-constant demographies.
    let growing =
        CoalescentSimulator::new(Demography::exponential(1.0, 3.0).expect("valid growth model"));
    let grown = growing.simulate(&mut rng, 12).expect("simulation succeeds");
    println!(
        "\n# with exponential growth (rate 3.0) the tree is shallower: TMRCA {:.4} vs {:.4}",
        grown.tmrca(),
        tree.tmrca()
    );

    // Several independently evolved alignments over the same individuals
    // form one multi-locus Dataset — the input `Session` (and the CLI, given
    // several PHYLIP files) estimates a shared theta from.
    let second = seqsim.simulate(&mut rng, &tree).expect("sequence simulation succeeds");
    let dataset =
        Dataset::new(vec![Locus::new("locus-a", alignment), Locus::new("locus-b", second)])
            .expect("loci share one name set");
    println!(
        "\n# multi-locus dataset: {} loci x {} sequences, {} total sites",
        dataset.n_loci(),
        dataset.n_sequences(),
        dataset.total_sites()
    );
}
