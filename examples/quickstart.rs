//! Quickstart: simulate a small data set with a known θ, estimate θ with the
//! multi-proposal sampler, and print the per-iteration history.
//!
//! Run with `cargo run --release -p mpcgs --example quickstart`.

use coalescent::{CoalescentSimulator, SequenceSimulator};
use mcmc::rng::Mt19937;
use phylo::model::Jc69;

use mpcgs::{MpcgsConfig, ThetaEstimator};

fn main() {
    let true_theta = 1.0;
    let mut rng = Mt19937::new(2016);

    // 1. Simulate a genealogy and sequence data (the ms + seq-gen workflow of
    //    the paper's Section 6.1).
    let tree = CoalescentSimulator::constant(true_theta)
        .expect("valid theta")
        .simulate(&mut rng, 10)
        .expect("simulation succeeds");
    let alignment = SequenceSimulator::new(Jc69::new(), 200, 1.0)
        .expect("valid simulator")
        .simulate(&mut rng, &tree)
        .expect("sequence simulation succeeds");
    println!(
        "simulated {} sequences x {} sites at true theta = {true_theta}",
        alignment.n_sequences(),
        alignment.n_sites()
    );

    // 2. Estimate theta with the multi-proposal sampler.
    let config = MpcgsConfig {
        initial_theta: 0.1,
        em_iterations: 2,
        proposals_per_iteration: 16,
        draws_per_iteration: 16,
        burn_in_draws: 300,
        sample_draws: 3_000,
        ..MpcgsConfig::default()
    };
    let estimator = ThetaEstimator::new(alignment, config).expect("valid configuration");
    let estimate = estimator.estimate(&mut rng).expect("estimation succeeds");

    println!("\n  iter   driving theta   estimate   move rate");
    for (i, it) in estimate.iterations.iter().enumerate() {
        println!(
            "  {:>4}   {:>13.4}   {:>8.4}   {:>9.3}",
            i + 1,
            it.driving_theta,
            it.estimate,
            it.move_rate
        );
    }
    println!("\nfinal estimate: theta = {:.4} (true value {true_theta})", estimate.theta);
}
