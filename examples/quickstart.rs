//! Quickstart: simulate a small data set with a known θ, estimate θ through
//! the unified `Session` facade, and stream the per-iteration history with a
//! run observer.
//!
//! Run with `cargo run --release --example quickstart`.

use coalescent::{CoalescentSimulator, SequenceSimulator};
use mcmc::rng::Mt19937;
use phylo::model::Jc69;

use mpcgs::{EmProgressPrinter, MpcgsConfig, SamplerStrategy, Session};

fn main() {
    let true_theta = 1.0;
    let mut rng = Mt19937::new(2016);

    // 1. Simulate a genealogy and sequence data (the ms + seq-gen workflow of
    //    the paper's Section 6.1).
    let tree = CoalescentSimulator::constant(true_theta)
        .expect("valid theta")
        .simulate(&mut rng, 10)
        .expect("simulation succeeds");
    let alignment = SequenceSimulator::new(Jc69::new(), 200, 1.0)
        .expect("valid simulator")
        .simulate(&mut rng, &tree)
        .expect("sequence simulation succeeds");
    println!(
        "simulated {} sequences x {} sites at true theta = {true_theta}",
        alignment.n_sequences(),
        alignment.n_sites()
    );

    // 2. Build a session — dataset, strategy and chain sizing — with an
    //    observer printing each EM round, and run it.
    let config = MpcgsConfig {
        initial_theta: 0.1,
        em_iterations: 2,
        proposals_per_iteration: 16,
        draws_per_iteration: 16,
        burn_in_draws: 300,
        sample_draws: 3_000,
        ..MpcgsConfig::default()
    };
    let mut session = Session::builder()
        .alignment(alignment)
        .strategy(SamplerStrategy::MultiProposal)
        .config(config)
        .observe(EmProgressPrinter::new())
        .build()
        .expect("valid configuration");
    let estimate = session.run(&mut rng).expect("estimation succeeds");

    println!("\nfinal estimate: theta = {:.4} (true value {true_theta})", estimate.theta);
}
