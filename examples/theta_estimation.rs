//! Side-by-side θ estimation: the baseline single-proposal sampler versus the
//! multi-proposal sampler on the same simulated data (the comparison behind
//! Table 1 / Figure 13), plus the relative-likelihood curve of Figure 5.
//!
//! Run with `cargo run --release -p mpcgs --example theta_estimation`.

use coalescent::{CoalescentSimulator, SequenceSimulator};
use lamarc::{EmConfig, LamarcEstimator};
use mcmc::rng::Mt19937;
use phylo::model::Jc69;

use mpcgs::{MpcgsConfig, RelativeLikelihood, ThetaEstimator};

fn main() {
    let true_theta = 2.0;
    let mut rng = Mt19937::new(99);
    let tree = CoalescentSimulator::constant(true_theta)
        .expect("valid theta")
        .simulate(&mut rng, 10)
        .expect("simulation succeeds");
    let alignment = SequenceSimulator::new(Jc69::new(), 300, 1.0)
        .expect("valid simulator")
        .simulate(&mut rng, &tree)
        .expect("sequence simulation succeeds");
    println!(
        "data: {} sequences x {} sites simulated at theta = {true_theta}\n",
        alignment.n_sequences(),
        alignment.n_sites()
    );

    // Baseline estimator (single-proposal Metropolis-Hastings).
    let baseline = LamarcEstimator::new(
        alignment.clone(),
        EmConfig {
            initial_theta: 0.5,
            em_iterations: 2,
            burn_in: 400,
            samples: 4_000,
            thinning: 1,
            ..Default::default()
        },
    )
    .expect("valid baseline configuration")
    .estimate(&mut rng)
    .expect("baseline estimation succeeds");
    println!("baseline (LAMARC-style) estimate: theta = {:.4}", baseline.theta);
    for (i, it) in baseline.iterations.iter().enumerate() {
        println!(
            "   iteration {}: driving {:.4} -> estimate {:.4} (acceptance {:.2})",
            i + 1,
            it.driving_theta,
            it.estimate,
            it.acceptance_rate
        );
    }

    // Multi-proposal estimator.
    let config = MpcgsConfig {
        initial_theta: 0.5,
        em_iterations: 2,
        proposals_per_iteration: 16,
        draws_per_iteration: 16,
        burn_in_draws: 400,
        sample_draws: 4_000,
        ..MpcgsConfig::default()
    };
    let estimator = ThetaEstimator::new(alignment, config).expect("valid mpcgs configuration");
    let mpcgs_estimate = estimator.estimate(&mut rng).expect("mpcgs estimation succeeds");
    println!("\nmpcgs (multi-proposal) estimate:  theta = {:.4}", mpcgs_estimate.theta);
    for (i, it) in mpcgs_estimate.iterations.iter().enumerate() {
        println!(
            "   iteration {}: driving {:.4} -> estimate {:.4} (move rate {:.2})",
            i + 1,
            it.driving_theta,
            it.estimate,
            it.move_rate
        );
    }

    // The relative-likelihood curve around the final estimate (Figure 5).
    let grid = RelativeLikelihood::log_grid(0.2, 8.0, 16);
    let curve = estimator.likelihood_curve(&mut rng, &grid).expect("curve evaluation succeeds");
    println!("\nrelative log-likelihood curve (driving theta = 0.5):");
    for (theta, lnl) in curve {
        println!("   theta {:>7.3}   ln L {:>9.3}", theta, lnl);
    }
    println!("\ntrue theta: {true_theta}");
}
