//! Side-by-side θ estimation: the baseline single-proposal strategy versus
//! the multi-proposal strategy on the same simulated data (the comparison
//! behind Table 1 / Figure 13), plus the relative-likelihood curve of
//! Figure 5 — all through the one `Session` facade, switching only the
//! sampler strategy.
//!
//! Run with `cargo run --release --example theta_estimation`.

use coalescent::{CoalescentSimulator, SequenceSimulator};
use mcmc::rng::Mt19937;
use phylo::model::Jc69;

use mpcgs::{MpcgsConfig, RelativeLikelihood, SamplerStrategy, Session};

fn main() {
    let true_theta = 2.0;
    let mut rng = Mt19937::new(99);
    let tree = CoalescentSimulator::constant(true_theta)
        .expect("valid theta")
        .simulate(&mut rng, 10)
        .expect("simulation succeeds");
    let alignment = SequenceSimulator::new(Jc69::new(), 300, 1.0)
        .expect("valid simulator")
        .simulate(&mut rng, &tree)
        .expect("sequence simulation succeeds");
    println!(
        "data: {} sequences x {} sites simulated at theta = {true_theta}\n",
        alignment.n_sequences(),
        alignment.n_sites()
    );

    let config = MpcgsConfig {
        initial_theta: 0.5,
        em_iterations: 2,
        proposals_per_iteration: 16,
        draws_per_iteration: 16,
        burn_in_draws: 400,
        sample_draws: 4_000,
        ..MpcgsConfig::default()
    };

    // The two strategies are interchangeable behind the facade: same
    // dataset, same configuration, different transition kernel.
    for (label, strategy, rate_label) in [
        ("baseline (LAMARC-style)", SamplerStrategy::Baseline, "acceptance"),
        ("mpcgs (multi-proposal)", SamplerStrategy::MultiProposal, "move rate"),
    ] {
        let mut session = Session::builder()
            .alignment(alignment.clone())
            .strategy(strategy)
            .config(config)
            .build()
            .expect("valid configuration");
        let estimate = session.run(&mut rng).expect("estimation succeeds");
        println!("{label} estimate: theta = {:.4}", estimate.theta);
        for (i, it) in estimate.iterations.iter().enumerate() {
            println!(
                "   iteration {}: driving {:.4} -> estimate {:.4} ({rate_label} {:.2})",
                i + 1,
                it.driving_theta,
                it.estimate,
                it.acceptance_rate
            );
        }
        println!();
    }

    // The relative-likelihood curve around the driving value (Figure 5).
    let mut session = Session::builder()
        .alignment(alignment)
        .config(config)
        .build()
        .expect("valid configuration");
    let grid = RelativeLikelihood::log_grid(0.2, 8.0, 16);
    let curve = session.likelihood_curve(&mut rng, &grid).expect("curve evaluation succeeds");
    println!("relative log-likelihood curve (driving theta = 0.5):");
    for (theta, lnl) in curve {
        println!("   theta {:>7.3}   ln L {:>9.3}", theta, lnl);
    }
    println!("\ntrue theta: {true_theta}");
}
