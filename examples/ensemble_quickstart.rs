//! Ensemble quickstart: run the same estimation as a four-chain ensemble —
//! first as independent replicated chains with pooled diagnostics, then as an
//! MC³ temperature ladder with replica exchange — through the first-class
//! `EnsembleBuilder`/`ShardedSampler` API (the library-level counterpart of
//! the CLI's `--chains 4 --exchange ladder`).
//!
//! Run with `cargo run --release --example ensemble_quickstart`.

use coalescent::{CoalescentSimulator, SequenceSimulator};
use mcmc::rng::Mt19937;
use phylo::model::Jc69;

use mpcgs::ensemble::{EnsembleBuilder, ExchangePolicy};
use mpcgs::{MpcgsConfig, Session};

fn main() {
    let true_theta = 1.0;
    let mut rng = Mt19937::new(2016);

    // 1. Simulate a genealogy and sequence data (Section 6.1 workflow).
    let tree = CoalescentSimulator::constant(true_theta)
        .expect("valid theta")
        .simulate(&mut rng, 8)
        .expect("simulation succeeds");
    let alignment = SequenceSimulator::new(Jc69::new(), 150, 1.0)
        .expect("valid simulator")
        .simulate(&mut rng, &tree)
        .expect("sequence simulation succeeds");
    println!(
        "simulated {} sequences x {} sites at true theta = {true_theta}\n",
        alignment.n_sequences(),
        alignment.n_sites()
    );

    let config = MpcgsConfig {
        initial_theta: 0.5,
        em_iterations: 1,
        proposals_per_iteration: 16,
        draws_per_iteration: 16,
        burn_in_draws: 200,
        sample_draws: 1_500,
        ..MpcgsConfig::default()
    };
    let session = || {
        Session::builder()
            .alignment(alignment.clone())
            .config(config)
            .build()
            .expect("valid configuration")
    };

    // 2. Independent ensemble: four replicated chains, pooled samples, and
    //    the cross-chain Gelman-Rubin convergence diagnostic.
    let mut independent = EnsembleBuilder::new()
        .session(session())
        .chains(4)
        .exchange(ExchangePolicy::Independent)
        .seed(7)
        .build()
        .expect("valid ensemble");
    let report = independent.run(&mut rng).expect("ensemble run succeeds");
    println!("independent ensemble: {} chains", report.n_chains());
    println!("  pooled samples      {}", report.pooled_samples.len());
    println!("  pooled theta-hat    {:.4}", report.pooled_theta().expect("pooled estimate"));
    println!("  cross-chain R-hat   {:.4}", report.r_hat().expect("between-chain diagnostic"));
    println!(
        "  work: {} transitions/chain, {} total ({}% burn-in; ideal B + N/P = {:.0})",
        report.transitions_per_chain(),
        report.total_transitions(),
        (100.0 * report.burn_in_fraction()).round(),
        report.ideal_parallel_cost(),
    );

    // 3. Temperature ladder: the cold chain estimates, heated rungs explore a
    //    flattened posterior, and adjacent rungs exchange states.
    let mut ladder = EnsembleBuilder::new()
        .session(session())
        .chains(4)
        .exchange(ExchangePolicy::geometric_ladder(4, 4.0, 5).expect("valid ladder"))
        .seed(7)
        .build()
        .expect("valid ensemble");
    let report = ladder.run(&mut rng).expect("ladder run succeeds");
    println!("\ntemperature ladder: {} rungs", report.n_chains());
    println!(
        "  temperatures        {:?}",
        report.temperatures.iter().map(|t| (t * 100.0).round() / 100.0).collect::<Vec<_>>()
    );
    println!(
        "  swaps               {}/{} accepted ({:.0}%)",
        report.counters.swaps_accepted,
        report.counters.swap_attempts,
        100.0 * report.swap_acceptance_rate()
    );
    println!("  cold-chain samples  {}", report.pooled_samples.len());
    println!(
        "  cold theta-hat      {:.4} (true value {true_theta})",
        report.pooled_theta().expect("cold-chain estimate")
    );
}
