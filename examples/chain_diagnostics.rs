//! Chain diagnostics: burn-in detection, effective sample size and the
//! Gelman–Rubin statistic applied to the genealogy samplers (the practical
//! counterpart of Section 2.3's discussion of burn-in and convergence).
//!
//! Each chain is a baseline-strategy `Session` started from a deliberately
//! poor genealogy; the traces come from the unified `RunReport`.
//!
//! Run with `cargo run --release --example chain_diagnostics`.

use coalescent::{CoalescentSimulator, SequenceSimulator};
use mcmc::diagnostics::{detect_burn_in, effective_sample_size, gelman_rubin, Summary};
use mcmc::rng::Mt19937;
use phylo::model::Jc69;
use phylo::upgma_tree;

use mpcgs::{MpcgsConfig, SamplerStrategy, Session};

fn main() {
    let mut rng = Mt19937::new(31);
    let tree = CoalescentSimulator::constant(1.0)
        .expect("valid theta")
        .simulate(&mut rng, 8)
        .expect("simulation succeeds");
    let alignment = SequenceSimulator::new(Jc69::new(), 200, 1.0)
        .expect("valid simulator")
        .simulate(&mut rng, &tree)
        .expect("sequence simulation succeeds");

    // Run three chains from a deliberately poor start.
    let config = MpcgsConfig {
        initial_theta: 1.0,
        burn_in_draws: 0,
        sample_draws: 3_000,
        ..MpcgsConfig::default()
    };
    let mut chains: Vec<Vec<f64>> = Vec::new();
    for seed in [1u32, 2, 3] {
        let mut chain_rng = Mt19937::new(seed);
        let mut initial = upgma_tree(&alignment, 1.0).expect("UPGMA succeeds");
        initial.scale_times(25.0);
        let mut session = Session::builder()
            .alignment(alignment.clone())
            .strategy(SamplerStrategy::Baseline)
            .config(config)
            .initial_tree(initial)
            .build()
            .expect("valid configuration");
        let run = session.run_chain(&mut chain_rng).expect("sampler run succeeds");
        chains.push(run.trace.all().to_vec());
    }

    for (i, chain) in chains.iter().enumerate() {
        let burn_in = detect_burn_in(chain, 3.0);
        let post = &chain[burn_in..];
        let summary = Summary::of(post).expect("non-empty trace");
        let ess = effective_sample_size(post).expect("enough samples");
        println!(
            "chain {}: burn-in ~{burn_in} transitions, post-burn-in mean ln P(D|G) = {:.2} \
             (sd {:.2}), ESS = {:.0} of {}",
            i + 1,
            summary.mean,
            summary.std_dev,
            ess,
            post.len()
        );
    }

    // Cross-chain convergence: truncate all chains past the widest burn-in.
    let max_burn_in = chains.iter().map(|c| detect_burn_in(c, 3.0)).max().unwrap_or(0);
    let post_chains: Vec<Vec<f64>> = chains.iter().map(|c| c[max_burn_in..].to_vec()).collect();
    let r_hat = gelman_rubin(&post_chains).expect("at least two chains");
    println!("\nGelman-Rubin R-hat across the three chains: {r_hat:.4}");
    println!("(values near 1.0 indicate the chains agree; > 1.1 indicates insufficient burn-in)");
}
