//! Chain diagnostics: burn-in detection, effective sample size and the
//! Gelman–Rubin statistic applied to the genealogy samplers (the practical
//! counterpart of Section 2.3's discussion of burn-in and convergence).
//!
//! Run with `cargo run --release -p mpcgs --example chain_diagnostics`.

use coalescent::{CoalescentSimulator, SequenceSimulator};
use lamarc::{LamarcSampler, SamplerConfig};
use mcmc::diagnostics::{detect_burn_in, effective_sample_size, gelman_rubin, Summary};
use mcmc::rng::Mt19937;
use phylo::model::{Jc69, F81};
use phylo::{upgma_tree, FelsensteinPruner};

fn main() {
    let mut rng = Mt19937::new(31);
    let tree = CoalescentSimulator::constant(1.0)
        .expect("valid theta")
        .simulate(&mut rng, 8)
        .expect("simulation succeeds");
    let alignment = SequenceSimulator::new(Jc69::new(), 200, 1.0)
        .expect("valid simulator")
        .simulate(&mut rng, &tree)
        .expect("sequence simulation succeeds");

    // Run three chains from a deliberately poor start.
    let mut chains: Vec<Vec<f64>> = Vec::new();
    for seed in [1u32, 2, 3] {
        let mut chain_rng = Mt19937::new(seed);
        let engine =
            FelsensteinPruner::new(&alignment, F81::normalized(alignment.base_frequencies()));
        let config = SamplerConfig {
            theta: 1.0,
            burn_in: 0,
            samples: 3_000,
            thinning: 1,
            ..Default::default()
        };
        let sampler = LamarcSampler::new(engine, config).expect("valid configuration");
        let mut initial = upgma_tree(&alignment, 1.0).expect("UPGMA succeeds");
        initial.scale_times(25.0);
        let run = sampler.run(initial, &mut chain_rng).expect("sampler run succeeds");
        chains.push(run.trace.all().to_vec());
    }

    for (i, chain) in chains.iter().enumerate() {
        let burn_in = detect_burn_in(chain, 3.0);
        let post = &chain[burn_in..];
        let summary = Summary::of(post).expect("non-empty trace");
        let ess = effective_sample_size(post).expect("enough samples");
        println!(
            "chain {}: burn-in ~{burn_in} transitions, post-burn-in mean ln P(D|G) = {:.2} \
             (sd {:.2}), ESS = {:.0} of {}",
            i + 1,
            summary.mean,
            summary.std_dev,
            ess,
            post.len()
        );
    }

    // Cross-chain convergence: truncate all chains past the widest burn-in.
    let max_burn_in = chains.iter().map(|c| detect_burn_in(c, 3.0)).max().unwrap_or(0);
    let post_chains: Vec<Vec<f64>> = chains.iter().map(|c| c[max_burn_in..].to_vec()).collect();
    let r_hat = gelman_rubin(&post_chains).expect("at least two chains");
    println!("\nGelman-Rubin R-hat across the three chains: {r_hat:.4}");
    println!("(values near 1.0 indicate the chains agree; > 1.1 indicates insufficient burn-in)");
}
