//! Speedup analysis: the device/host cost model behind Tables 2–4 and the
//! Amdahl argument of Section 3, printed alongside a *measured* caching
//! report from a real `Session` run — the modelled GPU-versus-host ratios
//! next to what this implementation's dirty-path engine actually saves.
//!
//! Run with `cargo run --release --example speedup_analysis`.

use coalescent::{CoalescentSimulator, SequenceSimulator};
use exec::amdahl::{multichain_time, parallel_burnin_time};
use mcmc::rng::Mt19937;
use phylo::model::Jc69;

use mpcgs::perf::{SpeedupModel, Workload, TABLE2_SAMPLES, TABLE3_SEQUENCES, TABLE4_LENGTHS};
use mpcgs::{CachingReport, Kernel, MpcgsConfig, Session};

fn main() {
    let model = SpeedupModel::paper_calibrated();
    let reference = Workload::reference();
    println!("reference workload: {reference:?}");
    println!(
        "modelled runtimes: baseline {:.1} s, mpcgs {:.1} s, speedup {:.2}x\n",
        model.lamarc_time_us(&reference) / 1e6,
        model.mpcgs_time_us(&reference) / 1e6,
        model.speedup(&reference)
    );

    println!("speedup vs number of samples (Table 2 / Figure 14):");
    for (samples, speedup) in model.sweep_samples(&TABLE2_SAMPLES) {
        println!("   {samples:>7} samples -> {speedup:.2}x");
    }
    println!("\nspeedup vs number of sequences (Table 3 / Figure 15):");
    for (n, speedup) in model.sweep_sequences(&TABLE3_SEQUENCES) {
        println!("   {n:>3} sequences -> {speedup:.2}x");
    }
    println!("\nspeedup vs sequence length (Table 4 / Figure 16):");
    for (len, speedup) in model.sweep_sequence_length(&TABLE4_LENGTHS) {
        println!("   {len:>4} bp -> {speedup:.2}x");
    }

    // The Amdahl argument (Section 3): why the multi-chain work-around stops
    // scaling while the parallel-burn-in scheme keeps dividing.
    println!("\nidealised chain cost with B = 1000, N = 10000 (Section 3):");
    println!("   P    multi-chain B+N/P    parallel burn-in (B+N)/P");
    for p in [1usize, 4, 16, 64, 256] {
        println!(
            "   {p:>3}  {:>18.1}  {:>25.1}",
            multichain_time(1_000.0, 10_000.0, p),
            parallel_burnin_time(1_000.0, 10_000.0, p)
        );
    }

    // Where the model predicts, a Session measures: run one real chain on a
    // paper-shaped workload and report what the dirty-path cache saved.
    let mut rng = Mt19937::new(20_160_401);
    let tree = CoalescentSimulator::constant(1.0)
        .expect("valid theta")
        .simulate(&mut rng, reference.n_sequences)
        .expect("simulation succeeds");
    let alignment = SequenceSimulator::new(Jc69::new(), reference.sequence_length, 1.0)
        .expect("valid simulator")
        .simulate(&mut rng, &tree)
        .expect("sequence simulation succeeds");
    // With `--features device` the measured chain runs on the simulated
    // accelerator backend (bit-identical results) and the caching report
    // additionally carries the queue's host-vs-device cost breakdown.
    #[cfg(feature = "device")]
    let backend = exec::Backend::device(exec::DeviceSpec::kepler());
    #[cfg(not(feature = "device"))]
    let backend = exec::Backend::default();
    let config = MpcgsConfig {
        initial_theta: 1.0,
        em_iterations: 1,
        proposals_per_iteration: reference.proposals_per_iteration,
        draws_per_iteration: reference.proposals_per_iteration,
        burn_in_draws: 200,
        sample_draws: 2_000,
        kernel: Kernel::Simd, // falls back to scalar without --features simd
        backend,
        ..MpcgsConfig::default()
    };
    let mut session = Session::builder()
        .alignment(alignment)
        .config(config)
        .build()
        .expect("valid configuration");
    #[cfg(feature = "device")]
    let device_baseline = exec::Queue::stats();
    let report = session.run_chain(&mut rng).expect("chain run succeeds");
    let caching = CachingReport::from_stats(
        &report.counters,
        reference.interior_nodes(),
        session.config().kernel,
    );
    #[cfg(feature = "device")]
    let caching = caching.with_device(exec::DeviceReport::new(
        exec::DeviceSpec::kepler(),
        exec::Queue::stats().delta(&device_baseline),
    ));
    println!(
        "\nmeasured caching on one {}x{} bp chain ({} kernel, {} evaluations):",
        reference.n_sequences,
        reference.sequence_length,
        caching.kernel,
        report.counters.likelihood_evaluations
    );
    println!(
        "   {:.2} of {} interior nodes recomputed per evaluation ({:.1}% of a full prune)",
        caching.nodes_per_evaluation,
        caching.full_prune_nodes,
        100.0 * caching.reprune_fraction
    );
    println!(
        "   node-recomputation speedup over naive pruning: {:.1}x, generator memo hit rate {:.1}%",
        caching.estimated_kernel_speedup,
        100.0 * caching.generator_cache_hit_rate
    );
    println!(
        "   edge transition-matrix cache hit rate {:.1}%",
        100.0 * caching.matrix_cache_hit_rate
    );
    if let Some(device) = &caching.device {
        println!("\n{}", device.summary());
    }
}
