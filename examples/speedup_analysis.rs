//! Speedup analysis: the device/host cost model behind Tables 2–4 and the
//! Amdahl argument of Section 3, printed for interactive exploration.
//!
//! Run with `cargo run --release -p mpcgs --example speedup_analysis`.

use exec::amdahl::{multichain_time, parallel_burnin_time};
use mpcgs::perf::{SpeedupModel, Workload, TABLE2_SAMPLES, TABLE3_SEQUENCES, TABLE4_LENGTHS};

fn main() {
    let model = SpeedupModel::paper_calibrated();
    let reference = Workload::reference();
    println!("reference workload: {reference:?}");
    println!(
        "modelled runtimes: baseline {:.1} s, mpcgs {:.1} s, speedup {:.2}x\n",
        model.lamarc_time_us(&reference) / 1e6,
        model.mpcgs_time_us(&reference) / 1e6,
        model.speedup(&reference)
    );

    println!("speedup vs number of samples (Table 2 / Figure 14):");
    for (samples, speedup) in model.sweep_samples(&TABLE2_SAMPLES) {
        println!("   {samples:>7} samples -> {speedup:.2}x");
    }
    println!("\nspeedup vs number of sequences (Table 3 / Figure 15):");
    for (n, speedup) in model.sweep_sequences(&TABLE3_SEQUENCES) {
        println!("   {n:>3} sequences -> {speedup:.2}x");
    }
    println!("\nspeedup vs sequence length (Table 4 / Figure 16):");
    for (len, speedup) in model.sweep_sequence_length(&TABLE4_LENGTHS) {
        println!("   {len:>4} bp -> {speedup:.2}x");
    }

    // The Amdahl argument (Section 3): why the multi-chain work-around stops
    // scaling while the parallel-burn-in scheme keeps dividing.
    println!("\nidealised chain cost with B = 1000, N = 10000 (Section 3):");
    println!("   P    multi-chain B+N/P    parallel burn-in (B+N)/P");
    for p in [1usize, 4, 16, 64, 256] {
        println!(
            "   {p:>3}  {:>18.1}  {:>25.1}",
            multichain_time(1_000.0, 10_000.0, p),
            parallel_burnin_time(1_000.0, 10_000.0, p)
        );
    }
}
